//! Whole-trace conformance checking: run the concrete emulator and
//! replay every step against the lifted Hoare Graph.
//!
//! One trace = one seeded entry state run to completion. At every step
//! the oracle asserts
//!
//! 1. **containment** — the concrete machine state is contained in
//!    some vertex invariant at the current `rip` (via the shared
//!    [`hgl_export::checker`] containment definition),
//! 2. **edge correspondence** — the concrete transition taken by the
//!    emulator is labelled by an HG edge out of a current candidate
//!    vertex, and
//! 3. the paper's three sanity properties, trace-wide: **return
//!    address integrity** (every `ret` lands on the address its `call`
//!    pushed), **bounded control flow** (`rip` never leaves the set of
//!    addresses the graph covers, except through annotated
//!    indirections), and **calling-convention adherence** (callee-saved
//!    registers and `rsp` are restored at every return).
//!
//! Traces cross function boundaries: internal calls push a checker
//! frame holding the callee's own symbol environment (the Hoare Graph
//! is per-function and context-free, §4.2.2), external calls replay
//! the benign System V stub the emulator harness uses, and annotated
//! instructions (callbacks, wild jumps, budget frontiers) end the
//! trace gracefully — the paper's guarantee covers unannotated code
//! only.

use crate::coverage::{Coverage, EdgeKind};
use hgl_analysis::WriteClassMap;
use hgl_core::lift::LiftResult;
use hgl_core::tau::{writes_first_operand, TERMINATING_EXTERNALS};
use hgl_core::VertexId;
use hgl_elf::Binary;
use hgl_emu::{Event, Machine};
use hgl_export::checker::{bind_fresh, post_holds, Env};
use hgl_expr::Sym;
use hgl_x86::{decode, Instr, Mnemonic, Operand, Reg, RegRef};
use std::collections::VecDeque;
use std::fmt;

/// Sentinel return address for the outermost frame.
pub const SENTINEL: u64 = 0x7fff_dead_beef;

/// How a trace ended (when it did not end in a violation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceStop {
    /// The entry function returned to the sentinel.
    Returned,
    /// Execution reached an instruction carrying an unsoundness or
    /// budget annotation; the guarantee stops here (§1).
    Annotated(u64),
    /// A call to a terminating external (`exit`, `abort`, …).
    Terminated,
    /// The per-trace step budget ran out (e.g. a long loop).
    StepLimit,
    /// The emulator faulted (e.g. divide error) — a concretely faulting
    /// path, outside the Hoare Graph's scope.
    Fault(String),
}

impl TraceStop {
    /// Coverage-accounting key.
    pub fn key(&self) -> &'static str {
        match self {
            TraceStop::Returned => "returned",
            TraceStop::Annotated(_) => "annotated",
            TraceStop::Terminated => "terminated",
            TraceStop::StepLimit => "step-limit",
            TraceStop::Fault(_) => "fault",
        }
    }
}

/// Which conformance property a violation breaks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViolationKind {
    /// The machine state matched no vertex invariant at its `rip`.
    Containment,
    /// The concrete transition has no corresponding HG edge.
    MissingEdge,
    /// A `ret` did not land on the address pushed by its `call`.
    ReturnAddressIntegrity,
    /// `rip` left the graph outside any annotated instruction.
    BoundedControlFlow,
    /// Callee-saved registers or `rsp` were not restored at a return.
    CallingConvention,
    /// A concrete memory write landed outside every class the static
    /// write-classification analysis claimed for its instruction.
    WriteClassification,
    /// An indirect jump the refinement claimed to have resolved landed
    /// outside its claimed target set.
    IndirectContainment,
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ViolationKind::Containment => "containment",
            ViolationKind::MissingEdge => "missing-edge",
            ViolationKind::ReturnAddressIntegrity => "return-address-integrity",
            ViolationKind::BoundedControlFlow => "bounded-control-flow",
            ViolationKind::CallingConvention => "calling-convention",
            ViolationKind::WriteClassification => "write-classification",
            ViolationKind::IndirectContainment => "indirect-containment",
        };
        f.write_str(s)
    }
}

/// A trace conformance violation: a concrete execution the Hoare Graph
/// does not overapproximate. This is a genuine soundness
/// counterexample of the lifter (or of the oracle's own replay).
#[derive(Debug, Clone)]
pub struct Violation {
    /// The broken property.
    pub kind: ViolationKind,
    /// Trace step index at which it broke.
    pub step: usize,
    /// `rip` of the instruction whose transition broke the property.
    pub rip: u64,
    /// Entry of the function frame being checked.
    pub function: u64,
    /// Human-readable specifics.
    pub detail: String,
    /// The last few trace steps leading up to the violation.
    pub tail: Vec<String>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} violation at step {} (rip {:#x}, function {:#x}): {}",
            self.kind, self.step, self.rip, self.function, self.detail
        )?;
        for t in &self.tail {
            writeln!(f, "    {t}")?;
        }
        Ok(())
    }
}

/// The outcome of one checked trace.
#[derive(Debug, Clone)]
pub struct TraceOutcome {
    /// Steps executed.
    pub steps: usize,
    /// How the trace ended (meaningful when `violation` is `None`).
    pub stop: TraceStop,
    /// The violation, if conformance broke.
    pub violation: Option<Violation>,
    /// Concrete memory writes checked against static write-class
    /// claims (0 when the oracle has no claim index).
    pub writes_checked: usize,
    /// Concrete indirect jumps checked against refinement claims (0
    /// when the oracle has no claim set).
    pub indirect_checked: usize,
}

/// One per-function checker frame: the callee's symbol environment and
/// the candidate vertices the machine may currently inhabit.
struct Frame {
    /// Function entry address.
    entry: u64,
    /// Symbol environment: `Init(r)`, `RetSym`, `RetAddr` bound at
    /// frame entry; `Fresh` existentials accumulate as they are
    /// witnessed.
    env: Env,
    /// Vertices whose invariant currently contains the machine.
    candidates: Vec<VertexId>,
    /// Concrete return address this frame must return to.
    ret_addr: u64,
    /// `rsp` at frame entry (pointing at the return-address slot).
    entry_rsp: u64,
    /// Callee-saved register values at frame entry.
    saved: [u64; 6],
    /// Set while a callee frame is on top: the call-site candidates
    /// and call address, needed to advance past the call edge when the
    /// callee returns.
    pending_call: Option<(Vec<VertexId>, u64)>,
}

/// Seeded entry-state parameters for one trace.
#[derive(Debug, Clone)]
pub struct EntryState {
    /// `rdi` — drives jump-table case selection.
    pub rdi: u64,
    /// Other scratch register values (`rax`, `rcx`, `rdx`, `rsi`,
    /// `r8`, `r9`).
    pub scratch: [u64; 6],
}

/// The trace oracle for one lifted binary.
pub struct TraceOracle<'a> {
    binary: &'a Binary,
    lift: &'a LiftResult,
    /// Per-trace step budget.
    pub max_steps: usize,
    /// Static write-class claims to cross-validate against concrete
    /// writes (built with [`WriteClassMap::build`]). `None` disables
    /// the check.
    pub write_classes: Option<WriteClassMap>,
    /// Resolved-indirection claims from the analyze→re-lift
    /// refinement, keyed by jump address: every concrete indirect jump
    /// at a claimed address must land inside its claimed target set.
    /// `None` disables the check.
    pub indirect_claims: Option<std::collections::BTreeMap<u64, std::collections::BTreeSet<u64>>>,
}

impl<'a> TraceOracle<'a> {
    /// A new oracle over a lifted binary.
    pub fn new(binary: &'a Binary, lift: &'a LiftResult) -> TraceOracle<'a> {
        TraceOracle { binary, lift, max_steps: 20_000, write_classes: None, indirect_claims: None }
    }

    /// Enable write-classification cross-validation: every concrete
    /// write whose instruction carries a dynamically checkable claim
    /// is asserted to land inside one of the claimed classes.
    pub fn with_write_classes(mut self) -> TraceOracle<'a> {
        self.write_classes = Some(WriteClassMap::build(self.binary, self.lift));
        self
    }

    /// Enable indirect-containment cross-validation: every concrete
    /// indirect jump at a claimed address must land inside its claimed
    /// target set (the refutation channel for refinement claims).
    pub fn with_indirect_claims(
        mut self,
        claims: std::collections::BTreeMap<u64, std::collections::BTreeSet<u64>>,
    ) -> TraceOracle<'a> {
        self.indirect_claims = Some(claims);
        self
    }

    /// Is `addr` annotated in the frame's function (unresolved
    /// indirection or budget frontier)?
    fn annotated(&self, function: u64, addr: u64) -> bool {
        self.lift
            .functions
            .get(&function)
            .map(|f| f.annotations.iter().any(|a| a.addr() == addr))
            .unwrap_or(false)
    }

    /// Build the entry environment of a frame: every `Init` register
    /// bound to the machine's value, the return symbols bound to the
    /// concrete return address, and `Global` cells bound to memory at
    /// frame entry.
    fn frame_env(&self, entry: u64, m: &mut Machine, ret_addr: u64) -> Env {
        let mut env = Env::new();
        for r in Reg::ALL {
            env.insert(Sym::Init(r), m.reg(r));
        }
        env.insert(Sym::RetSym(entry), ret_addr);
        env.insert(Sym::RetAddr, ret_addr);
        if let Some(f) = self.lift.functions.get(&entry) {
            for v in f.graph.vertices.values() {
                for s in hgl_export::checker::syms_of(&v.state) {
                    if let Sym::Global(a) = s {
                        if !env.contains(s) {
                            let val = m.mem.read(a, 8);
                            env.insert(s, val);
                        }
                    }
                }
            }
        }
        env
    }

    /// Open a frame for the function at `entry`: check entry
    /// containment and return the frame.
    fn enter_frame(
        &self,
        entry: u64,
        m: &mut Machine,
        ret_addr: u64,
        step: usize,
        tail: &VecDeque<String>,
    ) -> Result<Frame, Violation> {
        let env = self.frame_env(entry, m, ret_addr);
        let Some(f) = self.lift.functions.get(&entry) else {
            return Err(Violation {
                kind: ViolationKind::BoundedControlFlow,
                step,
                rip: entry,
                function: entry,
                detail: format!("call target {entry:#x} is not a lifted function"),
                tail: tail.iter().cloned().collect(),
            });
        };
        let mut candidates = Vec::new();
        let mut errs = Vec::new();
        for vid in f.graph.vertices_at(entry) {
            match post_holds(&f.graph.vertices[&vid].state, &env, m) {
                Ok(()) => candidates.push(vid),
                Err(e) => errs.push(format!("{vid}: {e}")),
            }
        }
        if candidates.is_empty() {
            return Err(Violation {
                kind: ViolationKind::Containment,
                step,
                rip: entry,
                function: entry,
                detail: format!("no entry vertex contains the machine: {}", errs.join("; ")),
                tail: tail.iter().cloned().collect(),
            });
        }
        let saved = Reg::CALLEE_SAVED.map(|r| m.reg(r));
        Ok(Frame {
            entry,
            env,
            candidates,
            ret_addr,
            entry_rsp: m.reg(Reg::Rsp),
            saved,
            pending_call: None,
        })
    }

    /// Advance the candidate set across one executed instruction: keep
    /// the destinations of edges out of `prev` labelled with the
    /// instruction at `prev_rip` whose target vertex matches the new
    /// `rip` and whose invariant contains the machine. Fresh-symbol
    /// bindings witnessed by matching destinations are committed into
    /// the frame environment.
    #[allow(clippy::too_many_arguments)]
    fn advance(
        &self,
        frame: &mut Frame,
        prev: &[VertexId],
        prev_rip: u64,
        m: &Machine,
        step: usize,
        tail: &VecDeque<String>,
    ) -> Result<(), Violation> {
        let f = &self.lift.functions[&frame.entry];
        let mut next: Vec<VertexId> = Vec::new();
        let mut rip_matched = false;
        let mut errs: Vec<String> = Vec::new();
        for &cand in prev {
            for e in f.graph.successors(cand) {
                if e.instr.addr != prev_rip {
                    continue;
                }
                let VertexId::At(a, _) = e.to else { continue };
                if a != m.rip {
                    continue;
                }
                rip_matched = true;
                let dest = &f.graph.vertices[&e.to].state;
                let bound = bind_fresh(dest, &frame.env, m);
                match post_holds(dest, &bound, m) {
                    Ok(()) => {
                        if !next.contains(&e.to) {
                            next.push(e.to);
                        }
                        frame.env = bound;
                    }
                    Err(err) => errs.push(format!("{}: {err}", e.to)),
                }
            }
        }
        if next.is_empty() {
            let (kind, detail) = if rip_matched {
                (
                    ViolationKind::Containment,
                    format!("no destination invariant contains the machine: {}", errs.join("; ")),
                )
            } else {
                (
                    ViolationKind::MissingEdge,
                    format!(
                        "no HG edge from {} at {prev_rip:#x} reaches rip {:#x}",
                        prev.iter().map(|v| v.to_string()).collect::<Vec<_>>().join("|"),
                        m.rip
                    ),
                )
            };
            return Err(Violation {
                kind,
                step,
                rip: prev_rip,
                function: frame.entry,
                detail,
                tail: tail.iter().cloned().collect(),
            });
        }
        frame.candidates = next;
        Ok(())
    }

    /// Run and check one trace from the given entry state.
    ///
    /// `coverage` is updated with every executed mnemonic, replayed
    /// edge kind and the final stop reason.
    pub fn check_trace(&self, es: &EntryState, coverage: &mut Coverage) -> TraceOutcome {
        let mut m = Machine::from_binary(self.binary);
        let entry = self.binary.entry;
        m.rip = entry;
        m.push_return_address(SENTINEL);
        m.set_reg(RegRef::full(Reg::Rdi), es.rdi);
        for (r, v) in [Reg::Rax, Reg::Rcx, Reg::Rdx, Reg::Rsi, Reg::R8, Reg::R9]
            .into_iter()
            .zip(es.scratch)
        {
            m.set_reg(RegRef::full(r), v);
        }

        let mut tail: VecDeque<String> = VecDeque::with_capacity(12);
        let mut frames: Vec<Frame> = Vec::new();
        let mut steps = 0usize;
        let mut writes_checked = 0usize;
        let mut indirect_checked = 0usize;

        macro_rules! outcome {
            ($stop:expr) => {{
                let stop = $stop;
                coverage.record_stop(stop.key());
                return TraceOutcome { steps, stop, violation: None, writes_checked, indirect_checked };
            }};
        }
        macro_rules! violation {
            ($v:expr) => {{
                coverage.record_stop("violation");
                return TraceOutcome {
                    steps,
                    stop: TraceStop::Returned,
                    violation: Some($v),
                    writes_checked,
                    indirect_checked,
                };
            }};
        }

        match self.enter_frame(entry, &mut m, SENTINEL, 0, &tail) {
            Ok(f) => frames.push(f),
            Err(v) => violation!(v),
        }

        loop {
            if steps >= self.max_steps {
                outcome!(TraceStop::StepLimit);
            }
            let frame_entry = frames.last().expect("frame").entry;
            let prev_rip = m.rip;

            // Annotated instruction: the guarantee (and the trace)
            // stops here. An unresolvable callback call-site counts as
            // callback edge coverage.
            if self.annotated(frame_entry, prev_rip) {
                if let Ok(i) = decode(self.binary.fetch_window(prev_rip).unwrap_or(&[]), prev_rip) {
                    if i.mnemonic == Mnemonic::Call {
                        coverage.record_edge(EdgeKind::Callback);
                    }
                }
                outcome!(TraceStop::Annotated(prev_rip));
            }

            let Some(window) = self.binary.fetch_window(prev_rip) else {
                violation!(Violation {
                    kind: ViolationKind::BoundedControlFlow,
                    step: steps,
                    rip: prev_rip,
                    function: frame_entry,
                    detail: format!("rip {prev_rip:#x} left the text section"),
                    tail: tail.iter().cloned().collect(),
                });
            };
            let instr = match decode(window, prev_rip) {
                Ok(i) => i,
                Err(e) => outcome!(TraceStop::Fault(format!("decode: {e}"))),
            };

            // Record the step (ring buffer): rip, instruction, and the
            // memory write it is about to perform, if any.
            if tail.len() == 12 {
                tail.pop_front();
            }
            let wr = mem_write_note(&m, &instr);
            tail.push_back(format!(
                "step {steps}: {prev_rip:#x}: {instr}  rax={:#x} rsp={:#x}{wr}",
                m.reg(Reg::Rax),
                m.reg(Reg::Rsp)
            ));

            // Cross-validate the static write classification: the
            // machine is contained in some candidate vertex at
            // `prev_rip` (checked each step), so its concrete write
            // address must satisfy at least one class claimed by the
            // invariants at this instruction. Computed pre-execution,
            // like the trace log above.
            if let Some(map) = &self.write_classes {
                if let Some(claim) = map.claim(frame_entry, prev_rip) {
                    if let Some(addr) = concrete_write_addr(&m, &instr) {
                        let entry_rsp = frames.last().expect("frame").entry_rsp;
                        match claim.admits(addr, entry_rsp) {
                            Some(true) => writes_checked += 1,
                            Some(false) => violation!(Violation {
                                kind: ViolationKind::WriteClassification,
                                step: steps,
                                rip: prev_rip,
                                function: frame_entry,
                                detail: format!(
                                    "concrete write to {addr:#x} (rsp0 {entry_rsp:#x}) \
                                     outside all claimed classes: {}",
                                    claim
                                        .classes
                                        .iter()
                                        .map(|c| c.to_string())
                                        .collect::<Vec<_>>()
                                        .join(" | ")
                                ),
                                tail: tail.iter().cloned().collect(),
                            }),
                            None => {}
                        }
                    }
                }
            }

            // Execute on the independent semantics.
            match m.exec(&instr) {
                Ok(Event::Normal) => {}
                Ok(Event::Halt) => outcome!(TraceStop::Fault("halt outside stub".into())),
                Ok(Event::Syscall) => {}
                Err(e) => outcome!(TraceStop::Fault(e.to_string())),
            }
            coverage.record_mnemonic(hgl_corpus::gen::mnemonic_stem(instr.mnemonic));
            steps += 1;

            match instr.mnemonic {
                Mnemonic::Ret => {
                    let frame = frames.last().expect("frame");
                    // Sanity: return-address integrity.
                    if m.rip != frame.ret_addr {
                        violation!(Violation {
                            kind: ViolationKind::ReturnAddressIntegrity,
                            step: steps,
                            rip: prev_rip,
                            function: frame.entry,
                            detail: format!(
                                "ret to {:#x}, call pushed {:#x}",
                                m.rip, frame.ret_addr
                            ),
                            tail: tail.iter().cloned().collect(),
                        });
                    }
                    // Sanity: calling-convention adherence.
                    let rsp_now = m.reg(Reg::Rsp);
                    if rsp_now != frame.entry_rsp.wrapping_add(8) {
                        violation!(Violation {
                            kind: ViolationKind::CallingConvention,
                            step: steps,
                            rip: prev_rip,
                            function: frame.entry,
                            detail: format!(
                                "rsp {:#x} after ret, expected {:#x}",
                                rsp_now,
                                frame.entry_rsp.wrapping_add(8)
                            ),
                            tail: tail.iter().cloned().collect(),
                        });
                    }
                    for (r, v0) in Reg::CALLEE_SAVED.iter().zip(frame.saved) {
                        if m.reg(*r) != v0 {
                            violation!(Violation {
                                kind: ViolationKind::CallingConvention,
                                step: steps,
                                rip: prev_rip,
                                function: frame.entry,
                                detail: format!(
                                    "callee-saved {r} is {:#x}, was {v0:#x} at entry",
                                    m.reg(*r)
                                ),
                                tail: tail.iter().cloned().collect(),
                            });
                        }
                    }
                    // Edge: some candidate must reach Exit via this ret,
                    // with the machine contained in the exit invariant.
                    let f = &self.lift.functions[&frame.entry];
                    let mut exit_ok = false;
                    let mut errs = Vec::new();
                    for &cand in &frame.candidates {
                        for e in f.graph.successors(cand) {
                            if e.instr.addr != prev_rip || e.to != VertexId::Exit {
                                continue;
                            }
                            let dest = &f.graph.vertices[&VertexId::Exit].state;
                            let bound = bind_fresh(dest, &frame.env, &m);
                            match post_holds(dest, &bound, &m) {
                                Ok(()) => exit_ok = true,
                                Err(e) => errs.push(e),
                            }
                        }
                    }
                    if !exit_ok {
                        violation!(Violation {
                            kind: ViolationKind::MissingEdge,
                            step: steps,
                            rip: prev_rip,
                            function: frame.entry,
                            detail: format!(
                                "no matching exit edge for ret: {}",
                                errs.join("; ")
                            ),
                            tail: tail.iter().cloned().collect(),
                        });
                    }
                    coverage.record_edge(EdgeKind::Ret);
                    frames.pop();
                    match frames.last_mut() {
                        None => {
                            debug_assert_eq!(m.rip, SENTINEL);
                            outcome!(TraceStop::Returned);
                        }
                        Some(caller) => {
                            let (call_cands, call_addr) =
                                caller.pending_call.take().expect("pending call");
                            let prev = call_cands;
                            let mut c2 = std::mem::replace(
                                caller,
                                Frame {
                                    entry: 0,
                                    env: Env::new(),
                                    candidates: Vec::new(),
                                    ret_addr: 0,
                                    entry_rsp: 0,
                                    saved: [0; 6],
                                    pending_call: None,
                                },
                            );
                            let r = self.advance(&mut c2, &prev, call_addr, &m, steps, &tail);
                            *caller = c2;
                            if let Err(v) = r {
                                violation!(v);
                            }
                        }
                    }
                }
                Mnemonic::Call => {
                    coverage.record_edge(EdgeKind::Call);
                    let target = m.rip;
                    if let Some(name) = self.binary.external_at(target) {
                        if TERMINATING_EXTERNALS.contains(&name) {
                            outcome!(TraceStop::Terminated);
                        }
                        // Benign System V stub: pop the return address,
                        // zero rax, resume — mirroring the emulator
                        // harness and the lifter's external contract.
                        let rsp = m.reg(Reg::Rsp);
                        let ra = m.mem.read(rsp, 8);
                        m.set_reg(RegRef::full(Reg::Rsp), rsp.wrapping_add(8));
                        m.set_reg(RegRef::full(Reg::Rax), 0);
                        m.rip = ra;
                        let frame = frames.last_mut().expect("frame");
                        let prev = frame.candidates.clone();
                        if let Err(v) = self.advance(frame, &prev, prev_rip, &m, steps, &tail) {
                            violation!(v);
                        }
                    } else {
                        // Internal call: open a callee frame. The
                        // caller's call edge is checked when the callee
                        // returns (it targets the return site).
                        let ra = m.mem.read(m.reg(Reg::Rsp), 8);
                        let caller = frames.last_mut().expect("frame");
                        caller.pending_call = Some((caller.candidates.clone(), prev_rip));
                        match self.enter_frame(target, &mut m, ra, steps, &tail) {
                            Ok(f) => frames.push(f),
                            Err(v) => violation!(v),
                        }
                    }
                }
                Mnemonic::Jcc(_) => {
                    let taken = m.rip != instr.next_addr();
                    coverage.record_edge(if taken { EdgeKind::Jcc } else { EdgeKind::FallThrough });
                    let frame = frames.last_mut().expect("frame");
                    let prev = frame.candidates.clone();
                    if let Err(v) = self.advance(frame, &prev, prev_rip, &m, steps, &tail) {
                        violation!(v);
                    }
                }
                Mnemonic::Jmp => {
                    let kind = match instr.operands.first() {
                        Some(Operand::Mem(_)) => EdgeKind::JumpTable,
                        _ => EdgeKind::FallThrough,
                    };
                    coverage.record_edge(kind);
                    // Cross-validate a refinement claim: the concrete
                    // target of a claimed-resolved indirect jump must
                    // be in the claimed set.
                    if let Some(targets) =
                        self.indirect_claims.as_ref().and_then(|c| c.get(&prev_rip))
                    {
                        indirect_checked += 1;
                        if !targets.contains(&m.rip) {
                            violation!(Violation {
                                kind: ViolationKind::IndirectContainment,
                                step: steps,
                                rip: prev_rip,
                                function: frame_entry,
                                detail: format!(
                                    "indirect jump landed at {:#x}, outside the {} claimed target(s)",
                                    m.rip,
                                    targets.len()
                                ),
                                tail: tail.iter().cloned().collect(),
                            });
                        }
                    }
                    let frame = frames.last_mut().expect("frame");
                    let prev = frame.candidates.clone();
                    if let Err(v) = self.advance(frame, &prev, prev_rip, &m, steps, &tail) {
                        violation!(v);
                    }
                }
                _ => {
                    coverage.record_edge(EdgeKind::FallThrough);
                    let frame = frames.last_mut().expect("frame");
                    let prev = frame.candidates.clone();
                    if let Err(v) = self.advance(frame, &prev, prev_rip, &m, steps, &tail) {
                        violation!(v);
                    }
                }
            }
        }
    }
}

/// The concrete start address of the memory write `instr` is about to
/// perform on `m`, using the *same* write-site predicate as the static
/// classifier ([`hgl_analysis::writes::write_region`]): an explicit
/// first-operand memory destination, or the implicit `[rsp - 8, 8]`
/// slot of `push`/`call`.
fn concrete_write_addr(m: &Machine, instr: &Instr) -> Option<u64> {
    if instr.mnemonic != Mnemonic::Lea {
        if let Some(Operand::Mem(mo)) = instr.operands.first() {
            if writes_first_operand(instr.mnemonic) {
                return Some(m.effective_addr(mo, instr.next_addr()));
            }
        }
    }
    if matches!(instr.mnemonic, Mnemonic::Push | Mnemonic::Call) {
        return Some(m.reg(Reg::Rsp).wrapping_sub(8));
    }
    None
}

/// Render the memory write `instr` is about to perform on `m`, for the
/// trace log ("mem[addr] <- value/size").
fn mem_write_note(m: &Machine, instr: &Instr) -> String {
    let writes_mem_dst = matches!(
        instr.mnemonic,
        Mnemonic::Mov
            | Mnemonic::Add
            | Mnemonic::Sub
            | Mnemonic::Xor
            | Mnemonic::And
            | Mnemonic::Or
            | Mnemonic::Shl
            | Mnemonic::Shr
            | Mnemonic::Sar
            | Mnemonic::Inc
            | Mnemonic::Dec
            | Mnemonic::Not
            | Mnemonic::Neg
    );
    match instr.operands.first() {
        Some(Operand::Mem(mo)) if writes_mem_dst => {
            let a = m.effective_addr(mo, instr.next_addr());
            format!("  mem[{a:#x}]<-{}B", mo.size.bytes())
        }
        _ if matches!(instr.mnemonic, Mnemonic::Push | Mnemonic::Call) => {
            let a = m.reg(Reg::Rsp).wrapping_sub(8);
            format!("  mem[{a:#x}]<-8B")
        }
        _ => String::new(),
    }
}
