//! Differential-oracle smoke: a small identity and a small guarded
//! campaign must both find zero divergences, quickly. The full-size
//! campaigns live in the workspace-level `tests/differential_rewrite.rs`.

use hgl_oracle::{run_differential, DiffConfig};

#[test]
fn small_identity_campaign_is_equivalent() {
    let cfg = DiffConfig { programs: 6, entries_per_program: 2, ..DiffConfig::default() };
    let report = run_differential(&cfg);
    assert!(report.divergence.is_none(), "identity divergence:\n{report}");
    assert!(report.programs_run >= 4, "too many skips:\n{report}");
    assert_eq!(report.guards_inserted, 0, "identity mode must not insert guards");
}

#[test]
fn small_guarded_campaign_is_equivalent_modulo_guard_abi() {
    let cfg = DiffConfig {
        programs: 6,
        entries_per_program: 2,
        guarded: true,
        ..DiffConfig::default()
    };
    let report = run_differential(&cfg);
    assert!(report.divergence.is_none(), "guarded divergence:\n{report}");
    assert!(report.programs_run >= 4, "too many skips:\n{report}");
}

#[test]
fn identity_relift_correspondence_holds() {
    let cfg = DiffConfig {
        programs: 4,
        entries_per_program: 1,
        relift_each: true,
        ..DiffConfig::default()
    };
    let report = run_differential(&cfg);
    assert!(report.divergence.is_none(), "{report}");
    assert_eq!(report.relifts_ok, report.programs_run);
}
