//! Fast sanity checks of the trace oracle on tiny campaigns. The full
//! campaign (50 programs x 4 entries) and the injected-bug detection
//! test live at the workspace root (`tests/trace_oracle.rs`).

use hgl_oracle::{run_campaign, synth_program, CampaignConfig};

#[test]
fn tiny_campaign_conforms() {
    let cfg = CampaignConfig { programs: 6, entries_per_program: 2, ..CampaignConfig::default() };
    let report = run_campaign(&cfg);
    if let Some(f) = &report.failure {
        panic!("tiny campaign found a violation:\n{f}");
    }
    assert!(report.programs_run > 0, "no program was traced:\n{report}");
    assert!(report.traces_run >= report.programs_run);
    assert!(report.steps_total > 0);
}

#[test]
fn synthesis_is_deterministic() {
    let a = synth_program(42, 3);
    let b = synth_program(42, 3);
    let ba = a.asm.assemble().expect("assembles");
    let bb = b.asm.assemble().expect("assembles");
    assert_eq!(ba.entry, bb.entry);
    assert_eq!(a.spans, b.spans);
    let wa = ba.fetch_window(ba.entry).expect("code");
    let wb = bb.fetch_window(bb.entry).expect("code");
    assert_eq!(&wa[..16.min(wa.len())], &wb[..16.min(wb.len())]);
}
