//! Re-emission: serialise a rewritten loaded view to a runnable ELF64.

use hgl_elf::{Binary, Builder};

/// Serialise `bin` back into an ELF64 image. Sections are named by
/// their permissions (`.textN` / `.dataN` / `.rodataN`) and keep their
/// original virtual addresses, so the emitted file parses back to the
/// same loaded view — `hgl_elf::parse(elf_image(b))` round-trips.
pub fn elf_image(bin: &Binary) -> Vec<u8> {
    let mut b = Builder::new().entry(bin.entry);
    for (i, seg) in bin.segments.iter().enumerate() {
        let name = if seg.flags.x {
            format!(".text{i}")
        } else if seg.flags.w {
            format!(".data{i}")
        } else {
            format!(".rodata{i}")
        };
        b = b.section(&name, seg.vaddr, seg.bytes.clone(), seg.flags);
    }
    for (addr, name) in &bin.externals {
        b = b.external(*addr, name);
    }
    for (addr, name) in &bin.symbols {
        b = b.symbol(*addr, name);
    }
    b.build()
}
