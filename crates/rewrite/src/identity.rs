//! Identity recompilation: prove the codec round-trips the image.
//!
//! The rewriter's premise is that `encode` is a left inverse of
//! `decode` on every instruction the lifter explored. This module
//! checks that premise *per artifact*: every instruction of every
//! lifted function's Hoare Graph is re-encoded and compared against
//! the original bytes at its address. Because the identity output
//! keeps every byte in place, jump tables, RIP-relative data and
//! unexplored gap bytes stay valid with no relocation argument needed.

use crate::RewriteError;
use hgl_core::lift::LiftResult;
use hgl_elf::Binary;
use hgl_x86::encode;

/// Walk every lifted function's graph in layout order and check that
/// re-encoding each decoded instruction reproduces the original bytes.
/// Returns `(functions_checked, instructions_reencoded)`.
///
/// # Errors
///
/// [`RewriteError::Reencode`] on the first mismatch — an encoder gap
/// that must be fixed before any rewriting is trustworthy.
pub fn check_reencode(binary: &Binary, lift: &LiftResult) -> Result<(u64, u64), RewriteError> {
    let mut functions = 0u64;
    let mut instructions = 0u64;
    let mut seen = std::collections::BTreeSet::new();
    for f in lift.functions.values() {
        if !f.is_lifted() {
            continue;
        }
        functions += 1;
        for (addr, instr) in f.graph.instructions() {
            if !seen.insert(addr) {
                continue;
            }
            let bytes = encode(instr).map_err(|e| RewriteError::Reencode {
                addr,
                detail: format!("encoder refused {instr}: {e}"),
            })?;
            let original =
                binary.read(addr, instr.len as u64).ok_or(RewriteError::Reencode {
                    addr,
                    detail: "instruction bytes unreadable in image".to_string(),
                })?;
            if bytes != original {
                return Err(RewriteError::Reencode {
                    addr,
                    detail: format!(
                        "{instr}: encoded {bytes:02x?}, image has {original:02x?}"
                    ),
                });
            }
            instructions += 1;
        }
    }
    Ok((functions, instructions))
}
