//! Verified rewriting: lift → transform → re-emit.
//!
//! The lifter proves properties of a binary; this crate closes the
//! loop and *changes* the binary, keeping the proofs honest by
//! validating every produced artifact instead of trusting the
//! transformer (the translation-validation stance of the
//! proof-producing-lifting line of work).
//!
//! The pipeline:
//!
//! 1. **Identity recompilation** ([`identity`]) — walk every lifted
//!    function's Hoare Graph in layout order, re-encode each decoded
//!    instruction through `hgl_x86::encode`, and check the bytes
//!    reproduce the original image exactly. Nothing moves, so jump
//!    tables and RIP-relative data stay valid by construction.
//! 2. **Instrumentation passes** ([`pass`]) — transformations behind
//!    the [`RewritePass`] trait. The headline pass ([`shadow`])
//!    plants a shadow-stack guard at every `ret` of every function
//!    whose return-address integrity the `crates/analysis` lints could
//!    not prove (assumption-backed separations, unbounded stack
//!    depth), via address-preserving detour patching: a 5-byte
//!    `jmp rel32` at the function entry and before each `ret` detours
//!    through out-of-line stubs that maintain a shadow return-address
//!    ring and `hlt` on mismatch.
//! 3. **Re-emission** ([`emit`]) — serialise the rewritten loaded view
//!    back to a runnable ELF64 image.
//! 4. **Verification** ([`verify`]) — per-artifact: re-lift the
//!    identity output and check Hoare-Graph correspondence via
//!    `hgl_export::correspond`; the differential trace oracle in
//!    `hgl-oracle` replays original-vs-rewritten campaigns on top of
//!    the [`RewriteOutput`] address maps this crate produces.

#![forbid(unsafe_code)]

pub mod emit;
pub mod identity;
pub mod pass;
pub mod shadow;
pub mod verify;

use hgl_core::lift::LiftResult;
use hgl_core::RewriteStats;
use hgl_elf::Binary;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

pub use emit::elf_image;
pub use pass::{PassContext, RewritePass};
pub use shadow::ShadowStackPass;
pub use verify::{verify_relift, verify_relift_entry, ReliftVerdict};

/// Why a rewrite failed. Every variant is a *refusal*, not a broken
/// artifact: the rewriter never emits a binary it could not validate
/// structurally.
#[derive(Debug, Clone)]
pub enum RewriteError {
    /// The binary (or a required function) did not lift.
    NotLifted(String),
    /// Re-encoding a decoded instruction did not reproduce the
    /// original bytes — an encoder gap; the identity premise fails.
    Reencode {
        /// Address of the instruction.
        addr: u64,
        /// What differed.
        detail: String,
    },
    /// A detour patch site violates the steal-site rules (control
    /// flow, RIP-relative data, or a branch target inside the span).
    UnsafeStealSite {
        /// Function being instrumented.
        function: u64,
        /// Offending address.
        addr: u64,
        /// Which rule broke.
        detail: String,
    },
    /// Stub assembly failed.
    Asm(String),
    /// Section placement failed (overlap, out of address space).
    Layout(String),
}

impl fmt::Display for RewriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RewriteError::NotLifted(s) => write!(f, "binary did not lift: {s}"),
            RewriteError::Reencode { addr, detail } => {
                write!(f, "re-encode mismatch at {addr:#x}: {detail}")
            }
            RewriteError::UnsafeStealSite { function, addr, detail } => {
                write!(f, "unsafe steal site in {function:#x} at {addr:#x}: {detail}")
            }
            RewriteError::Asm(s) => write!(f, "stub assembly: {s}"),
            RewriteError::Layout(s) => write!(f, "layout: {s}"),
        }
    }
}

impl From<hgl_asm::AsmError> for RewriteError {
    fn from(e: hgl_asm::AsmError) -> RewriteError {
        RewriteError::Asm(e.to_string())
    }
}

/// Placement of the shadow-stack data and guard-code sections in the
/// rewritten image.
#[derive(Debug, Clone, Copy)]
pub struct ShadowLayout {
    /// Address of the index cell (8 bytes); slots follow at `meta + 8`.
    pub meta: u64,
    /// Ring capacity in return-address slots.
    pub depth: u64,
    /// Start of the RW shadow section.
    pub base: u64,
    /// Size of the RW shadow section in bytes.
    pub size: u64,
    /// Start of the RX guard-code section.
    pub guard_base: u64,
    /// Size of the RX guard-code section in bytes.
    pub guard_size: u64,
}

impl ShadowLayout {
    /// Is `addr` inside the RW shadow section?
    pub fn in_shadow(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.base + self.size
    }

    /// Is `addr` inside the RX guard-code section?
    pub fn in_guard(&self, addr: u64) -> bool {
        addr >= self.guard_base && addr < self.guard_base + self.guard_size
    }
}

/// One instrumented `ret`.
#[derive(Debug, Clone, Copy)]
pub struct GuardSite {
    /// Function entry.
    pub function: u64,
    /// Address of the guarded `ret` in the original image.
    pub ret_addr: u64,
    /// Address of its detour stub in the guard section.
    pub stub_addr: u64,
}

/// The product of a rewrite: the rewritten loaded view plus everything
/// a validator needs to relate its executions back to the original.
#[derive(Debug, Clone)]
pub struct RewriteOutput {
    /// The rewritten binary (loaded view; see [`elf_image`] to
    /// serialise).
    pub binary: Binary,
    /// Counters for the `rewrite` block of `hgl-metrics-v1`.
    pub stats: RewriteStats,
    /// Stub instruction address → the original address it replays.
    /// Trace normalisation maps rewritten `rip`s through this.
    pub addr_map: BTreeMap<u64, u64>,
    /// Guard-only instruction addresses (stub bookkeeping, patch
    /// `jmp`s, trap `hlt`s): steps at these `rip`s exist only in the
    /// rewritten execution and are dropped by normalisation.
    pub skip_addrs: BTreeSet<u64>,
    /// Shadow/guard section placement, when an instrumentation pass
    /// ran. `None` for identity rewrites.
    pub shadow: Option<ShadowLayout>,
    /// Every instrumented `ret`.
    pub guards: Vec<GuardSite>,
}

impl RewriteOutput {
    /// Normalise one executed `rip` of the rewritten binary: `None`
    /// for guard-only steps, the corresponding original address
    /// otherwise.
    pub fn normalize_rip(&self, rip: u64) -> Option<u64> {
        if self.skip_addrs.contains(&rip) {
            return None;
        }
        Some(*self.addr_map.get(&rip).unwrap_or(&rip))
    }
}

/// Rewrite `binary`: identity-recompile (always), then apply `passes`
/// in order.
///
/// # Errors
///
/// Refuses (with [`RewriteError`]) when no function lifted, when
/// re-encoding fails to reproduce the original image, or when a pass
/// cannot patch safely.
pub fn rewrite(
    binary: &Binary,
    lift: &LiftResult,
    passes: &[&dyn RewritePass],
) -> Result<RewriteOutput, RewriteError> {
    let (functions, instructions) = identity::check_reencode(binary, lift)?;
    if functions == 0 {
        return Err(RewriteError::NotLifted("no function lifted cleanly".to_string()));
    }
    let mut out = RewriteOutput {
        binary: binary.clone(),
        stats: RewriteStats {
            functions,
            instructions_reencoded: instructions,
            bytes_delta: 0,
            guards_inserted: 0,
            verify_relift_ok: None,
            verify_traces_ok: None,
        },
        addr_map: BTreeMap::new(),
        skip_addrs: BTreeSet::new(),
        shadow: None,
        guards: Vec::new(),
    };
    // Lints decide where instrumentation is required; run them once
    // and share the report across passes.
    let report = hgl_analysis::analyze(binary, lift, &hgl_analysis::AnalysisConfig::default());
    let ctx = PassContext { binary, lift, report: &report };
    for p in passes {
        p.apply(&ctx, &mut out)?;
    }
    let original_len: u64 = binary.segments.iter().map(|s| s.bytes.len() as u64).sum();
    let rewritten_len: u64 = out.binary.segments.iter().map(|s| s.bytes.len() as u64).sum();
    out.stats.bytes_delta = rewritten_len as i64 - original_len as i64;
    Ok(out)
}
