//! The instrumentation-pass interface.

use crate::{RewriteError, RewriteOutput};
use hgl_analysis::AnalysisReport;
use hgl_core::lift::LiftResult;
use hgl_elf::Binary;

/// Everything a pass may consult: the original binary, its lift, and
/// the static-analysis report whose diagnostics decide where
/// instrumentation is required.
pub struct PassContext<'a> {
    /// The original (pre-rewrite) binary.
    pub binary: &'a Binary,
    /// Its lift result.
    pub lift: &'a LiftResult,
    /// Lints over the lift.
    pub report: &'a AnalysisReport,
}

/// A rewrite transformation. Passes run after identity recompilation
/// and edit the [`RewriteOutput`] in place: patch segment bytes, add
/// sections, and record the address maps that let validators relate
/// rewritten executions back to the original.
pub trait RewritePass {
    /// Stable pass name (`--pass <name>` on the CLI).
    fn name(&self) -> &'static str;

    /// Apply the transformation.
    ///
    /// # Errors
    ///
    /// A pass must refuse ([`RewriteError`]) rather than emit a patch
    /// it cannot argue is behavior-preserving (modulo its documented
    /// guard ABI).
    fn apply(&self, ctx: &PassContext<'_>, out: &mut RewriteOutput) -> Result<(), RewriteError>;
}

/// Look up a built-in pass by CLI name.
pub fn by_name(name: &str) -> Option<Box<dyn RewritePass>> {
    match name {
        "shadow-stack" => Some(Box::new(crate::shadow::ShadowStackPass)),
        _ => None,
    }
}
