//! The shadow-stack guard pass.
//!
//! # What gets instrumented
//!
//! Every `ret` of every *lifted* function that the static lints could
//! not prove safe: a `ret-slot-overwrite` diagnostic (an error, or the
//! assumption-backed warning for pointers laundered through mutable
//! memory) or a `stack-depth` warning on the function marks all of its
//! returns as unproven. Functions with clean lint reports keep their
//! bytes untouched — the lifter already proved their return-address
//! integrity, so a dynamic guard would be redundant.
//!
//! # Mechanism: address-preserving detour patching
//!
//! Nothing in the original image moves. At the function entry and
//! before each guarded `ret`, a span of whole instructions at least 5
//! bytes long (the *steal span*) is overwritten with `jmp rel32` to an
//! out-of-line stub; leftover stolen bytes become `hlt` so a stray
//! jump into them traps instead of executing a torn instruction. The
//! stub performs the guard work, replays the stolen instructions
//! verbatim (they are whole, position-independent, and free of
//! control flow by the steal-site rules), and jumps back.
//!
//! Steal-site rules, checked per span and refused on violation:
//! * every stolen instruction is non-control-flow and not
//!   RIP-relative (so the replayed copy is position-independent);
//! * no branch target of any lifted function lands strictly inside
//!   the span (the span *start* may be a target — it holds the detour
//!   `jmp`);
//! * spans do not overlap each other.
//!
//! # Guard ABI
//!
//! The shadow stack is a ring of [`SHADOW_DEPTH`] return-address
//! slots plus an index cell, in a fresh RW section past the image.
//! Entry stubs push the live return address (`[rsp]` at function
//! entry); ret stubs pop and compare against the live `[rsp]` after
//! the epilogue replay, and `hlt` on mismatch — which the emulator
//! surfaces as a halt event, the trap channel the guard-efficacy
//! fixtures assert on.
//!
//! Stubs clobber `r10`, `r11` and the arithmetic flags. Both
//! registers are caller-saved scratch that the corpus generator and
//! its ABI never carry across call or return boundaries, and the
//! flags are dead at function entry and after `ret` under the same
//! ABI; the differential oracle compares traces *modulo* exactly this
//! clobber set for instrumented binaries.

use crate::pass::{PassContext, RewritePass};
use crate::{GuardSite, RewriteError, RewriteOutput, ShadowLayout};
use hgl_analysis::{Rule, Severity};
use hgl_asm::Asm;
use hgl_core::graph::VertexId;
use hgl_core::lift::FnLift;
use hgl_elf::{Binary, Segment, SegmentFlags};
use hgl_x86::{decode, Instr, MemOperand, Mnemonic, Operand, Reg, Width};
use std::collections::{BTreeMap, BTreeSet};

/// Capacity of the shadow ring, in return-address slots. Deeper call
/// chains wrap around; 256 comfortably covers the corpus ABI's call
/// depths while keeping the section one page.
pub const SHADOW_DEPTH: u64 = 256;

/// The detour patch is always a 5-byte `jmp rel32`.
const PATCH_LEN: u64 = 5;

/// The shadow-stack guard pass. See the module docs for the contract.
#[derive(Debug, Default, Clone, Copy)]
pub struct ShadowStackPass;

/// A steal span: whole instructions at `start`, `len` bytes total,
/// `len >= PATCH_LEN`.
struct StealSpan {
    start: u64,
    len: u64,
    instrs: Vec<Instr>,
}

/// Collect every branch-target address across all lifted functions:
/// edge destinations that are not the plain fall-through of their
/// instruction. Detour spans must not contain one strictly inside.
fn branch_targets(lift: &hgl_core::lift::LiftResult) -> BTreeSet<u64> {
    let mut targets = BTreeSet::new();
    for f in lift.functions.values() {
        for e in &f.graph.edges {
            if let VertexId::At(a, _) = e.to {
                if a != e.instr.next_addr() {
                    targets.insert(a);
                }
            }
        }
    }
    targets
}

fn steal_rules(instr: &Instr) -> Option<&'static str> {
    if instr.mnemonic.is_control_flow() || instr.mnemonic == Mnemonic::Call {
        return Some("control flow inside steal span");
    }
    if instr.mem_operands().any(|m| m.rip_relative) {
        return Some("rip-relative operand inside steal span");
    }
    None
}

/// Steal forward from the function entry until `PATCH_LEN` bytes are
/// covered.
fn steal_entry(
    binary: &Binary,
    entry: u64,
    targets: &BTreeSet<u64>,
) -> Result<StealSpan, RewriteError> {
    let mut instrs = Vec::new();
    let mut addr = entry;
    let mut len = 0u64;
    while len < PATCH_LEN {
        let window = binary.fetch_window(addr).ok_or(RewriteError::UnsafeStealSite {
            function: entry,
            addr,
            detail: "entry span runs out of the image".to_string(),
        })?;
        let instr = decode(window, addr).map_err(|e| RewriteError::UnsafeStealSite {
            function: entry,
            addr,
            detail: format!("undecodable instruction: {e}"),
        })?;
        if let Some(rule) = steal_rules(&instr) {
            return Err(RewriteError::UnsafeStealSite { function: entry, addr, detail: rule.into() });
        }
        if addr != entry && targets.contains(&addr) {
            return Err(RewriteError::UnsafeStealSite {
                function: entry,
                addr,
                detail: "branch target strictly inside entry span".to_string(),
            });
        }
        len += instr.len as u64;
        addr = instr.next_addr();
        instrs.push(instr);
    }
    Ok(StealSpan { start: entry, len, instrs })
}

/// Steal backward from a `ret` (inclusive) until `PATCH_LEN` bytes are
/// covered, using the function graph's instruction map to find exact
/// predecessors.
fn steal_ret(
    f: &FnLift,
    ret_addr: u64,
    targets: &BTreeSet<u64>,
) -> Result<StealSpan, RewriteError> {
    let map = f.graph.instructions();
    let ret = map.get(&ret_addr).ok_or(RewriteError::UnsafeStealSite {
        function: f.entry,
        addr: ret_addr,
        detail: "ret not in the function graph".to_string(),
    })?;
    let mut instrs: Vec<Instr> = vec![(*ret).clone()];
    let mut len = ret.len as u64;
    let mut cur = ret_addr;
    while len < PATCH_LEN {
        let prev = map
            .range(..cur)
            .next_back()
            .map(|(_, i)| (*i).clone())
            .filter(|i| i.next_addr() == cur)
            .ok_or(RewriteError::UnsafeStealSite {
                function: f.entry,
                addr: cur,
                detail: "no contiguous predecessor instruction before ret".to_string(),
            })?;
        if let Some(rule) = steal_rules(&prev) {
            return Err(RewriteError::UnsafeStealSite {
                function: f.entry,
                addr: prev.addr,
                detail: rule.into(),
            });
        }
        cur = prev.addr;
        len += prev.len as u64;
        instrs.insert(0, prev);
    }
    // The span start holds the detour; every later instruction must
    // not be a branch target.
    for i in &instrs[1..] {
        if targets.contains(&i.addr) {
            return Err(RewriteError::UnsafeStealSite {
                function: f.entry,
                addr: i.addr,
                detail: "branch target strictly inside ret span".to_string(),
            });
        }
    }
    Ok(StealSpan { start: cur, len, instrs })
}

fn reg64(r: Reg) -> Operand {
    Operand::reg64(r)
}

fn mem8(base: Reg, disp: i64) -> Operand {
    Operand::Mem(MemOperand::base_disp(base, disp, Width::B8))
}

fn ins(m: Mnemonic, ops: Vec<Operand>) -> Instr {
    Instr::new(m, ops, Width::B8)
}

/// `lea r10, [r10 + r11*8 + 8]` — address of shadow slot `r11`.
fn lea_slot() -> Instr {
    let mo = MemOperand {
        base: Some(Reg::R10),
        index: Some(Reg::R11),
        scale: 8,
        disp: 8,
        size: Width::B8,
        rip_relative: false,
    };
    ins(Mnemonic::Lea, vec![reg64(Reg::R10), Operand::Mem(mo)])
}

/// The guard prologue of an entry stub: `slots[idx] := [rsp]`,
/// `idx := (idx + 1) & MASK`. Runs before the stolen entry
/// instructions, while `[rsp]` still holds the return address.
fn entry_guard(meta: u64) -> Vec<Instr> {
    let mask = (SHADOW_DEPTH - 1) as i64;
    vec![
        ins(Mnemonic::Movabs, vec![reg64(Reg::R10), Operand::Imm(meta as i64)]),
        ins(Mnemonic::Mov, vec![reg64(Reg::R11), mem8(Reg::R10, 0)]),
        lea_slot(),
        ins(Mnemonic::Mov, vec![reg64(Reg::R11), mem8(Reg::Rsp, 0)]),
        ins(Mnemonic::Mov, vec![mem8(Reg::R10, 0), reg64(Reg::R11)]),
        ins(Mnemonic::Movabs, vec![reg64(Reg::R10), Operand::Imm(meta as i64)]),
        ins(Mnemonic::Mov, vec![reg64(Reg::R11), mem8(Reg::R10, 0)]),
        ins(Mnemonic::Add, vec![reg64(Reg::R11), Operand::Imm(1)]),
        ins(Mnemonic::And, vec![reg64(Reg::R11), Operand::Imm(mask)]),
        ins(Mnemonic::Mov, vec![mem8(Reg::R10, 0), reg64(Reg::R11)]),
    ]
}

/// The guard epilogue of a ret stub: `idx := (idx - 1) & MASK`,
/// `r10 := slots[idx]`, compare against the live `[rsp]`. Runs after
/// the stolen epilogue replay, when `rsp` again points at the return
/// address.
fn ret_guard(meta: u64) -> Vec<Instr> {
    let mask = (SHADOW_DEPTH - 1) as i64;
    vec![
        ins(Mnemonic::Movabs, vec![reg64(Reg::R10), Operand::Imm(meta as i64)]),
        ins(Mnemonic::Mov, vec![reg64(Reg::R11), mem8(Reg::R10, 0)]),
        ins(Mnemonic::Sub, vec![reg64(Reg::R11), Operand::Imm(1)]),
        ins(Mnemonic::And, vec![reg64(Reg::R11), Operand::Imm(mask)]),
        ins(Mnemonic::Mov, vec![mem8(Reg::R10, 0), reg64(Reg::R11)]),
        lea_slot(),
        ins(Mnemonic::Mov, vec![reg64(Reg::R10), mem8(Reg::R10, 0)]),
        ins(Mnemonic::Mov, vec![reg64(Reg::R11), mem8(Reg::Rsp, 0)]),
        ins(Mnemonic::Cmp, vec![reg64(Reg::R10), reg64(Reg::R11)]),
    ]
}

/// A clone of `i` with layout fields cleared, ready for re-assembly at
/// a stub address.
fn relocated(i: &Instr) -> Instr {
    let mut c = i.clone();
    c.addr = 0;
    c.len = 0;
    c
}

/// Absolute direct `jmp` to `target` (the encoder derives `rel32` from
/// the assembled address).
fn jmp_abs(target: u64) -> Instr {
    ins(Mnemonic::Jmp, vec![Operand::Imm(target as i64)])
}

impl RewritePass for ShadowStackPass {
    fn name(&self) -> &'static str {
        "shadow-stack"
    }

    fn apply(&self, ctx: &PassContext<'_>, out: &mut RewriteOutput) -> Result<(), RewriteError> {
        // 1. Which functions need guards: lifted functions with a
        //    ret-slot or stack-depth diagnostic of any severity.
        let mut unproven: BTreeSet<u64> = BTreeSet::new();
        for d in &ctx.report.diags {
            if matches!(d.rule, Rule::RetSlotOverwrite | Rule::StackDepth)
                && matches!(d.severity, Severity::Warning | Severity::Error)
            {
                unproven.insert(d.function);
            }
        }
        let targets: Vec<&FnLift> = ctx
            .lift
            .functions
            .values()
            .filter(|f| f.is_lifted() && unproven.contains(&f.entry))
            .collect();
        if targets.is_empty() {
            return Ok(());
        }

        // 2. Place the new sections past everything in the image.
        let max_end = out
            .binary
            .segments
            .iter()
            .map(|s| s.vaddr + s.bytes.len() as u64)
            .max()
            .unwrap_or(0);
        let page = |a: u64| (a + 0xfff) & !0xfff;
        let shadow_base = page(max_end);
        let shadow_size = 8 + SHADOW_DEPTH * 8;
        let guard_base = page(shadow_base + shadow_size);
        if guard_base >= 1 << 31 {
            return Err(RewriteError::Layout(format!(
                "guard section at {guard_base:#x} is outside the rel32/disp32 window"
            )));
        }

        // 3. Plan the steal spans.
        let branch_set = branch_targets(ctx.lift);
        struct Plan<'f> {
            f: &'f FnLift,
            entry_span: StealSpan,
            ret_spans: Vec<StealSpan>,
        }
        let mut plans = Vec::new();
        let mut claimed: Vec<(u64, u64)> = Vec::new();
        let mut claim = |span: &StealSpan, f: u64| -> Result<(), RewriteError> {
            let range = (span.start, span.start + span.len);
            for &(s, e) in &claimed {
                if range.0 < e && s < range.1 {
                    return Err(RewriteError::UnsafeStealSite {
                        function: f,
                        addr: span.start,
                        detail: "steal spans overlap".to_string(),
                    });
                }
            }
            claimed.push(range);
            Ok(())
        };
        for f in &targets {
            let entry_span = steal_entry(ctx.binary, f.entry, &branch_set)?;
            claim(&entry_span, f.entry)?;
            let mut ret_spans = Vec::new();
            let rets: Vec<u64> = f
                .graph
                .instructions()
                .iter()
                .filter(|(_, i)| i.mnemonic == Mnemonic::Ret)
                .map(|(a, _)| *a)
                .collect();
            if rets.is_empty() {
                continue;
            }
            for ret_addr in rets {
                let span = steal_ret(f, ret_addr, &branch_set)?;
                claim(&span, f.entry)?;
                ret_spans.push(span);
            }
            plans.push(Plan { f, entry_span, ret_spans });
        }
        if plans.is_empty() {
            return Ok(());
        }

        // 4. Assemble all stubs in one text section at `guard_base`,
        //    re-linking the detours through the assembler's layout
        //    engine.
        let meta = shadow_base;
        let mut asm = Asm::new();
        asm.text_base(guard_base);
        for plan in &plans {
            let e = plan.f.entry;
            asm.label(&format!("e_{e:x}"));
            for g in entry_guard(meta) {
                asm.ins(g);
            }
            for i in &plan.entry_span.instrs {
                asm.ins(relocated(i));
            }
            asm.ins(jmp_abs(plan.entry_span.start + plan.entry_span.len));
            for span in &plan.ret_spans {
                let ret_addr = span.instrs.last().expect("ret span").addr;
                asm.label(&format!("r_{ret_addr:x}"));
                for i in &span.instrs[..span.instrs.len() - 1] {
                    asm.ins(relocated(i));
                }
                for g in ret_guard(meta) {
                    asm.ins(g);
                }
                asm.jcc(hgl_x86::Cond::Ne, &format!("t_{ret_addr:x}"));
                asm.ins(ins(Mnemonic::Ret, vec![]));
                asm.label(&format!("t_{ret_addr:x}"));
                asm.ins(ins(Mnemonic::Hlt, vec![]));
            }
        }
        asm.entry(&format!("e_{:x}", plans[0].f.entry));
        let (stub_bin, labels) = asm.assemble_with_labels()?;
        let guard_seg = stub_bin
            .segments
            .iter()
            .find(|s| s.vaddr == guard_base)
            .ok_or_else(|| RewriteError::Layout("stub text section missing".to_string()))?;
        let guard_bytes = guard_seg.bytes.clone();
        let guard_size = guard_bytes.len() as u64;

        // 5. Reconstruct per-instruction stub addresses by decoding
        //    the emitted stubs, and record the address maps.
        let entry_guard_len = entry_guard(meta).len();
        let ret_guard_len = ret_guard(meta).len();
        let mut cursor_map: BTreeMap<u64, u64> = BTreeMap::new();
        let mut skips: BTreeSet<u64> = BTreeSet::new();
        let walk = |label: &str,
                        count: usize,
                        guard_bytes: &[u8]|
         -> Result<Vec<Instr>, RewriteError> {
            let mut addr = *labels.get(label).ok_or_else(|| {
                RewriteError::Layout(format!("stub label {label} unresolved"))
            })?;
            let mut outv = Vec::new();
            for _ in 0..count {
                let off = (addr - guard_base) as usize;
                let i = decode(&guard_bytes[off..], addr)
                    .map_err(|e| RewriteError::Layout(format!("stub redecode at {addr:#x}: {e}")))?;
                addr = i.next_addr();
                outv.push(i);
            }
            Ok(outv)
        };
        for plan in &plans {
            let e = plan.f.entry;
            // Entry stub: guard (skip), replay (map), jmp back (skip).
            let n = entry_guard_len + plan.entry_span.instrs.len() + 1;
            let decoded = walk(&format!("e_{e:x}"), n, &guard_bytes)?;
            for (k, i) in decoded.iter().enumerate() {
                if k < entry_guard_len || k == n - 1 {
                    skips.insert(i.addr);
                } else {
                    cursor_map.insert(i.addr, plan.entry_span.instrs[k - entry_guard_len].addr);
                }
            }
            for span in &plan.ret_spans {
                let ret_addr = span.instrs.last().expect("ret span").addr;
                // Ret stub: replay (map), guard + jne (skip), ret
                // (maps to the original ret), trap hlt (skip).
                let replay = span.instrs.len() - 1;
                let n = replay + ret_guard_len + 3;
                let decoded = walk(&format!("r_{ret_addr:x}"), n, &guard_bytes)?;
                for (k, i) in decoded.iter().enumerate() {
                    if k < replay {
                        cursor_map.insert(i.addr, span.instrs[k].addr);
                    } else if k == n - 2 {
                        debug_assert_eq!(i.mnemonic, Mnemonic::Ret);
                        cursor_map.insert(i.addr, ret_addr);
                    } else {
                        skips.insert(i.addr);
                    }
                }
                out.guards.push(GuardSite {
                    function: e,
                    ret_addr,
                    stub_addr: labels[&format!("r_{ret_addr:x}")],
                });
            }
        }

        // 6. Patch the detours into the image and append the sections.
        let mut patch = |span: &StealSpan, stub: u64| -> Result<(), RewriteError> {
            let jmp = {
                let mut i = jmp_abs(stub);
                i.addr = span.start;
                hgl_x86::encode(&i).map_err(|e| RewriteError::Layout(format!(
                    "detour jmp at {:#x}: {e}",
                    span.start
                )))?
            };
            debug_assert_eq!(jmp.len() as u64, PATCH_LEN);
            let seg = out
                .binary
                .segments
                .iter_mut()
                .find(|s| {
                    span.start >= s.vaddr && span.start + span.len <= s.vaddr + s.bytes.len() as u64
                })
                .ok_or_else(|| {
                    RewriteError::Layout(format!("no segment covers span at {:#x}", span.start))
                })?;
            let off = (span.start - seg.vaddr) as usize;
            seg.bytes[off..off + PATCH_LEN as usize].copy_from_slice(&jmp);
            for k in PATCH_LEN..span.len {
                seg.bytes[off + k as usize] = 0xf4; // hlt
            }
            skips.insert(span.start);
            Ok(())
        };
        for plan in &plans {
            patch(&plan.entry_span, labels[&format!("e_{:x}", plan.f.entry)])?;
            for span in &plan.ret_spans {
                let ret_addr = span.instrs.last().expect("ret span").addr;
                patch(span, labels[&format!("r_{ret_addr:x}")])?;
            }
        }
        out.binary.segments.push(Segment {
            vaddr: shadow_base,
            bytes: vec![0u8; shadow_size as usize],
            flags: SegmentFlags::RW,
        });
        out.binary.segments.push(Segment {
            vaddr: guard_base,
            bytes: guard_bytes,
            flags: SegmentFlags::RX,
        });
        out.binary.segments.sort_by_key(|s| s.vaddr);

        out.addr_map.extend(cursor_map);
        out.skip_addrs.extend(skips);
        out.stats.guards_inserted += out.guards.len() as u64;
        out.shadow = Some(ShadowLayout {
            meta,
            depth: SHADOW_DEPTH,
            base: shadow_base,
            size: shadow_size,
            guard_base,
            guard_size,
        });
        Ok(())
    }
}
