//! Re-lift validation: the rewritten artifact must prove itself.
//!
//! Rather than trusting the rewriter's bookkeeping, the rewritten
//! binary is pushed back through the *entire* pipeline — parse,
//! decode, symbolically execute, discharge obligations — and the
//! resulting Hoare Graphs are compared against the original lift via
//! [`hgl_export::graphs_correspond`]. For identity rewrites the
//! correspondence must be exact; this is the per-artifact equivalence
//! check the issue's acceptance bar demands. Instrumented rewrites
//! change the code on purpose, so graph correspondence does not apply
//! to them — their validation channel is the differential trace
//! oracle in `hgl-oracle`, driven by the [`crate::RewriteOutput`]
//! address maps.

use hgl_core::lift::LiftResult;
use hgl_core::Lifter;
use hgl_elf::Binary;
use hgl_export::CorrespondReport;

/// The outcome of re-lifting a rewritten binary.
#[derive(Debug)]
pub struct ReliftVerdict {
    /// The re-lift of the rewritten binary (all roots).
    pub relift: LiftResult,
    /// Graph correspondence between original lift and re-lift.
    pub report: CorrespondReport,
}

impl ReliftVerdict {
    /// Did the rewritten binary re-lift to an equivalent Hoare Graph?
    pub fn ok(&self) -> bool {
        self.report.ok()
    }
}

/// Re-lift `rewritten` from scratch and compare its Hoare Graphs
/// against `original_lift`. Meaningful for identity rewrites, where
/// byte equality should force graph equality; a mismatch means either
/// the rewriter corrupted the image or the lifter is not
/// deterministic — both reportable defects.
pub fn verify_relift(original_lift: &LiftResult, rewritten: &Binary) -> ReliftVerdict {
    let report = Lifter::new(rewritten).lift_all();
    let correspondence = hgl_export::graphs_correspond(original_lift, &report.result);
    ReliftVerdict { relift: report.result, report: correspondence }
}

/// Like [`verify_relift`], but re-lift only the entry's call closure
/// with the sequential driver. Use this when `original_lift` itself
/// came from `Lifter::lift_entry`: the two drivers legitimately
/// produce different (both sound) invariants for the same function —
/// callee summaries are integrated in a different order — so the
/// correspondence check must compare like with like.
pub fn verify_relift_entry(original_lift: &LiftResult, rewritten: &Binary) -> ReliftVerdict {
    let relift = Lifter::new(rewritten).lift_entry(rewritten.entry);
    let correspondence = hgl_export::graphs_correspond(original_lift, &relift);
    ReliftVerdict { relift, report: correspondence }
}
