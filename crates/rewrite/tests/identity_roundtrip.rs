//! Identity recompilation: the no-pass rewrite must reproduce the
//! image byte-for-byte, serialise to a parseable ELF, and re-lift to
//! an equivalent Hoare Graph.

use hgl_core::Lifter;
use hgl_corpus::xen::gen_study_binary;
use hgl_elf::Binary;
use hgl_rewrite::{elf_image, rewrite, verify_relift};

#[test]
fn identity_rewrite_is_byte_identical() {
    let bin = gen_study_binary(0x1dea_7111, false);
    let lift = Lifter::new(&bin).lift_all().result;
    let out = rewrite(&bin, &lift, &[]).expect("identity rewrite succeeds");
    assert!(out.stats.functions > 0, "nothing was checked");
    assert!(out.stats.instructions_reencoded > out.stats.functions);
    assert_eq!(out.stats.bytes_delta, 0);
    assert_eq!(out.stats.guards_inserted, 0);
    assert!(out.shadow.is_none());
    assert_eq!(out.binary.segments.len(), bin.segments.len());
    for (a, b) in out.binary.segments.iter().zip(bin.segments.iter()) {
        assert_eq!(a.vaddr, b.vaddr);
        assert_eq!(a.bytes, b.bytes, "identity rewrite changed bytes at {:#x}", a.vaddr);
    }
}

#[test]
fn identity_rewrite_elf_roundtrips_and_relifts() {
    let bin = gen_study_binary(0xeef_0001, false);
    let lift = Lifter::new(&bin).lift_all().result;
    let out = rewrite(&bin, &lift, &[]).expect("identity rewrite succeeds");
    let image = elf_image(&out.binary);
    let reparsed = Binary::parse(&image).expect("emitted ELF parses");
    assert_eq!(reparsed.entry, bin.entry);
    let verdict = verify_relift(&lift, &reparsed);
    assert!(
        verdict.ok(),
        "identity output re-lifts to a different graph: {:?}",
        verdict.report.details
    );
}

#[test]
fn normalize_rip_is_identity_without_passes() {
    let bin = gen_study_binary(0xabc_0002, false);
    let lift = Lifter::new(&bin).lift_all().result;
    let out = rewrite(&bin, &lift, &[]).expect("identity rewrite succeeds");
    assert_eq!(out.normalize_rip(bin.entry), Some(bin.entry));
    assert_eq!(out.normalize_rip(0xdead_beef), Some(0xdead_beef));
}
