//! The shadow-stack pass, end to end: instrumentation lands exactly on
//! the lint-unproven returns, benign executions are unchanged modulo
//! guard frames, and a real return-address corruption traps.

use hgl_analysis::{analyze, AnalysisConfig, Rule};
use hgl_core::Lifter;
use hgl_corpus::failures::{corrupted_return, CORRUPT_TRIGGER};
use hgl_corpus::xen::gen_study_binary;
use hgl_elf::Binary;
use hgl_emu::{Event, Machine};
use hgl_rewrite::{rewrite, RewriteOutput, ShadowStackPass};
use hgl_x86::{decode, Mnemonic, Operand, Reg, RegRef};
use std::collections::BTreeSet;

const SENTINEL: u64 = 0x7fff_dead_beef;

/// How an emulated run ended.
#[derive(Debug, PartialEq, Eq)]
enum Stop {
    /// Returned to the sentinel return address.
    Returned,
    /// Executed `hlt` at the given instruction address.
    Halted(u64),
    /// `rip` left the image (wild control flow).
    Undecodable(u64),
    /// Step budget exhausted.
    Limit,
}

/// Run `bin` from its entry with the given `rdi`, optionally planting
/// an 8-byte value in memory first. Returns the executed instruction
/// addresses and the stop cause.
fn run(bin: &Binary, rdi: u64, plant: Option<(u64, u64)>) -> (Vec<u64>, Stop) {
    let mut m = Machine::from_binary(bin);
    m.rip = bin.entry;
    m.push_return_address(SENTINEL);
    m.set_reg(RegRef::full(Reg::Rdi), rdi);
    if let Some((addr, value)) = plant {
        m.mem.write(addr, 8, value);
    }
    let mut trace = Vec::new();
    for _ in 0..10_000 {
        if m.rip == SENTINEL {
            return (trace, Stop::Returned);
        }
        let Some(window) = bin.fetch_window(m.rip) else {
            return (trace, Stop::Undecodable(m.rip));
        };
        let Ok(instr) = decode(window, m.rip) else {
            return (trace, Stop::Undecodable(m.rip));
        };
        trace.push(instr.addr);
        match m.exec(&instr) {
            Ok(Event::Halt) => return (trace, Stop::Halted(instr.addr)),
            Ok(_) => {}
            Err(e) => panic!("emulator fault at {:#x}: {e:?}", instr.addr),
        }
    }
    (trace, Stop::Limit)
}

/// Normalise a rewritten-binary trace back to original addresses.
fn normalize(out: &RewriteOutput, trace: &[u64]) -> Vec<u64> {
    trace.iter().filter_map(|&rip| out.normalize_rip(rip)).collect()
}

fn instrumented_corrupted_return() -> (Binary, RewriteOutput) {
    let bin = corrupted_return();
    let lift = Lifter::new(&bin).lift_all().result;
    let pass = ShadowStackPass;
    let out = rewrite(&bin, &lift, &[&pass]).expect("shadow-stack rewrite succeeds");
    (bin, out)
}

/// The address `corrupted_return`'s `movabs rax, cell` loads from.
fn cell_addr(bin: &Binary) -> u64 {
    let lift = Lifter::new(bin).lift_all().result;
    for f in lift.functions.values() {
        for (_, i) in f.graph.instructions() {
            if i.mnemonic == Mnemonic::Movabs {
                if let Some(Operand::Imm(v)) = i.operands.get(1) {
                    return *v as u64;
                }
            }
        }
    }
    panic!("no movabs in corrupted_return");
}

#[test]
fn guards_land_exactly_on_lint_unproven_rets() {
    let bin = gen_study_binary(0x5eed_cafe, false);
    let lift = Lifter::new(&bin).lift_all().result;
    let report = analyze(&bin, &lift, &AnalysisConfig::default());
    let unproven: BTreeSet<u64> = report
        .diags
        .iter()
        .filter(|d| matches!(d.rule, Rule::RetSlotOverwrite | Rule::StackDepth))
        .map(|d| d.function)
        .collect();
    let mut expected = BTreeSet::new();
    for f in lift.functions.values() {
        if f.is_lifted() && unproven.contains(&f.entry) {
            let rets: Vec<u64> = f
                .graph
                .instructions()
                .iter()
                .filter(|(_, i)| i.mnemonic == Mnemonic::Ret)
                .map(|(a, _)| *a)
                .collect();
            if !rets.is_empty() {
                expected.extend(rets);
            }
        }
    }
    let pass = ShadowStackPass;
    let out = rewrite(&bin, &lift, &[&pass]).expect("shadow-stack rewrite succeeds");
    let got: BTreeSet<u64> = out.guards.iter().map(|g| g.ret_addr).collect();
    assert_eq!(got, expected, "guards must land exactly on the lint-unproven rets");
    assert_eq!(out.stats.guards_inserted, expected.len() as u64);

    // Functions the lints proved safe keep their bytes untouched.
    let patched: BTreeSet<u64> = out.skip_addrs.iter().copied().collect();
    for f in lift.functions.values() {
        if f.is_lifted() && !unproven.contains(&f.entry) {
            for (addr, i) in f.graph.instructions() {
                assert!(
                    !patched.contains(&addr),
                    "proven-safe function {:#x} was patched at {addr:#x} ({i})",
                    f.entry
                );
            }
        }
    }
}

#[test]
fn corrupted_return_gets_a_guard() {
    let (_, out) = instrumented_corrupted_return();
    assert_eq!(out.guards.len(), 1, "exactly the one unproven ret is guarded");
    assert_eq!(out.stats.guards_inserted, 1);
    let shadow = out.shadow.expect("instrumented output records the shadow layout");
    assert!(shadow.in_guard(out.guards[0].stub_addr));
    // The new sections really are in the binary.
    assert!(out
        .binary
        .segments
        .iter()
        .any(|s| s.vaddr == shadow.base && s.flags.w && !s.flags.x));
    assert!(out
        .binary
        .segments
        .iter()
        .any(|s| s.vaddr == shadow.guard_base && s.flags.x));
    assert_eq!(out.stats.bytes_delta, (shadow.size + shadow.guard_size) as i64);
}

#[test]
fn benign_run_is_unchanged_modulo_guard_frames() {
    let (bin, out) = instrumented_corrupted_return();
    let (orig_trace, orig_stop) = run(&bin, 0, None);
    let (rw_trace, rw_stop) = run(&out.binary, 0, None);
    assert_eq!(orig_stop, Stop::Returned);
    assert_eq!(rw_stop, Stop::Returned);
    assert_eq!(
        normalize(&out, &rw_trace),
        orig_trace,
        "normalised instrumented trace must equal the original trace"
    );
    assert!(rw_trace.len() > orig_trace.len(), "guard frames add steps pre-normalisation");
}

#[test]
fn corrupting_the_return_slot_traps_in_the_guard() {
    let (bin, out) = instrumented_corrupted_return();
    let cell = cell_addr(&bin);
    // The victim writes its payload through the pointer stored at
    // `cell`; aim it at the return-address slot ([initial rsp - 8],
    // where push_return_address puts the sentinel).
    let m = Machine::from_binary(&bin);
    let ret_slot = m.reg(Reg::Rsp) - 8;

    // Sanity: on the original binary the corruption hijacks control —
    // the ret lands on the payload, which is not a mapped address.
    let (_, orig_stop) = run(&bin, CORRUPT_TRIGGER as u64, Some((cell, ret_slot)));
    match orig_stop {
        Stop::Undecodable(rip) => assert_eq!(rip, 0x4141_4141, "ret followed the payload"),
        other => panic!("original binary should wild-jump, got {other:?}"),
    }

    // The instrumented binary refuses: the ret stub compares the live
    // slot against the shadow copy and halts inside the guard section.
    let (_, rw_stop) = run(&out.binary, CORRUPT_TRIGGER as u64, Some((cell, ret_slot)));
    let shadow = out.shadow.expect("shadow layout");
    match rw_stop {
        Stop::Halted(addr) => {
            assert!(
                shadow.in_guard(addr),
                "halt at {addr:#x} is outside the guard section"
            );
            assert!(out.skip_addrs.contains(&addr), "trap hlt is a guard-only step");
        }
        other => panic!("instrumented binary should trap, got {other:?}"),
    }

    // And with a benign rdi the planted pointer is never used: the
    // same run returns normally on both binaries.
    let (_, benign) = run(&out.binary, 0, Some((cell, ret_slot)));
    assert_eq!(benign, Stop::Returned);
}
