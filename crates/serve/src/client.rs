//! A small blocking client for the `hgl serve` protocol.
//!
//! Used by the CLI (`hgl serve --ping` style probes), the bench
//! harness and the test suites; real integrations can speak the JSONL
//! protocol directly from any language.

use crate::json::Json;
use crate::proto::hex_encode;
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A blocking JSONL client over one connection.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    next_id: u64,
}

impl Client {
    /// Connect to a daemon at `addr` (e.g. `"127.0.0.1:7878"`).
    pub fn connect(addr: &str) -> io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { writer, reader, next_id: 1 })
    }

    /// Set a read timeout for responses (None = block forever).
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Send one raw line (no trailing newline needed).
    pub fn send_line(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Receive one response line, parsed.
    pub fn recv(&mut self) -> io::Result<Json> {
        let mut line = String::new();
        loop {
            line.clear();
            let n = self.reader.read_line(&mut line)?;
            if n == 0 {
                return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"));
            }
            if !line.trim().is_empty() {
                break;
            }
        }
        Json::parse(line.trim())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad response: {e}")))
    }

    /// Send a request built from `fields` (op plus extras) with an
    /// auto-assigned numeric id, and wait for its response.
    pub fn request(&mut self, op: &str, extra: &[(&str, Json)]) -> io::Result<Json> {
        let id = self.next_id;
        self.next_id += 1;
        let mut obj = vec![
            ("id".to_string(), Json::Num(id as f64)),
            ("op".to_string(), Json::Str(op.to_string())),
        ];
        for (k, v) in extra {
            obj.push((k.to_string(), v.clone()));
        }
        self.send_line(&Json::Obj(obj).to_string())?;
        // Responses on one connection come back in completion order;
        // with one outstanding request the next line is ours.
        loop {
            let resp = self.recv()?;
            if resp.get("id").and_then(Json::as_u64) == Some(id) {
                return Ok(resp);
            }
        }
    }

    /// Lift a binary image, optionally with a deadline and a full
    /// embedded report.
    pub fn lift(
        &mut self,
        image: &[u8],
        deadline_ms: Option<u64>,
        full: bool,
    ) -> io::Result<Json> {
        let mut extra = vec![("binary", Json::Str(hex_encode(image)))];
        if let Some(ms) = deadline_ms {
            extra.push(("deadline_ms", Json::Num(ms as f64)));
        }
        if full {
            extra.push(("full", Json::Bool(true)));
        }
        self.request("lift", &extra)
    }

    /// Lift + soundness lints.
    pub fn lint(&mut self, image: &[u8], full: bool) -> io::Result<Json> {
        let mut extra = vec![("binary", Json::Str(hex_encode(image)))];
        if full {
            extra.push(("full", Json::Bool(true)));
        }
        self.request("lint", &extra)
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> io::Result<Json> {
        self.request("ping", &[])
    }

    /// Server metrics snapshot.
    pub fn metrics(&mut self) -> io::Result<Json> {
        self.request("metrics", &[])
    }

    /// Ask the daemon to shut down gracefully.
    pub fn shutdown(&mut self) -> io::Result<Json> {
        self.request("shutdown", &[])
    }
}
