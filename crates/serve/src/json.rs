//! A minimal, panic-free JSON value: parser and emitter.
//!
//! The daemon's wire format is JSON Lines, and every frame arrives
//! from an untrusted client — so the parser is written the same way
//! the ELF reader is: bounds-checked at every byte, depth-limited,
//! and returning structured errors instead of panicking, ever. The
//! emitter is deterministic (object keys keep insertion order) and
//! never produces raw control characters inside strings, which is
//! what lets responses be framed by a single `\n`.
//!
//! Numbers are held as `f64`; every integer the protocol carries
//! (ids, byte counts, millisecond deadlines) fits `f64` exactly up to
//! 2^53, far beyond any value the daemon accepts.

use std::fmt::Write as _;

/// Nesting depth cap: frames deeper than this are rejected rather
/// than recursed into (stack safety against `[[[[...` bombs).
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered, duplicate keys keep the last.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse one complete JSON document; trailing non-whitespace is an
    /// error (a frame is exactly one value).
    pub fn parse(input: &str) -> Result<Json, String> {
        let bytes = input.as_bytes();
        let mut p = Parser { bytes, at: 0 };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.at != bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.at));
        }
        Ok(v)
    }

    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                if n.is_finite() {
                    if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        let _ = write!(out, "{n}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_json_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Single-line serialisation (no raw newlines anywhere); `to_string`
/// comes for free via `ToString`.
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

/// Escape `s` as a JSON string literal into `out`.
pub fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.at) {
            self.at += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn eat(&mut self, token: &str) -> bool {
        if self.bytes[self.at..].starts_with(token.as_bytes()) {
            self.at += token.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        match self.peek() {
            None => Err("unexpected end of input".to_string()),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(format!("unexpected byte {c:#04x} at offset {}", self.at)),
        }
    }

    fn literal(&mut self, token: &str, v: Json) -> Result<Json, String> {
        if self.eat(token) {
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.at))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        while let Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') = self.peek() {
            self.at += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at])
            .map_err(|_| "non-utf8 number".to_string())?;
        text.parse::<f64>()
            .ok()
            .filter(|n| n.is_finite())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number {text:?} at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        if self.peek() != Some(b'"') {
            return Err(format!("expected string at offset {}", self.at));
        }
        self.at += 1;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.at += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: decode when well-formed,
                            // U+FFFD when lone (never an error — ids
                            // round-trip, payloads are hex anyway).
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.eat("\\u") {
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + lo.saturating_sub(0xDC00);
                                    char::from_u32(combined).unwrap_or('\u{FFFD}')
                                } else {
                                    '\u{FFFD}'
                                }
                            } else {
                                char::from_u32(cp).unwrap_or('\u{FFFD}')
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(format!("bad escape at offset {}", self.at)),
                    }
                    self.at += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(format!("raw control byte {c:#04x} in string"));
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so the
                    // boundaries are already valid).
                    let rest = &self.bytes[self.at..];
                    let s = std::str::from_utf8(rest).map_err(|_| "non-utf8".to_string())?;
                    let c = s.chars().next().ok_or("empty")?;
                    out.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.at.checked_add(4).filter(|e| *e <= self.bytes.len());
        let Some(end) = end else {
            return Err("truncated \\u escape".to_string());
        };
        let s = std::str::from_utf8(&self.bytes[self.at..end])
            .map_err(|_| "non-utf8 \\u escape".to_string())?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| format!("bad \\u escape {s:?}"))?;
        self.at = end;
        Ok(cp)
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.at += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.at)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.at += 1; // '{'
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(format!("expected ':' at offset {}", self.at));
            }
            self.at += 1;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.at)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        for doc in [
            r#"null"#,
            r#"true"#,
            r#"-3"#,
            r#"{"id":1,"op":"lift","full":false}"#,
            r#"{"a":[1,2,{"b":"c"}],"d":"\n\t\"x\""}"#,
        ] {
            let v = Json::parse(doc).expect(doc);
            let emitted = v.to_string();
            assert_eq!(Json::parse(&emitted).expect("reparse"), v, "{doc}");
            assert!(!emitted.contains('\n'), "single-line framing: {emitted}");
        }
    }

    #[test]
    fn rejects_garbage_without_panicking() {
        for doc in [
            "", "{", "[", "\"", "{\"a\"", "{\"a\":}", "[1,", "nul", "tru", "+1", "1 2",
            "{\"a\":1}x", "\u{1}", "\"\\u12\"", "\"\\q\"", "01a",
        ] {
            assert!(Json::parse(doc).is_err(), "should reject {doc:?}");
        }
    }

    #[test]
    fn depth_bomb_is_rejected() {
        let bomb = "[".repeat(100_000);
        assert!(Json::parse(&bomb).is_err());
    }

    #[test]
    fn field_access() {
        let v = Json::parse(r#"{"id":7,"op":"ping","deep":{"x":true}}"#).expect("parse");
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(7));
        assert_eq!(v.get("op").and_then(Json::as_str), Some("ping"));
        assert_eq!(v.get("deep").and_then(|d| d.get("x")).and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn control_chars_escaped_on_emit() {
        let v = Json::Str("a\nb\u{2}c".to_string());
        assert_eq!(v.to_string(), "\"a\\nb\\u0002c\"");
    }
}
