//! # hgl-serve: the lifting daemon behind `hgl serve`
//!
//! A persistent, crash-proof, overload-safe server that multiplexes
//! lift/lint requests onto the parallel engine of `hgl-core`, sharing
//! one warm solver cache and one persistent artifact store across all
//! requests. The wire protocol is JSON Lines over TCP — one request
//! per line, one response per line, correlated by a client-chosen id
//! (see [`proto`] for the frame shapes).
//!
//! The daemon's contract, enforced by the chaos campaign in
//! `tests/chaos.rs`:
//!
//! - **every** frame is answered exactly once with a structured
//!   response, including unparseable garbage, oversized frames,
//!   panicking lifts, expired deadlines and shutdown drains;
//! - overload sheds (`overloaded` + `retry_after_ms`) instead of
//!   buffering without bound;
//! - per-request deadlines degrade to *partial* Hoare Graphs via the
//!   engine's budget machinery — a deadline is a quality knob, not an
//!   error;
//! - identical concurrent requests are coalesced onto one computation;
//! - a panic, a disconnect or a corrupted store never takes the
//!   process down.
//!
//! ```no_run
//! use hgl_serve::{Client, ServeConfig, Server};
//!
//! let server = Server::bind("127.0.0.1:0", ServeConfig::default())?;
//! let mut client = Client::connect(&server.local_addr().to_string())?;
//! let pong = client.ping()?;
//! assert_eq!(pong.get("status").and_then(|s| s.as_str()), Some("ok"));
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod json;
pub mod proto;
pub mod server;

pub use client::Client;
pub use json::Json;
pub use proto::{hex_decode, hex_encode, parse_request, Op, Request};
pub use server::{ServeConfig, Server};
