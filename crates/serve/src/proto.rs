//! The `hgl serve` wire protocol: JSON Lines over a byte stream.
//!
//! One request per line, one response per line, correlated by the
//! client-chosen `id` (echoed verbatim, any JSON scalar). The protocol
//! is *total*: every line the client sends — including unparseable
//! garbage — produces exactly one structured response, and the daemon
//! never closes a connection in reaction to a bad frame.
//!
//! ## Requests
//!
//! ```json
//! {"id": 1, "op": "lift", "binary": "<hex ELF image>", "deadline_ms": 500}
//! {"id": 2, "op": "lint", "binary": "<hex>", "full": true}
//! {"id": 3, "op": "metrics"}
//! {"id": 4, "op": "ping"}
//! {"id": 5, "op": "shutdown"}
//! ```
//!
//! ## Responses
//!
//! Every response carries `id` and `status`:
//!
//! - `"ok"` — op-specific payload fields alongside;
//! - `"bad_request"` — the frame was malformed; `error` explains;
//! - `"overloaded"` — admission control shed the request before it
//!   consumed compute; `retry_after_ms` hints when to come back;
//! - `"deadline"` — the watchdog fired: the request's deadline (plus
//!   grace) passed before a worker finished it;
//! - `"shutting_down"` — the daemon is draining; the request was not
//!   executed;
//! - `"internal"` — the request panicked inside the engine; the panic
//!   was isolated to the request and the daemon is still healthy.

use crate::json::Json;

/// Upper bound on a hex-encoded binary payload (decoded bytes); frames
/// above it are rejected as `bad_request` before decoding allocates.
pub const MAX_BINARY_BYTES: usize = 32 << 20;

/// The operations a frame can request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Liveness probe; answered on the connection thread.
    Ping,
    /// Server + cache + store counters; answered on the connection
    /// thread.
    Metrics,
    /// Begin graceful shutdown.
    Shutdown,
    /// Lift a binary (hex `binary` payload) on the engine.
    Lift,
    /// Lift and run the soundness lints over the result.
    Lint,
}

impl Op {
    /// Stable wire tag (also the coalescing-key discriminant).
    pub fn tag(self) -> &'static str {
        match self {
            Op::Ping => "ping",
            Op::Metrics => "metrics",
            Op::Shutdown => "shutdown",
            Op::Lift => "lift",
            Op::Lint => "lint",
        }
    }
}

/// A validated request frame.
#[derive(Debug, Clone)]
pub struct Request {
    /// The client's correlation id, re-serialised (echoed verbatim).
    pub id: String,
    /// The requested operation.
    pub op: Op,
    /// Decoded binary image for `lift` / `lint`.
    pub binary: Vec<u8>,
    /// Relative deadline in milliseconds, if the client set one.
    pub deadline_ms: Option<u64>,
    /// `lift`: embed the full `hgl-lift-v*` report; `lint`: embed the
    /// full `hgl-lint-v*` report.
    pub full: bool,
    /// Test hook: makes the handler panic inside the worker. Honored
    /// only when the server was built with fault injection enabled.
    pub inject_panic: bool,
}

/// A frame rejection: the echoed id (when one was recoverable) plus a
/// human-readable reason.
#[derive(Debug)]
pub struct BadFrame {
    /// Re-serialised `id` of the offending frame, `null` if none.
    pub id: String,
    /// What was wrong.
    pub error: String,
}

/// Parse and validate one JSONL frame.
pub fn parse_request(line: &str) -> Result<Request, BadFrame> {
    let doc = match Json::parse(line) {
        Ok(doc) => doc,
        Err(e) => return Err(BadFrame { id: "null".to_string(), error: format!("bad json: {e}") }),
    };
    // The id is echoed even when the rest of the frame is invalid, so
    // pipelined clients can correlate the rejection.
    let id = doc.get("id").map(Json::to_string).unwrap_or_else(|| "null".to_string());
    let fail = |error: String| BadFrame { id: id.clone(), error };

    if !matches!(doc, Json::Obj(_)) {
        return Err(fail("frame must be a json object".to_string()));
    }
    let op = match doc.get("op").and_then(Json::as_str) {
        Some("ping") => Op::Ping,
        Some("metrics") => Op::Metrics,
        Some("shutdown") => Op::Shutdown,
        Some("lift") => Op::Lift,
        Some("lint") => Op::Lint,
        Some(other) => return Err(fail(format!("unknown op {other:?}"))),
        None => return Err(fail("missing op".to_string())),
    };

    let mut binary = Vec::new();
    if matches!(op, Op::Lift | Op::Lint) {
        let hex = doc
            .get("binary")
            .and_then(Json::as_str)
            .ok_or_else(|| fail(format!("op {:?} requires a hex \"binary\" field", op.tag())))?;
        if hex.len() / 2 > MAX_BINARY_BYTES {
            return Err(fail(format!("binary exceeds {MAX_BINARY_BYTES} bytes")));
        }
        binary = hex_decode(hex).map_err(&fail)?;
        if binary.is_empty() {
            return Err(fail("binary payload is empty".to_string()));
        }
    }

    let deadline_ms = match doc.get("deadline_ms") {
        None | Some(Json::Null) => None,
        Some(v) => Some(
            v.as_u64().ok_or_else(|| fail("deadline_ms must be a non-negative integer".to_string()))?,
        ),
    };

    let flag = |key: &str| -> Result<bool, BadFrame> {
        match doc.get(key) {
            None | Some(Json::Null) => Ok(false),
            Some(v) => v.as_bool().ok_or_else(|| fail(format!("{key} must be a boolean"))),
        }
    };

    let full = flag("full")?;
    let inject_panic = flag("inject_panic")?;
    Ok(Request { id, op, binary, deadline_ms, full, inject_panic })
}

/// Decode a hex string (case-insensitive, no separators).
pub fn hex_decode(hex: &str) -> Result<Vec<u8>, String> {
    let bytes = hex.as_bytes();
    if !bytes.len().is_multiple_of(2) {
        return Err("hex payload has odd length".to_string());
    }
    let nibble = |b: u8| -> Result<u8, String> {
        match b {
            b'0'..=b'9' => Ok(b - b'0'),
            b'a'..=b'f' => Ok(b - b'a' + 10),
            b'A'..=b'F' => Ok(b - b'A' + 10),
            _ => Err(format!("non-hex byte {:#04x} in binary payload", b)),
        }
    };
    let mut out = Vec::with_capacity(bytes.len() / 2);
    for pair in bytes.chunks_exact(2) {
        out.push((nibble(pair[0])? << 4) | nibble(pair[1])?);
    }
    Ok(out)
}

/// Encode bytes as lowercase hex (the client side of `hex_decode`).
pub fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        use std::fmt::Write as _;
        let _ = write!(out, "{b:02x}");
    }
    out
}

/// Start a response line: `{"id":<id>,"status":"<status>"`. The id is
/// already serialised JSON; callers append fields and close with `}`.
pub fn response_head(id: &str, status: &str) -> String {
    format!("{{\"id\":{id},\"status\":\"{status}\"")
}

/// A complete single-field error response.
pub fn error_response(id: &str, status: &str, error: &str) -> String {
    let mut out = response_head(id, status);
    out.push_str(",\"error\":");
    crate::json::write_json_string(error, &mut out);
    out.push('}');
    out
}

/// The `overloaded` shed response with its retry hint.
pub fn overloaded_response(id: &str, retry_after_ms: u64) -> String {
    let mut out = response_head(id, "overloaded");
    out.push_str(&format!(",\"retry_after_ms\":{retry_after_ms}}}"));
    out
}

/// Collapse a multi-line embedded JSON document onto one line so it can
/// ride inside a JSONL frame. Sound because the embedded emitters
/// (`hgl-export`) escape every newline that occurs *inside* a string;
/// raw `\n` bytes are pure formatting.
pub fn one_line(doc: &str) -> String {
    doc.split(['\n', '\r']).map(str::trim).collect::<Vec<_>>().join(" ").trim().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_ops() {
        let r = parse_request(r#"{"id":1,"op":"ping"}"#).expect("ping");
        assert_eq!(r.op, Op::Ping);
        assert_eq!(r.id, "1");
        let r = parse_request(r#"{"id":"x","op":"metrics"}"#).expect("metrics");
        assert_eq!(r.op, Op::Metrics);
        assert_eq!(r.id, "\"x\"");
    }

    #[test]
    fn parses_lift_with_payload_and_deadline() {
        let r = parse_request(r#"{"id":7,"op":"lift","binary":"7f454c46","deadline_ms":250,"full":true}"#)
            .expect("lift");
        assert_eq!(r.op, Op::Lift);
        assert_eq!(r.binary, vec![0x7f, b'E', b'L', b'F']);
        assert_eq!(r.deadline_ms, Some(250));
        assert!(r.full);
        assert!(!r.inject_panic);
    }

    #[test]
    fn echoes_id_on_rejection() {
        let e = parse_request(r#"{"id":42,"op":"nope"}"#).expect_err("bad op");
        assert_eq!(e.id, "42");
        assert!(e.error.contains("unknown op"));
        let e = parse_request(r#"{"id":42,"op":"lift"}"#).expect_err("missing binary");
        assert_eq!(e.id, "42");
        let e = parse_request("not json at all").expect_err("bad json");
        assert_eq!(e.id, "null");
    }

    #[test]
    fn rejects_bad_payloads() {
        for frame in [
            r#"{"id":1,"op":"lift","binary":"xyz1"}"#,
            r#"{"id":1,"op":"lift","binary":"abc"}"#,
            r#"{"id":1,"op":"lift","binary":""}"#,
            r#"{"id":1,"op":"lift","binary":"00","deadline_ms":-5}"#,
            r#"{"id":1,"op":"lift","binary":"00","deadline_ms":1.5}"#,
            r#"{"id":1,"op":"lift","binary":"00","full":"yes"}"#,
            r#"[1,2,3]"#,
            r#""just a string""#,
        ] {
            assert!(parse_request(frame).is_err(), "should reject {frame}");
        }
    }

    #[test]
    fn hex_round_trip() {
        let bytes: Vec<u8> = (0..=255).collect();
        assert_eq!(hex_decode(&hex_encode(&bytes)).expect("round trip"), bytes);
        assert_eq!(hex_decode("7F454C46").expect("uppercase"), vec![0x7f, 0x45, 0x4c, 0x46]);
    }

    #[test]
    fn response_builders_emit_valid_json() {
        use crate::json::Json;
        for line in [
            error_response("null", "bad_request", "bad json: oops\nnewline"),
            overloaded_response("17", 120),
            response_head("\"abc\"", "ok") + "}",
        ] {
            assert!(!line.contains('\n'), "single-line: {line}");
            Json::parse(&line).expect("valid json");
        }
    }

    #[test]
    fn one_line_flattens_pretty_json() {
        let doc = "{\n  \"a\": 1,\n  \"b\": \"x\\ny\"\n}\n";
        let flat = one_line(doc);
        assert!(!flat.contains('\n'));
        assert_eq!(Json::parse(&flat).expect("valid").get("b").and_then(Json::as_str), Some("x\ny"));
    }
}
