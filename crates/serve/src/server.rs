//! The lifting daemon: a TCP acceptor, a bounded admission queue, a
//! worker pool multiplexing requests onto the parallel engine, and a
//! deadline watchdog.
//!
//! # Robustness invariants
//!
//! 1. **Totality** — every frame received produces exactly one
//!    response: parsed and executed (`ok` / `internal`), shed
//!    (`overloaded`), expired (`deadline`), drained (`shutting_down`)
//!    or rejected (`bad_request`). Nothing is silently dropped, and a
//!    malformed frame never closes the connection.
//! 2. **Isolation** — a request that panics inside the engine is
//!    caught at the worker (`catch_unwind`), answered with `internal`,
//!    and leaves the daemon fully operational. The engine additionally
//!    isolates per-function panics below that.
//! 3. **Bounded memory** — the admission queue, the per-connection
//!    read buffer, the binary payload size and the connection count
//!    are all capped; overload converts to `overloaded` responses with
//!    a retry hint, never to unbounded buffering.
//! 4. **Bounded latency** — every request gets a deadline: the tighter
//!    of the client's `deadline_ms` and the server ceiling. The
//!    deadline composes into the engine's wall-clock budget (a partial
//!    Hoare Graph with frontier annotations comes back, not an error),
//!    and a server-side watchdog answers for requests that overrun it
//!    anyway.
//!
//! # Sharing
//!
//! All requests share one solver [`QueryCache`] and (optionally) one
//! artifact [`Store`]: repeat lifts of a binary the daemon has seen
//! replay memoized verdicts and stored function artifacts. Identical
//! in-flight requests — same op, same payload digest, same report
//! shape — are *coalesced*: followers attach to the leader's
//! computation and receive its result, consuming no queue slot and no
//! worker.

use crate::json::write_json_string;
use crate::proto::{
    error_response, one_line, overloaded_response, parse_request, response_head, Op, Request,
};
use hgl_analysis::{analyze, AnalysisConfig, Severity};
use hgl_core::{ArtifactStore, LiftConfig, Lifter};
use hgl_elf::Binary;
use hgl_export::{export_json, export_lint_json};
use hgl_solver::QueryCache;
use hgl_store::sha256::sha256;
use hgl_store::Store;
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Daemon configuration. The defaults are sized for a shared
/// development box; every knob exists so the chaos campaign can shrink
/// the daemon small enough to saturate deterministically.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing lift/lint requests (`0` = one per
    /// available core).
    pub workers: usize,
    /// Admission-queue capacity; a full queue sheds with `overloaded`.
    pub queue_capacity: usize,
    /// Maximum simultaneously served connections; excess connections
    /// receive one `overloaded` frame and are closed.
    pub max_connections: usize,
    /// Maximum bytes in one JSONL frame; longer frames are rejected
    /// with `bad_request` and the remainder of the line is discarded.
    pub max_frame_bytes: usize,
    /// Server-side ceiling on any request's lifetime. Composed with the
    /// client's `deadline_ms`: the effective deadline is the tighter of
    /// the two, so no request lives unbounded even if the client asks.
    pub max_request_wall: Duration,
    /// Watchdog slack past a request's deadline before the server
    /// answers `deadline` on the worker's behalf. Covers the gap
    /// between the engine's own (cooperative) budget checks.
    pub watchdog_grace: Duration,
    /// Lifting configuration applied to every request.
    pub lift: LiftConfig,
    /// Persistent artifact store directory; `None` disables the store.
    pub store_dir: Option<PathBuf>,
    /// Honor the `inject_panic` test hook in requests. Off by default;
    /// the fault campaign turns it on.
    pub enable_fault_injection: bool,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 0,
            queue_capacity: 64,
            max_connections: 256,
            max_frame_bytes: 64 << 20,
            max_request_wall: Duration::from_secs(30),
            watchdog_grace: Duration::from_millis(250),
            lift: LiftConfig::default(),
            store_dir: None,
            enable_fault_injection: false,
        }
    }
}

/// Server-side counters, all monotonic. Snapshot via the `metrics` op.
#[derive(Debug, Default)]
struct Counters {
    connections: AtomicU64,
    frames: AtomicU64,
    bad_frames: AtomicU64,
    admitted: AtomicU64,
    shed: AtomicU64,
    coalesced: AtomicU64,
    completed: AtomicU64,
    deadline_fired: AtomicU64,
    deadline_skipped: AtomicU64,
    panics_isolated: AtomicU64,
    drained: AtomicU64,
}

/// The write half of one request: first responder wins, every later
/// send is a silent no-op. This is what makes watchdog vs. worker vs.
/// drain races safe — a request is answered exactly once no matter who
/// gets there first.
struct Responder {
    /// Pre-serialised JSON of the client's `id`.
    id: String,
    writer: Arc<Mutex<TcpStream>>,
    responded: AtomicBool,
}

impl Responder {
    /// Send `line` if nobody has responded yet; returns whether this
    /// call won. Write errors (client went away) are swallowed: a dead
    /// peer must never take the worker down with it.
    fn send(&self, line: &str) -> bool {
        if self.responded.swap(true, Ordering::SeqCst) {
            return false;
        }
        if let Ok(mut w) = self.writer.lock() {
            let _ = w.write_all(line.as_bytes());
            let _ = w.write_all(b"\n");
            let _ = w.flush();
        }
        true
    }

    fn is_responded(&self) -> bool {
        self.responded.load(Ordering::SeqCst)
    }
}

/// Coalescing key: op, report shape, fault hook, payload digest.
type CoalesceKey = (&'static str, bool, bool, [u8; 32]);

/// One in-flight computation; followers park here. `waiters` is only
/// ever touched under the `inflight` map lock, which is what makes
/// attach vs. drain race-free (an entry is drained only after it is
/// removed from the map, and attaching requires finding it there).
struct Inflight {
    /// The leader's *relative* budget. A follower may join only if its
    /// own budget is no larger — the leader's result is then at least
    /// as complete as the follower's own computation would have been.
    leader_rel: Duration,
    waiters: Mutex<Vec<Arc<Responder>>>,
}

/// A queued request.
struct Job {
    request: Request,
    deadline: Instant,
    responder: Arc<Responder>,
    /// The coalescing entry this job owns (leaders only): removed and
    /// drained at completion.
    entry: Option<(CoalesceKey, Arc<Inflight>)>,
}

struct Inner {
    config: ServeConfig,
    addr: SocketAddr,
    shutting_down: AtomicBool,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    inflight: Mutex<HashMap<CoalesceKey, Arc<Inflight>>>,
    /// Watchdog subscriptions: (fire time, request). Weak, so a
    /// completed request's entry just evaporates.
    watch: Mutex<Vec<(Instant, Weak<Responder>)>>,
    cache: Arc<QueryCache>,
    store: Option<Store>,
    counters: Counters,
    started: Instant,
    conn_count: AtomicUsize,
    live_workers: AtomicUsize,
    /// EWMA of lift/lint service time in nanoseconds; feeds the
    /// `retry_after_ms` hint.
    ewma_service_ns: AtomicU64,
}

/// A running daemon. Bind with [`Server::bind`], stop with
/// [`Server::shutdown`] + [`Server::join`] (or a client `shutdown` op).
pub struct Server {
    inner: Arc<Inner>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    watchdog: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) and start accepting.
    pub fn bind(addr: &str, config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let store = match &config.store_dir {
            Some(dir) => Some(Store::open(dir)?),
            None => None,
        };
        let workers = if config.workers == 0 {
            hgl_core::engine::default_workers()
        } else {
            config.workers
        };
        let inner = Arc::new(Inner {
            config,
            addr: local,
            shutting_down: AtomicBool::new(false),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            inflight: Mutex::new(HashMap::new()),
            watch: Mutex::new(Vec::new()),
            cache: Arc::new(QueryCache::new()),
            store,
            counters: Counters::default(),
            started: Instant::now(),
            conn_count: AtomicUsize::new(0),
            live_workers: AtomicUsize::new(workers),
            ewma_service_ns: AtomicU64::new(50_000_000),
        });

        let acceptor = {
            let inner = inner.clone();
            std::thread::spawn(move || inner.accept_loop(listener))
        };
        let worker_handles = (0..workers)
            .map(|_| {
                let inner = inner.clone();
                std::thread::spawn(move || {
                    inner.worker_loop();
                    inner.live_workers.fetch_sub(1, Ordering::SeqCst);
                })
            })
            .collect();
        let watchdog = {
            let inner = inner.clone();
            std::thread::spawn(move || inner.watchdog_loop())
        };
        Ok(Server { inner, acceptor: Some(acceptor), workers: worker_handles, watchdog: Some(watchdog) })
    }

    /// The bound address (useful with port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// Begin graceful shutdown: stop accepting, drain the queue with
    /// `shutting_down` responses, let in-flight requests finish.
    pub fn shutdown(&self) {
        self.inner.begin_shutdown();
    }

    /// Wait for the acceptor, workers and watchdog to exit.
    pub fn join(&mut self) {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.watchdog.take() {
            let _ = h.join();
        }
    }

    /// True once shutdown has been initiated (by [`Server::shutdown`]
    /// or a client `shutdown` op).
    pub fn is_shutting_down(&self) -> bool {
        self.inner.shutting_down.load(Ordering::SeqCst)
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
        self.join();
    }
}

impl Inner {
    fn begin_shutdown(&self) {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the acceptor with a wake-up connection; unblock the
        // workers via the condvar.
        let _ = TcpStream::connect(self.addr);
        self.queue_cv.notify_all();
    }

    // ------------------------------------------------------------------
    // Acceptor + connections
    // ------------------------------------------------------------------

    fn accept_loop(self: Arc<Inner>, listener: TcpListener) {
        loop {
            let Ok((stream, _)) = listener.accept() else { continue };
            if self.shutting_down.load(Ordering::SeqCst) {
                return;
            }
            if self.conn_count.load(Ordering::SeqCst) >= self.config.max_connections {
                let mut s = stream;
                let _ = s.write_all(
                    overloaded_response("null", self.retry_after_ms()).as_bytes(),
                );
                let _ = s.write_all(b"\n");
                continue;
            }
            self.conn_count.fetch_add(1, Ordering::SeqCst);
            self.counters.connections.fetch_add(1, Ordering::Relaxed);
            let inner = self.clone();
            std::thread::spawn(move || {
                inner.serve_connection(stream);
                inner.conn_count.fetch_sub(1, Ordering::SeqCst);
            });
        }
    }

    /// One connection: poll-read lines, answer each. Never propagates a
    /// panic and never errors the connection over a bad frame.
    fn serve_connection(self: &Arc<Inner>, stream: TcpStream) {
        let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
        let writer = Arc::new(Mutex::new(match stream.try_clone() {
            Ok(w) => w,
            Err(_) => return,
        }));
        let mut reader = stream;
        let mut buf: Vec<u8> = Vec::new();
        let mut chunk = [0u8; 16 * 1024];
        // When a frame overruns `max_frame_bytes` we answer once and
        // then discard bytes until the next newline.
        let mut discarding = false;
        loop {
            if self.shutting_down.load(Ordering::SeqCst) && buf.is_empty() {
                return;
            }
            let n = match reader.read(&mut chunk) {
                Ok(0) => return, // peer closed
                Ok(n) => n,
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    continue
                }
                Err(_) => return,
            };
            buf.extend_from_slice(&chunk[..n]);
            loop {
                match buf.iter().position(|&b| b == b'\n') {
                    Some(at) => {
                        let line: Vec<u8> = buf.drain(..=at).collect();
                        if discarding {
                            discarding = false;
                            continue;
                        }
                        let line = String::from_utf8_lossy(&line[..line.len() - 1]);
                        let line = line.trim();
                        if !line.is_empty() {
                            self.handle_frame(line, &writer);
                        }
                    }
                    None if buf.len() > self.config.max_frame_bytes => {
                        if !discarding {
                            self.counters.bad_frames.fetch_add(1, Ordering::Relaxed);
                            send_line(
                                &writer,
                                &error_response(
                                    "null",
                                    "bad_request",
                                    &format!(
                                        "frame exceeds {} bytes",
                                        self.config.max_frame_bytes
                                    ),
                                ),
                            );
                            discarding = true;
                        }
                        buf.clear();
                        break;
                    }
                    None => break,
                }
            }
        }
    }

    /// Parse, admit or answer one frame. Runs on the connection thread;
    /// only `lift`/`lint` ever leave it.
    fn handle_frame(self: &Arc<Inner>, line: &str, writer: &Arc<Mutex<TcpStream>>) {
        self.counters.frames.fetch_add(1, Ordering::Relaxed);
        let req = match parse_request(line) {
            Ok(req) => req,
            Err(bad) => {
                self.counters.bad_frames.fetch_add(1, Ordering::Relaxed);
                send_line(writer, &error_response(&bad.id, "bad_request", &bad.error));
                return;
            }
        };
        match req.op {
            Op::Ping => {
                send_line(writer, &(response_head(&req.id, "ok") + ",\"op\":\"ping\"}"));
            }
            Op::Metrics => {
                send_line(writer, &self.metrics_response(&req.id));
            }
            Op::Shutdown => {
                send_line(writer, &(response_head(&req.id, "ok") + ",\"op\":\"shutdown\"}"));
                self.begin_shutdown();
            }
            Op::Lift | Op::Lint => self.admit(req, writer),
        }
    }

    // ------------------------------------------------------------------
    // Admission control + coalescing
    // ------------------------------------------------------------------

    /// The relative budget a request gets: the client ask clamped by
    /// the server ceiling.
    fn relative_budget(&self, req: &Request) -> Duration {
        match req.deadline_ms {
            Some(ms) => Duration::from_millis(ms).min(self.config.max_request_wall),
            None => self.config.max_request_wall,
        }
    }

    fn admit(self: &Arc<Inner>, req: Request, writer: &Arc<Mutex<TcpStream>>) {
        if self.shutting_down.load(Ordering::SeqCst) {
            self.counters.drained.fetch_add(1, Ordering::Relaxed);
            send_line(writer, &error_response(&req.id, "shutting_down", "daemon is draining"));
            return;
        }
        let rel = self.relative_budget(&req);
        let deadline = Instant::now() + rel;
        let responder =
            Arc::new(Responder { id: req.id.clone(), writer: writer.clone(), responded: AtomicBool::new(false) });

        let key: CoalesceKey = (req.op.tag(), req.full, req.inject_panic, sha256(&req.binary));
        // Coalesce: attach to an identical in-flight computation when
        // its budget covers ours.
        {
            let inflight = self.inflight.lock().expect("inflight lock");
            if let Some(entry) = inflight.get(&key) {
                if entry.leader_rel >= rel {
                    entry.waiters.lock().expect("waiters lock").push(responder.clone());
                    self.counters.coalesced.fetch_add(1, Ordering::Relaxed);
                    self.watch_request(deadline, &responder);
                    return;
                }
            }
        }

        // Admission: a full queue sheds instead of buffering.
        {
            let mut queue = self.queue.lock().expect("queue lock");
            if queue.len() >= self.config.queue_capacity {
                self.counters.shed.fetch_add(1, Ordering::Relaxed);
                drop(queue);
                send_line(writer, &overloaded_response(&req.id, self.retry_after_ms()));
                return;
            }
            // Become the coalescing leader (first writer wins; a racing
            // identical leader just runs uncoalesced).
            let entry = {
                let mut inflight = self.inflight.lock().expect("inflight lock");
                match inflight.entry(key) {
                    std::collections::hash_map::Entry::Vacant(v) => {
                        let e = Arc::new(Inflight { leader_rel: rel, waiters: Mutex::new(Vec::new()) });
                        v.insert(e.clone());
                        Some((key, e))
                    }
                    std::collections::hash_map::Entry::Occupied(_) => None,
                }
            };
            self.counters.admitted.fetch_add(1, Ordering::Relaxed);
            queue.push_back(Job { request: req, deadline, responder: responder.clone(), entry });
        }
        self.queue_cv.notify_one();
        self.watch_request(deadline, &responder);
    }

    /// How long a shed client should wait: queue drain time at the
    /// current service rate, clamped to something a client can use.
    fn retry_after_ms(&self) -> u64 {
        let depth = self.queue.lock().map(|q| q.len() as u64).unwrap_or(0).max(1);
        let ewma_ns = self.ewma_service_ns.load(Ordering::Relaxed);
        let workers = self.live_workers.load(Ordering::SeqCst).max(1) as u64;
        (depth * ewma_ns / workers / 1_000_000).clamp(10, 10_000)
    }

    // ------------------------------------------------------------------
    // Watchdog
    // ------------------------------------------------------------------

    fn watch_request(&self, deadline: Instant, responder: &Arc<Responder>) {
        self.watch
            .lock()
            .expect("watch lock")
            .push((deadline + self.config.watchdog_grace, Arc::downgrade(responder)));
    }

    /// Fires `deadline` responses for requests that overran their
    /// deadline plus grace. Sweeps completed (dead-weak) entries.
    fn watchdog_loop(self: Arc<Inner>) {
        loop {
            if self.shutting_down.load(Ordering::SeqCst)
                && self.live_workers.load(Ordering::SeqCst) == 0
            {
                // Final sweep: anything still watched is answered now.
                let entries = std::mem::take(&mut *self.watch.lock().expect("watch lock"));
                for (_, weak) in entries {
                    if let Some(r) = weak.upgrade() {
                        if r.send(&error_response(&r.id, "shutting_down", "daemon is draining")) {
                            self.counters.drained.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                return;
            }
            let now = Instant::now();
            let mut fired = Vec::new();
            {
                let mut watch = self.watch.lock().expect("watch lock");
                watch.retain(|(fire_at, weak)| match weak.upgrade() {
                    None => false,
                    Some(r) if r.is_responded() => false,
                    Some(r) => {
                        if *fire_at <= now {
                            fired.push(r);
                            false
                        } else {
                            true
                        }
                    }
                });
            }
            for r in fired {
                if r.send(&error_response(
                    &r.id,
                    "deadline",
                    "deadline expired before completion",
                )) {
                    self.counters.deadline_fired.fetch_add(1, Ordering::Relaxed);
                }
            }
            std::thread::sleep(Duration::from_millis(25));
        }
    }

    // ------------------------------------------------------------------
    // Workers
    // ------------------------------------------------------------------

    fn worker_loop(self: &Arc<Inner>) {
        loop {
            let job = {
                let mut queue = self.queue.lock().expect("queue lock");
                loop {
                    if let Some(job) = queue.pop_front() {
                        break Some(job);
                    }
                    if self.shutting_down.load(Ordering::SeqCst) {
                        break None;
                    }
                    let (q, _) = self
                        .queue_cv
                        .wait_timeout(queue, Duration::from_millis(100))
                        .expect("queue wait");
                    queue = q;
                }
            };
            let Some(job) = job else { return };
            if self.shutting_down.load(Ordering::SeqCst) {
                self.drain_job(job);
                continue;
            }
            self.execute(job);
        }
    }

    /// Answer a queued job with `shutting_down` (graceful drain).
    fn drain_job(&self, job: Job) {
        let line = error_response(&job.responder.id, "shutting_down", "daemon is draining");
        if job.responder.send(&line) {
            self.counters.drained.fetch_add(1, Ordering::Relaxed);
        }
        for w in self.remove_entry(&job) {
            if w.send(&error_response(&w.id, "shutting_down", "daemon is draining")) {
                self.counters.drained.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Detach the job's coalescing entry (if it owns one) and return
    /// the waiters accumulated so far. After this, no new follower can
    /// attach.
    fn remove_entry(&self, job: &Job) -> Vec<Arc<Responder>> {
        let Some((key, _)) = &job.entry else { return Vec::new() };
        let mut inflight = self.inflight.lock().expect("inflight lock");
        match inflight.remove(key) {
            Some(entry) => std::mem::take(&mut *entry.waiters.lock().expect("waiters lock")),
            None => Vec::new(),
        }
    }

    /// Run one lift/lint job with panic isolation, then answer the
    /// leader and every coalesced follower.
    fn execute(self: &Arc<Inner>, job: Job) {
        // Deadline-storm fast path: if the watchdog already answered
        // the leader and no follower is waiting, skip the compute
        // entirely so a storm of expired requests can't occupy workers.
        if job.responder.is_responded() {
            let waiters = self.remove_entry(&job);
            if waiters.iter().all(|w| w.is_responded()) {
                self.counters.deadline_skipped.fetch_add(1, Ordering::Relaxed);
                return;
            }
            // A live follower still needs the result: compute anyway
            // (the expired leader's entry is already detached).
            self.finish(&job, waiters);
            return;
        }
        let started = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| self.handle(&job.request, job.deadline)));
        let service_ns = started.elapsed().as_nanos() as u64;
        let prev = self.ewma_service_ns.load(Ordering::Relaxed);
        self.ewma_service_ns.store(prev - prev / 8 + service_ns / 8, Ordering::Relaxed);

        let (status, fields) = match outcome {
            Ok(sf) => sf,
            Err(payload) => {
                self.counters.panics_isolated.fetch_add(1, Ordering::Relaxed);
                let msg = panic_text(payload);
                let mut fields = String::from(",\"error\":");
                write_json_string(&format!("request panicked (isolated): {msg}"), &mut fields);
                ("internal".to_string(), fields)
            }
        };

        // Remove the entry *before* answering so late followers start a
        // fresh computation instead of attaching to a drained one.
        let waiters = self.remove_entry(&job);
        let line = format!("{}{}{}", response_head(&job.responder.id, &status), fields, "}");
        if job.responder.send(&line) {
            self.counters.completed.fetch_add(1, Ordering::Relaxed);
        }
        for w in waiters {
            let line = format!(
                "{}{}{}",
                response_head(&w.id, &status),
                fields,
                ",\"coalesced\":true}"
            );
            if w.send(&line) {
                self.counters.completed.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Compute for followers of an already-expired leader.
    fn finish(self: &Arc<Inner>, job: &Job, waiters: Vec<Arc<Responder>>) {
        let outcome = catch_unwind(AssertUnwindSafe(|| self.handle(&job.request, job.deadline)));
        let (status, fields) = match outcome {
            Ok(sf) => sf,
            Err(payload) => {
                self.counters.panics_isolated.fetch_add(1, Ordering::Relaxed);
                let msg = panic_text(payload);
                let mut fields = String::from(",\"error\":");
                write_json_string(&format!("request panicked (isolated): {msg}"), &mut fields);
                ("internal".to_string(), fields)
            }
        };
        for w in waiters {
            let line = format!(
                "{}{}{}",
                response_head(&w.id, &status),
                fields,
                ",\"coalesced\":true}"
            );
            if w.send(&line) {
                self.counters.completed.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    // ------------------------------------------------------------------
    // Request handlers
    // ------------------------------------------------------------------

    /// Execute a lift or lint. Returns `(status, extra response fields)`
    /// where the fields string starts with `,`.
    fn handle(&self, req: &Request, deadline: Instant) -> (String, String) {
        if req.inject_panic && self.config.enable_fault_injection {
            panic!("injected request panic (fault campaign)");
        }
        let bin = match Binary::parse(&req.binary) {
            Ok(bin) => bin,
            Err(e) => {
                let mut fields = String::from(",\"lifted\":false,\"reject\":");
                write_json_string(&format!("MalformedBinary: {e}"), &mut fields);
                return ("ok".to_string(), fields);
            }
        };
        let started = Instant::now();
        let lifter = Lifter::new(&bin)
            .with_config(self.config.lift.clone())
            .with_cache(self.cache.clone())
            .with_deadline(deadline);
        let lifter = match &self.store {
            Some(store) => lifter.with_store(store as &dyn ArtifactStore),
            None => lifter,
        };
        let report = lifter.lift_all();
        let elapsed_ms = started.elapsed().as_millis() as u64;

        let r = &report.result;
        let lifted_fns = r.functions.values().filter(|f| f.is_lifted()).count();
        let mut fields = format!(
            ",\"lifted\":{},\"functions\":{},\"lifted_functions\":{},\"instructions\":{},\
             \"states\":{},\"roots\":{},\"elapsed_ms\":{}",
            r.is_lifted(),
            r.functions.len(),
            lifted_fns,
            r.instruction_count(),
            r.state_count(),
            report.roots.len(),
            elapsed_ms,
        );
        match r.reject_reason() {
            Some(reason) => {
                fields.push_str(",\"reject\":");
                write_json_string(&format!("{reason:?}"), &mut fields);
            }
            None => fields.push_str(",\"reject\":null"),
        }

        match req.op {
            Op::Lift => {
                if req.full {
                    fields.push_str(",\"report\":");
                    fields.push_str(&one_line(&export_json(r)));
                }
            }
            Op::Lint => {
                let analysis = analyze(&bin, r, &AnalysisConfig::default());
                fields.push_str(&format!(
                    ",\"diags\":{},\"errors\":{},\"warnings\":{},\"infos\":{}",
                    analysis.diags.len(),
                    analysis.count(Severity::Error),
                    analysis.count(Severity::Warning),
                    analysis.count(Severity::Info),
                ));
                if req.full {
                    fields.push_str(",\"report\":");
                    fields.push_str(&one_line(&export_lint_json(&analysis)));
                }
            }
            Op::Ping | Op::Metrics | Op::Shutdown => unreachable!("control ops never reach a worker"),
        }
        ("ok".to_string(), fields)
    }

    /// The `metrics` op: server counters + shared cache + store.
    fn metrics_response(&self, id: &str) -> String {
        let c = &self.counters;
        let mut out = response_head(id, "ok");
        out.push_str(&format!(
            ",\"uptime_ms\":{},\"queue_depth\":{},\"inflight\":{},\"workers\":{},\
             \"ewma_service_ms\":{}",
            self.started.elapsed().as_millis(),
            self.queue.lock().map(|q| q.len()).unwrap_or(0),
            self.inflight.lock().map(|m| m.len()).unwrap_or(0),
            self.live_workers.load(Ordering::SeqCst),
            self.ewma_service_ns.load(Ordering::Relaxed) / 1_000_000,
        ));
        out.push_str(&format!(
            ",\"server\":{{\"connections\":{},\"frames\":{},\"bad_frames\":{},\"admitted\":{},\
             \"shed\":{},\"coalesced\":{},\"completed\":{},\"deadline_fired\":{},\
             \"deadline_skipped\":{},\"panics_isolated\":{},\"drained\":{}}}",
            c.connections.load(Ordering::Relaxed),
            c.frames.load(Ordering::Relaxed),
            c.bad_frames.load(Ordering::Relaxed),
            c.admitted.load(Ordering::Relaxed),
            c.shed.load(Ordering::Relaxed),
            c.coalesced.load(Ordering::Relaxed),
            c.completed.load(Ordering::Relaxed),
            c.deadline_fired.load(Ordering::Relaxed),
            c.deadline_skipped.load(Ordering::Relaxed),
            c.panics_isolated.load(Ordering::Relaxed),
            c.drained.load(Ordering::Relaxed),
        ));
        let cs = self.cache.stats();
        out.push_str(&format!(
            ",\"solver_cache\":{{\"hits\":{},\"misses\":{},\"entries\":{},\"hit_rate\":{:.4}}}",
            cs.hits,
            cs.misses,
            cs.entries,
            cs.hit_rate(),
        ));
        if let Some(store) = &self.store {
            let ss = store.stats();
            out.push_str(&format!(
                ",\"store\":{{\"hits\":{},\"misses\":{},\"inserts\":{},\"tmp_swept\":{},\
                 \"write_retries\":{},\"write_failures\":{},\"objects\":{}}}",
                ss.hits,
                ss.misses,
                ss.inserts,
                ss.tmp_swept,
                ss.write_retries,
                ss.write_failures,
                store.object_count(),
            ));
        }
        out.push('}');
        out
    }
}

/// Best-effort write of one response line; errors (dead peer) are
/// dropped on the floor by design.
fn send_line(writer: &Arc<Mutex<TcpStream>>, line: &str) {
    if let Ok(mut w) = writer.lock() {
        let _ = w.write_all(line.as_bytes());
        let _ = w.write_all(b"\n");
        let _ = w.flush();
    }
}

/// Renders a `catch_unwind` payload.
fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
