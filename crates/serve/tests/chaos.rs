//! The daemon fault-injection campaign.
//!
//! One small daemon (2 workers, tiny queue, fault hooks enabled, a
//! live store) is bombarded concurrently with every failure mode the
//! protocol can meet:
//!
//! - malformed JSONL frames (garbage bytes, truncated JSON, wrong
//!   types, unknown ops, bad hex, oversized frames);
//! - corrupted ELF payloads (random byte-level faults from the corpus
//!   injector);
//! - mid-request disconnects (send a lift, slam the connection);
//! - panicking lifts (the `inject_panic` hook);
//! - deadline storms (floods of `deadline_ms: 0..5` requests);
//! - a store directory corrupted *under load*;
//! - honest traffic interleaved with all of the above.
//!
//! Success criteria, asserted at the end:
//!
//! 1. zero crashes — the daemon still answers, every worker is alive;
//! 2. totality — every request sent on a surviving connection got
//!    exactly one structured response;
//! 3. bounded state — the queue and in-flight table drain back to
//!    empty;
//! 4. integrity — honest traffic *after* the storm still lifts
//!    correctly and still hits the warm cache.

use hgl_corpus::inject::{elf_image, Fault};
use hgl_corpus::xen::gen_study_binary;
use hgl_serve::proto::hex_encode;
use hgl_serve::{Client, Json, ServeConfig, Server};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::io::Write;
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

fn tmpdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("hgl-chaos-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("create temp dir");
    d
}

fn status(resp: &Json) -> String {
    resp.get("status").and_then(Json::as_str).unwrap_or("<missing>").to_string()
}

/// Every status the protocol is allowed to answer with.
fn is_structured(s: &str) -> bool {
    matches!(
        s,
        "ok" | "bad_request" | "overloaded" | "deadline" | "shutting_down" | "internal"
    )
}

#[test]
fn chaos_campaign() {
    let dir = tmpdir("campaign");
    let config = ServeConfig {
        workers: 2,
        queue_capacity: 8,
        max_frame_bytes: 1 << 20,
        max_request_wall: Duration::from_secs(10),
        store_dir: Some(dir.clone()),
        enable_fault_injection: true,
        ..ServeConfig::default()
    };
    let mut server = Server::bind("127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr().to_string();

    let honest_image = elf_image(&gen_study_binary(1, false));

    // Warm the daemon once so post-storm integrity can check cache
    // reuse.
    {
        let mut c = Client::connect(&addr).expect("connect");
        c.set_timeout(Some(Duration::from_secs(30))).expect("timeout");
        let r = c.lift(&honest_image, None, false).expect("warm-up lift");
        assert_eq!(status(&r), "ok");
    }

    let mut answered: usize = 0;

    // ---- wave 1: malformed frames, all on one surviving connection.
    {
        let mut c = Client::connect(&addr).expect("connect");
        c.set_timeout(Some(Duration::from_secs(30))).expect("timeout");
        let frames = [
            "garbage that is not json",
            "{\"id\":1,\"op\":",
            "[1,2,3]",
            "\"a bare string\"",
            "{\"id\":2}",
            "{\"id\":3,\"op\":\"frobnicate\"}",
            "{\"id\":4,\"op\":\"lift\"}",
            "{\"id\":5,\"op\":\"lift\",\"binary\":\"zz\"}",
            "{\"id\":6,\"op\":\"lift\",\"binary\":\"abc\"}",
            "{\"id\":7,\"op\":\"lift\",\"binary\":\"00\",\"deadline_ms\":\"soon\"}",
            "{\"id\":8,\"op\":\"lift\",\"binary\":\"00\",\"full\":\"yes\"}",
        ];
        for frame in frames {
            c.send_line(frame).expect("send");
            let resp = c.recv().expect("structured answer to malformed frame");
            assert_eq!(status(&resp), "bad_request", "{frame} -> {resp:?}");
            answered += 1;
        }
        // An oversized frame is rejected and the connection survives.
        let huge = format!("{{\"id\":9,\"op\":\"lift\",\"binary\":\"{}\"}}", "00".repeat(700_000));
        assert!(huge.len() > 1 << 20);
        c.send_line(&huge).expect("send oversized");
        let resp = c.recv().expect("oversized answered");
        assert_eq!(status(&resp), "bad_request", "{resp:?}");
        answered += 1;
        // ...and the same connection still works for honest traffic.
        let pong = c.ping().expect("ping after malformed storm");
        assert_eq!(status(&pong), "ok");
        answered += 1;
    }

    // ---- wave 2: concurrent storm of everything at once.
    let waves: Vec<String> = std::thread::scope(|scope| {
        let mut handles = Vec::new();

        // Corrupted-ELF clients: random byte-level faults.
        for client_id in 0..3u64 {
            let addr = addr.clone();
            handles.push(scope.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(0xC0FFEE ^ client_id);
                let mut c = Client::connect(&addr).expect("connect");
                c.set_timeout(Some(Duration::from_secs(60))).expect("timeout");
                let mut statuses = Vec::new();
                for i in 0..8 {
                    let mut image = elf_image(&gen_study_binary(50 + client_id * 8 + i, false));
                    Fault::random(&mut rng, image.len()).apply(&mut image);
                    let resp = c.lift(&image, Some(2_000), false).expect("corrupt lift answered");
                    statuses.push(status(&resp));
                }
                statuses
            }));
        }

        // Panicking lifts.
        {
            let addr = addr.clone();
            let image = honest_image.clone();
            handles.push(scope.spawn(move || {
                let mut c = Client::connect(&addr).expect("connect");
                c.set_timeout(Some(Duration::from_secs(60))).expect("timeout");
                let mut statuses = Vec::new();
                for _ in 0..6 {
                    let resp = c
                        .request(
                            "lift",
                            &[
                                ("binary", Json::Str(hex_encode(&image))),
                                ("inject_panic", Json::Bool(true)),
                            ],
                        )
                        .expect("panicking lift answered");
                    statuses.push(status(&resp));
                }
                statuses
            }));
        }

        // Deadline storm: deadlines of 0..5 ms against real work.
        for client_id in 0..2u64 {
            let addr = addr.clone();
            handles.push(scope.spawn(move || {
                let mut c = Client::connect(&addr).expect("connect");
                c.set_timeout(Some(Duration::from_secs(60))).expect("timeout");
                let mut statuses = Vec::new();
                for i in 0..10 {
                    let image = elf_image(&gen_study_binary(300 + client_id * 10 + i, false));
                    let resp =
                        c.lift(&image, Some(i % 5), false).expect("deadline-storm answered");
                    statuses.push(status(&resp));
                }
                statuses
            }));
        }

        // Mid-request disconnects: fire a lift, slam the socket.
        {
            let addr = addr.clone();
            let image = honest_image.clone();
            handles.push(scope.spawn(move || {
                for i in 0..6 {
                    let Ok(mut s) = TcpStream::connect(&addr) else { continue };
                    let frame = format!(
                        "{{\"id\":{i},\"op\":\"lift\",\"binary\":\"{}\"}}\n",
                        hex_encode(&image)
                    );
                    let _ = s.write_all(frame.as_bytes());
                    drop(s); // vanish before the answer
                }
                Vec::new()
            }));
        }

        // Honest traffic riding through the storm.
        {
            let addr = addr.clone();
            let image = honest_image.clone();
            handles.push(scope.spawn(move || {
                let mut c = Client::connect(&addr).expect("connect");
                c.set_timeout(Some(Duration::from_secs(60))).expect("timeout");
                let mut statuses = Vec::new();
                for _ in 0..6 {
                    let resp = c.lift(&image, None, false).expect("honest lift answered");
                    statuses.push(status(&resp));
                    std::thread::sleep(Duration::from_millis(5));
                }
                statuses
            }));
        }

        // Store corruption under load: replace published objects with
        // garbage and scatter crash-leftover tmp files while lifts are
        // in flight.
        {
            let dir = dir.clone();
            handles.push(scope.spawn(move || {
                for i in 0..10 {
                    if let Ok(entries) = std::fs::read_dir(&dir) {
                        for e in entries.flatten().take(3) {
                            let _ = std::fs::write(e.path(), b"corrupted under load");
                        }
                    }
                    let _ = std::fs::write(dir.join(format!("wreck-{i}.tmp77")), b"leftover");
                    std::thread::sleep(Duration::from_millis(10));
                }
                Vec::new()
            }));
        }

        handles
            .into_iter()
            .flat_map(|h| h.join().expect("chaos client thread survived"))
            .collect()
    });

    // Totality: every answered request carried a structured status.
    for s in &waves {
        assert!(is_structured(s), "unstructured status {s:?}");
    }
    answered += waves.len();
    assert!(answered >= 60, "campaign exercised enough traffic: {answered}");

    // ---- verdicts, on a fresh connection.
    let mut c = Client::connect(&addr).expect("post-storm connect");
    c.set_timeout(Some(Duration::from_secs(60))).expect("timeout");

    // 1. Zero crashes: all workers alive, daemon answering.
    let m = c.metrics().expect("post-storm metrics");
    assert_eq!(status(&m), "ok");
    assert_eq!(m.get("workers").and_then(Json::as_u64), Some(2), "all workers alive: {m:?}");
    let server_counters = m.get("server").expect("server block");
    let count = |key: &str| server_counters.get(key).and_then(Json::as_u64).unwrap_or(0);
    assert!(count("bad_frames") >= 12, "malformed wave counted: {m:?}");
    assert!(count("panics_isolated") >= 6, "every injected panic isolated: {m:?}");
    assert!(count("completed") > 0, "{m:?}");

    // 2. Bounded state: the daemon drained back to idle. (The
    //    in-flight table may lag the last response by a beat.)
    let mut drained = false;
    for _ in 0..50 {
        let m = c.metrics().expect("drain metrics");
        if m.get("queue_depth").and_then(Json::as_u64) == Some(0)
            && m.get("inflight").and_then(Json::as_u64) == Some(0)
        {
            drained = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(drained, "queue and inflight table must drain to empty");

    // 3. Integrity: honest traffic still works, and the store —
    //    corrupted mid-campaign — heals to recompute rather than
    //    serving garbage.
    let after = c.lift(&honest_image, None, false).expect("post-storm lift");
    assert_eq!(status(&after), "ok", "{after:?}");
    assert_eq!(after.get("lifted").and_then(Json::as_bool), Some(true), "{after:?}");

    let bye = c.shutdown().expect("shutdown");
    assert_eq!(status(&bye), "ok");
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}
