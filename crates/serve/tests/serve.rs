//! Functional tests for the daemon: the happy path, warm sharing,
//! admission control, deadlines and coalescing.

use hgl_corpus::inject::elf_image;
use hgl_corpus::xen::gen_study_binary;
use hgl_serve::{Client, Json, ServeConfig, Server};
use std::path::PathBuf;
use std::time::Duration;

fn tmpdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("hgl-serve-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("create temp dir");
    d
}

fn status(resp: &Json) -> &str {
    resp.get("status").and_then(Json::as_str).unwrap_or("<missing>")
}

fn quick_config() -> ServeConfig {
    ServeConfig { workers: 2, ..ServeConfig::default() }
}

#[test]
fn ping_metrics_and_shutdown() {
    let mut server = Server::bind("127.0.0.1:0", quick_config()).expect("bind");
    let addr = server.local_addr().to_string();
    let mut c = Client::connect(&addr).expect("connect");

    let pong = c.ping().expect("ping");
    assert_eq!(status(&pong), "ok");

    let m = c.metrics().expect("metrics");
    assert_eq!(status(&m), "ok");
    assert!(m.get("uptime_ms").and_then(Json::as_u64).is_some(), "{m:?}");
    assert!(m.get("server").is_some(), "{m:?}");
    assert!(m.get("solver_cache").is_some(), "{m:?}");

    let bye = c.shutdown().expect("shutdown");
    assert_eq!(status(&bye), "ok");
    server.join();
}

#[test]
fn lift_round_trip_and_full_report() {
    let mut server = Server::bind("127.0.0.1:0", quick_config()).expect("bind");
    let addr = server.local_addr().to_string();
    let mut c = Client::connect(&addr).expect("connect");

    let image = elf_image(&gen_study_binary(3, false));
    let resp = c.lift(&image, None, false).expect("lift");
    assert_eq!(status(&resp), "ok", "{resp:?}");
    assert_eq!(resp.get("lifted").and_then(Json::as_bool), Some(true), "{resp:?}");
    assert!(resp.get("functions").and_then(Json::as_u64).unwrap_or(0) > 0);
    assert!(resp.get("instructions").and_then(Json::as_u64).unwrap_or(0) > 0);
    assert_eq!(resp.get("reject"), Some(&Json::Null));

    // full=true embeds the complete hgl-lift-v* report inline.
    let full = c.lift(&image, None, true).expect("full lift");
    let report = full.get("report").expect("embedded report");
    assert!(
        report.get("schema").and_then(Json::as_str).unwrap_or("").starts_with("hgl-lift"),
        "{full:?}"
    );

    server.shutdown();
    server.join();
}

#[test]
fn lint_reports_severity_counts() {
    let mut server = Server::bind("127.0.0.1:0", quick_config()).expect("bind");
    let addr = server.local_addr().to_string();
    let mut c = Client::connect(&addr).expect("connect");

    let image = elf_image(&hgl_corpus::failures::callee_saved_clobber());
    let resp = c.lint(&image, true).expect("lint");
    assert_eq!(status(&resp), "ok", "{resp:?}");
    assert!(resp.get("diags").and_then(Json::as_u64).is_some(), "{resp:?}");
    let report = resp.get("report").expect("embedded lint report");
    assert!(
        report.get("schema").and_then(Json::as_str).unwrap_or("").starts_with("hgl-lint"),
        "{resp:?}"
    );

    server.shutdown();
    server.join();
}

#[test]
fn malformed_binary_is_answered_not_crashed() {
    let mut server = Server::bind("127.0.0.1:0", quick_config()).expect("bind");
    let addr = server.local_addr().to_string();
    let mut c = Client::connect(&addr).expect("connect");

    let resp = c.lift(b"this is not an elf image", None, false).expect("lift garbage");
    assert_eq!(status(&resp), "ok");
    assert_eq!(resp.get("lifted").and_then(Json::as_bool), Some(false), "{resp:?}");
    let reject = resp.get("reject").and_then(Json::as_str).unwrap_or("");
    assert!(reject.contains("MalformedBinary"), "{resp:?}");

    // The daemon is still alive and serving.
    assert_eq!(status(&c.ping().expect("ping after garbage")), "ok");
    server.shutdown();
    server.join();
}

#[test]
fn repeat_lifts_share_the_warm_cache_and_store() {
    let dir = tmpdir("warm");
    let config = ServeConfig { workers: 2, store_dir: Some(dir.clone()), ..ServeConfig::default() };
    let mut server = Server::bind("127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr().to_string();
    let mut c = Client::connect(&addr).expect("connect");

    let image = elf_image(&gen_study_binary(11, false));
    let cold = c.lift(&image, None, false).expect("cold lift");
    assert_eq!(cold.get("lifted").and_then(Json::as_bool), Some(true));
    let warm = c.lift(&image, None, false).expect("warm lift");
    assert_eq!(warm.get("lifted").and_then(Json::as_bool), Some(true));

    // Same structural result either way.
    for key in ["functions", "instructions", "states"] {
        assert_eq!(cold.get(key), warm.get(key), "{key} differs between cold and warm");
    }
    // And the shared state shows activity: the store holds artifacts
    // and served hits on the warm pass.
    let m = c.metrics().expect("metrics");
    let store = m.get("store").expect("store metrics");
    assert!(store.get("objects").and_then(Json::as_u64).unwrap_or(0) > 0, "{m:?}");
    assert!(store.get("hits").and_then(Json::as_u64).unwrap_or(0) > 0, "{m:?}");

    server.shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn deadline_degrades_to_partial_not_error() {
    let mut server = Server::bind("127.0.0.1:0", quick_config()).expect("bind");
    let addr = server.local_addr().to_string();
    let mut c = Client::connect(&addr).expect("connect");
    c.set_timeout(Some(Duration::from_secs(30))).expect("timeout");

    let image = elf_image(&gen_study_binary(5, false));
    // deadline_ms=0: the budget is exhausted on the engine's first
    // check, so the response is a *structured partial* ("ok" with a
    // Timeout reject), or — if the watchdog wins the race — a
    // structured "deadline". Either way it is answered.
    let resp = c.lift(&image, Some(0), false).expect("zero-deadline lift");
    match status(&resp) {
        "ok" => {
            assert_eq!(resp.get("lifted").and_then(Json::as_bool), Some(false), "{resp:?}");
            let reject = resp.get("reject").and_then(Json::as_str).unwrap_or("");
            assert!(reject.contains("Timeout"), "{resp:?}");
        }
        "deadline" => {}
        other => panic!("unexpected status {other}: {resp:?}"),
    }

    // A generous deadline changes nothing about the result.
    let fine = c.lift(&image, Some(20_000), false).expect("generous deadline");
    assert_eq!(status(&fine), "ok");
    assert_eq!(fine.get("lifted").and_then(Json::as_bool), Some(true), "{fine:?}");

    server.shutdown();
    server.join();
}

#[test]
fn saturation_sheds_with_retry_hint() {
    // One worker, a tiny queue, and a pile of simultaneous requests:
    // the overflow must come back as `overloaded` with a usable hint,
    // and everything admitted must still be answered.
    let config = ServeConfig {
        workers: 1,
        queue_capacity: 2,
        ..ServeConfig::default()
    };
    let mut server = Server::bind("127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr().to_string();

    // Distinct binaries so coalescing cannot absorb the flood.
    let images: Vec<Vec<u8>> =
        (0..12).map(|i| elf_image(&gen_study_binary(100 + i, false))).collect();
    let answers: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = images
            .iter()
            .map(|image| {
                let addr = addr.clone();
                scope.spawn(move || {
                    let mut c = Client::connect(&addr).expect("connect");
                    c.set_timeout(Some(Duration::from_secs(60))).expect("timeout");
                    let resp = c.lift(image, None, false).expect("response");
                    let s = resp.get("status").and_then(Json::as_str).unwrap_or("?").to_string();
                    if s == "overloaded" {
                        assert!(
                            resp.get("retry_after_ms").and_then(Json::as_u64).unwrap_or(0) > 0,
                            "{resp:?}"
                        );
                    }
                    s
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });

    let ok = answers.iter().filter(|s| *s == "ok").count();
    let shed = answers.iter().filter(|s| *s == "overloaded").count();
    assert_eq!(ok + shed, answers.len(), "every request answered: {answers:?}");
    assert!(ok > 0, "some requests served: {answers:?}");
    assert!(shed > 0, "1 worker + queue of 2 must shed under 12 concurrent: {answers:?}");

    server.shutdown();
    server.join();
}

#[test]
fn identical_inflight_requests_coalesce() {
    // One slow worker; many clients ask for the same binary at once.
    // At most a few computations run; the rest attach as followers and
    // come back flagged `coalesced`.
    let config = ServeConfig { workers: 1, queue_capacity: 64, ..ServeConfig::default() };
    let mut server = Server::bind("127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr().to_string();

    let image = elf_image(&gen_study_binary(42, true));
    // Connect first, release together: the requests must overlap the
    // leader's computation for followers to attach.
    let barrier = std::sync::Barrier::new(10);
    let responses: Vec<Json> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..10)
            .map(|_| {
                let addr = addr.clone();
                let image = &image;
                let barrier = &barrier;
                scope.spawn(move || {
                    let mut c = Client::connect(&addr).expect("connect");
                    c.set_timeout(Some(Duration::from_secs(60))).expect("timeout");
                    barrier.wait();
                    c.lift(image, None, false).expect("response")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });

    let mut coalesced = 0;
    for resp in &responses {
        assert_eq!(status(resp), "ok", "{resp:?}");
        assert_eq!(resp.get("lifted").and_then(Json::as_bool), Some(true), "{resp:?}");
        if resp.get("coalesced").and_then(Json::as_bool) == Some(true) {
            coalesced += 1;
        }
    }
    // All ten raced in before the single worker could finish the
    // leader, so at least some must have shared its computation. (The
    // exact count depends on scheduling; zero would mean coalescing is
    // broken.)
    let mut c = Client::connect(&addr).expect("connect");
    let m = c.metrics().expect("metrics");
    let server_counters = m.get("server").expect("server block");
    assert_eq!(
        server_counters.get("coalesced").and_then(Json::as_u64).unwrap_or(0),
        coalesced as u64,
        "{m:?}"
    );
    assert!(coalesced > 0, "identical concurrent requests must coalesce: {responses:?}");

    server.shutdown();
    server.join();
}

#[test]
fn shutdown_drains_queued_requests_with_structured_answers() {
    let config = ServeConfig { workers: 1, queue_capacity: 64, ..ServeConfig::default() };
    let mut server = Server::bind("127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr().to_string();

    // Stack up slow work, then shut down mid-flight.
    let images: Vec<Vec<u8>> =
        (0..6).map(|i| elf_image(&gen_study_binary(200 + i, false))).collect();
    let answers: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = images
            .iter()
            .map(|image| {
                let addr = addr.clone();
                scope.spawn(move || {
                    let mut c = Client::connect(&addr).expect("connect");
                    c.set_timeout(Some(Duration::from_secs(60))).expect("timeout");
                    let resp = c.lift(image, None, false).expect("response");
                    resp.get("status").and_then(Json::as_str).unwrap_or("?").to_string()
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(30));
        server.shutdown();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    server.join();

    for s in &answers {
        assert!(
            s == "ok" || s == "shutting_down",
            "drained requests answer ok/shutting_down, got {answers:?}"
        );
    }
    assert!(answers.iter().any(|s| s == "shutting_down"), "{answers:?}");
}
