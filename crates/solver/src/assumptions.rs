//! Explicit assumptions generated when a relation is proven from
//! memory-space provenance rather than arithmetic.
//!
//! The paper (§5.2): *"The informal algorithm can implicitly make
//! assumptions that, e.g., regions in the global memory space are not
//! overlapping with regions from the stack frame. A formal proof must
//! explicitly assume that."* Each provenance-based separation verdict
//! therefore carries an [`Assumption`] that is propagated into the
//! lifted output and the Isabelle export.

use crate::Region;
use std::fmt;

/// The kind of memory-space disjointness that was assumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AssumptionKind {
    /// The caller's stack frame does not overlap the global/data space.
    StackVsGlobal,
    /// The caller's stack frame does not overlap the heap.
    StackVsHeap,
    /// The global/data space does not overlap the heap.
    GlobalVsHeap,
    /// Two distinct heap allocations (fresh pointer symbols) are
    /// disjoint.
    DistinctAllocations,
    /// A caller-supplied pointer (initial register value) does not
    /// point into the callee's local stack frame. Violations of this
    /// assumption are exactly the §5.3 ret2win scenario, so it is
    /// surfaced as a proof obligation on the lifted output.
    CallerVsFrame,
    /// A caller-supplied pointer does not point into the global/data
    /// space of the binary.
    CallerVsGlobal,
    /// A caller-supplied pointer cannot point into an allocation that
    /// was made after function entry (freshness).
    CallerVsFreshAllocation,
}

impl fmt::Display for AssumptionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AssumptionKind::StackVsGlobal => "stack frame separate from global space",
            AssumptionKind::StackVsHeap => "stack frame separate from heap",
            AssumptionKind::GlobalVsHeap => "global space separate from heap",
            AssumptionKind::DistinctAllocations => "distinct allocations are disjoint",
            AssumptionKind::CallerVsFrame => "caller pointer separate from local stack frame",
            AssumptionKind::CallerVsGlobal => "caller pointer separate from global space",
            AssumptionKind::CallerVsFreshAllocation => "caller pointer predates fresh allocation",
        };
        f.write_str(s)
    }
}

/// An assumption used to justify a separation verdict.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Assumption {
    /// The disjointness class that was assumed.
    pub kind: AssumptionKind,
    /// First region.
    pub r0: Region,
    /// Second region.
    pub r1: Region,
}

impl Assumption {
    /// Construct an assumption over two regions.
    pub fn new(kind: AssumptionKind, r0: Region, r1: Region) -> Assumption {
        Assumption { kind, r0, r1 }
    }
}

impl fmt::Display for Assumption {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ASSUME {} ⊲⊳ {} ({})", self.r0, self.r1, self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let a = Assumption::new(
            AssumptionKind::StackVsGlobal,
            Region::stack(-8, 8),
            Region::global(0x601000, 8),
        );
        let s = a.to_string();
        assert!(s.contains("ASSUME"), "{s}");
        assert!(s.contains("stack frame separate from global space"), "{s}");
    }
}
