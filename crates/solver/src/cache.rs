//! Concurrent memoization of *necessarily*-relation queries.
//!
//! The paper reports that solver time dominates lifting, and the same
//! `≡ / ⊲⊳ / ⪯` question is asked over and over: every memory-model
//! insertion re-decides the inserted region against every resident
//! region, and loop bodies re-insert the same few stack slots once per
//! joined state. [`QueryCache`] memoizes [`decide`](crate::decide)
//! verdicts across an entire binary lift, shared by every worker of the
//! parallel engine.
//!
//! # Soundness of the cache key
//!
//! A verdict depends on exactly three inputs (see `relation.rs`):
//!
//! 1. the two regions' **canonicalized linear forms** (terms sorted by
//!    atom, zero coefficients dropped — [`Linear`] guarantees both) and
//!    byte sizes,
//! 2. the **interval bounds** the context holds for the atoms that
//!    appear in either form (the arithmetic path reads only those
//!    atoms' bounds; provenance's `interval_of` likewise), and
//! 3. the binary **layout** (provenance classification of bounded
//!    computed addresses).
//!
//! The key captures (1) and (2) verbatim. (3) is deliberately *not* in
//! the key: a cache is created per [`Lifter`] session and never
//! outlives one binary, so the layout is constant for every query the
//! cache will ever see. Provenance of symbol-rooted addresses (`rsp0`,
//! `rdi0`, fresh allocation symbols) is a function of the base symbol
//! alone — base-symbol provenance is part of the linear form and thus
//! of the key — so memoized provenance verdicts are exact, not
//! approximate.
//!
//! [`Lifter`]: ../hgl_core/engine/struct.Lifter.html

use crate::{Answer, Ctx, Region};
use hgl_expr::{Atom, Interval, Linear};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of independently locked shards. Power of two; sized so that
/// a dozen workers rarely contend on one lock.
const SHARDS: usize = 64;

/// Entries per shard before the shard is wholesale evicted. Keys and
/// answers are a few hundred bytes each, so the worst-case footprint
/// stays in the tens of megabytes.
const SHARD_CAP: usize = 8192;

/// One region's contribution to a cache key: its canonical linear form
/// plus byte size.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct RegionKey {
    terms: Vec<(Atom, i64)>,
    offset: i64,
    has_bottom: bool,
    size: u64,
}

impl RegionKey {
    fn of(r: &Region, lin: &Linear) -> RegionKey {
        RegionKey {
            terms: lin.terms.iter().map(|(a, c)| (*a, *c)).collect(),
            offset: lin.offset,
            has_bottom: lin.has_bottom,
            size: r.size,
        }
    }
}

/// A fully canonicalized query: both regions plus the bounds of every
/// atom either region mentions.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct QueryKey {
    r0: RegionKey,
    r1: RegionKey,
    /// `(atom, bound)` for each mentioned atom with a context bound,
    /// in the canonical (sorted) order the linear forms iterate in.
    bounds: Vec<(Atom, Interval)>,
    /// Structural hash of the three fields above, computed once at
    /// construction. A key is hashed at least twice (shard selection,
    /// then the shard map) and often three times (lookup then insert on
    /// a miss); caching the digest makes the later passes a single
    /// `u64` write.
    hash: u64,
}

/// Hashing delegates to the precomputed digest. `PartialEq` stays
/// structural over the payload fields, which the `HashMap` contract
/// requires; equal payloads produce equal digests because the digest
/// is a pure function of the payload.
impl Hash for QueryKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.hash.hash(state);
    }
}

impl QueryKey {
    /// Build the key for `decide(ctx, r0, r1)`.
    pub fn of(ctx: &Ctx, r0: &Region, r1: &Region) -> QueryKey {
        let l0 = r0.linear();
        let l1 = r1.linear();
        let mut bounds = Vec::new();
        for atom in l0.terms.keys().chain(l1.terms.keys()) {
            if let Some(b) = ctx.bound_of(atom) {
                if !bounds.iter().any(|(a, _)| a == atom) {
                    bounds.push((*atom, b));
                }
            }
        }
        let r0 = RegionKey::of(r0, l0);
        let r1 = RegionKey::of(r1, l1);
        let mut h = std::collections::hash_map::DefaultHasher::new();
        r0.hash(&mut h);
        r1.hash(&mut h);
        bounds.hash(&mut h);
        let hash = h.finish();
        QueryKey { r0, r1, bounds, hash }
    }

    fn shard(&self) -> usize {
        (self.hash as usize) % SHARDS
    }
}

/// Point-in-time cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered from the cache.
    pub hits: u64,
    /// Queries decided and inserted.
    pub misses: u64,
    /// Entries dropped by shard eviction.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: u64,
    /// Total wall time spent *computing* verdicts (cache misses only),
    /// in nanoseconds. Hits are not clocked — at the observed >90% hit
    /// rates the two `Instant::now` calls per hit cost more than the
    /// lookup they would measure. Feeds the metrics layer's solver
    /// phase, which therefore reports decision-procedure time.
    pub query_nanos: u64,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]`; `0` when no query was made.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A sharded, mutex-protected memo table for `decide` verdicts with
/// hit/miss/eviction counters. Cheap to share: wrap in an `Arc` and
/// clone the handle per worker.
pub struct QueryCache {
    shards: Vec<Mutex<HashMap<QueryKey, Answer>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    query_nanos: AtomicU64,
    /// Digest of the configuration fingerprint the resident entries
    /// were computed under (`0` = unbound). See
    /// [`QueryCache::bind_fingerprint`].
    fingerprint: AtomicU64,
}

impl Default for QueryCache {
    fn default() -> QueryCache {
        QueryCache::new()
    }
}

impl std::fmt::Debug for QueryCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryCache").field("stats", &self.stats()).finish()
    }
}

impl QueryCache {
    /// An empty cache.
    pub fn new() -> QueryCache {
        QueryCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            query_nanos: AtomicU64::new(0),
            fingerprint: AtomicU64::new(0),
        }
    }

    /// Bind the cache to a configuration fingerprint digest (see
    /// `hgl_core::Fingerprint::digest64`). The cache key canonicalizes
    /// the solver's *inputs* but not the configuration that shaped
    /// them, so resident verdicts are only reusable while the
    /// fingerprint is unchanged: rebinding to a *different* digest
    /// flushes every shard (counted as evictions). Rebinding to the
    /// same digest is free.
    pub fn bind_fingerprint(&self, digest: u64) {
        let prev = self.fingerprint.swap(digest, Ordering::AcqRel);
        if prev != 0 && prev != digest {
            for shard in &self.shards {
                let mut guard = shard.lock().unwrap_or_else(|e| e.into_inner());
                self.evictions.fetch_add(guard.len() as u64, Ordering::Relaxed);
                guard.clear();
            }
        }
    }

    /// The bound fingerprint digest (`0` when unbound).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint.load(Ordering::Acquire)
    }

    /// Look up a memoized verdict.
    pub fn get(&self, key: &QueryKey) -> Option<Answer> {
        let shard = &self.shards[key.shard()];
        let guard = shard.lock().unwrap_or_else(|e| e.into_inner());
        let found = guard.get(key).cloned();
        drop(guard);
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Insert a decided verdict. When the shard is full it is cleared
    /// wholesale first — the working set of a lift is heavily skewed
    /// towards recent queries, so a coarse epoch eviction loses little
    /// and needs no per-entry bookkeeping on the hit path.
    pub fn insert(&self, key: QueryKey, answer: Answer) {
        let shard = &self.shards[key.shard()];
        let mut guard = shard.lock().unwrap_or_else(|e| e.into_inner());
        if guard.len() >= SHARD_CAP {
            self.evictions.fetch_add(guard.len() as u64, Ordering::Relaxed);
            guard.clear();
        }
        guard.insert(key, answer);
    }

    /// Add `nanos` of wall time spent answering queries.
    pub fn add_query_nanos(&self, nanos: u64) {
        self.query_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        let entries = self
            .shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).len() as u64)
            .sum();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries,
            query_nanos: self.query_nanos.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{decide, RegionRel};
    use hgl_expr::{Clause, Expr, Rel, Sym};
    use hgl_x86::Reg;
    use std::sync::Arc;

    #[test]
    fn hit_after_miss_returns_same_answer() {
        let cache = QueryCache::new();
        let ctx = Ctx::new();
        let a = Region::stack(-0x28, 8);
        let b = Region::stack(-0x10, 8);
        let key = QueryKey::of(&ctx, &a, &b);
        assert!(cache.get(&key).is_none());
        let ans = decide(&ctx, &a, &b);
        cache.insert(key.clone(), ans.clone());
        assert_eq!(cache.get(&key), Some(ans));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!(s.hit_rate() > 0.49 && s.hit_rate() < 0.51);
    }

    #[test]
    fn syntactically_different_same_linear_form_share_entry() {
        let ctx = Ctx::new();
        // rsp0 + (8 - 0x30)  vs  (rsp0 - 0x30) + 8: same canonical form.
        let rsp = || Expr::sym(Sym::Init(Reg::Rsp));
        let a = Region::new(rsp().add(Expr::imm(8)).sub(Expr::imm(0x30)), 8);
        let b = Region::new(rsp().sub(Expr::imm(0x30)).add(Expr::imm(8)), 8);
        let probe = Region::return_address_slot();
        assert_eq!(QueryKey::of(&ctx, &a, &probe), QueryKey::of(&ctx, &b, &probe));
    }

    #[test]
    fn differing_bounds_produce_distinct_keys() {
        // The same regions under different clause contexts must not
        // share a verdict: the bound is what makes the table access
        // separate from the cell past it.
        let rax = Expr::sym(Sym::Init(Reg::Rax));
        let entry = Region::new(Expr::imm(0x1000).add(rax.mul(Expr::imm(8))), 8);
        let past = Region::global(0x1000 + 0xc3 * 8, 8);
        let free = Ctx::new();
        let c = Clause::new(rax, Rel::Lt, Expr::imm(0xc3));
        let bounded = Ctx::from_clauses([&c], crate::Layout::default());
        assert_ne!(QueryKey::of(&free, &entry, &past), QueryKey::of(&bounded, &entry, &past));
        assert_eq!(decide(&free, &entry, &past).rel, RegionRel::Unknown);
        assert_eq!(decide(&bounded, &entry, &past).rel, RegionRel::Separate);
    }

    #[test]
    fn eviction_counts_and_caps_shard() {
        let cache = QueryCache::new();
        let ctx = Ctx::new();
        // Far more distinct keys than total capacity.
        for i in 0..(SHARDS * SHARD_CAP + SHARDS * 64) as i64 {
            let a = Region::stack(-8 * i, 8);
            let key = QueryKey::of(&ctx, &a, &a);
            cache.insert(key, decide(&ctx, &a, &a));
        }
        let s = cache.stats();
        assert!(s.evictions > 0, "evictions must be counted: {s:?}");
        assert!(s.entries <= (SHARDS * SHARD_CAP) as u64);
    }

    #[test]
    fn rebinding_fingerprint_flushes() {
        let cache = QueryCache::new();
        let ctx = Ctx::new();
        let a = Region::stack(-8, 8);
        let key = QueryKey::of(&ctx, &a, &a);
        cache.bind_fingerprint(17);
        cache.insert(key.clone(), decide(&ctx, &a, &a));
        // Same digest: entries survive.
        cache.bind_fingerprint(17);
        assert!(cache.get(&key).is_some());
        // Different digest: flushed (and counted as evictions).
        cache.bind_fingerprint(23);
        assert!(cache.get(&key).is_none());
        assert_eq!(cache.fingerprint(), 23);
        assert!(cache.stats().evictions >= 1);
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn concurrent_use_is_consistent() {
        let cache = Arc::new(QueryCache::new());
        let ctx = Ctx::new();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let cache = Arc::clone(&cache);
                let ctx = ctx.clone();
                scope.spawn(move || {
                    for i in 0..200i64 {
                        let a = Region::stack(-8 * (i % 32), 8);
                        let b = Region::stack(-8 * ((i + t) % 32), 8);
                        let key = QueryKey::of(&ctx, &a, &b);
                        match cache.get(&key) {
                            Some(ans) => assert_eq!(ans, decide(&ctx, &a, &b)),
                            None => cache.insert(key, decide(&ctx, &a, &b)),
                        }
                    }
                });
            }
        });
        let s = cache.stats();
        assert!(s.hits + s.misses == 4 * 200);
    }
}
