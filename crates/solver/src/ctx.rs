//! Solver context: bounds mined from predicate clauses, and the memory
//! layout used to classify constant addresses.

use hgl_expr::{Atom, Clause, Expr, Interval, Linear, Rel, Sym};
use hgl_x86::Reg;
use std::collections::BTreeMap;

/// Address-space layout of the binary under analysis, used to classify
/// constant addresses as code or data.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Layout {
    /// `[start, end)` ranges of executable sections.
    pub text: Vec<(u64, u64)>,
    /// `[start, end)` ranges of data sections.
    pub data: Vec<(u64, u64)>,
}

impl Layout {
    /// True if `addr` falls in an executable section.
    pub fn is_code(&self, addr: u64) -> bool {
        self.text.iter().any(|&(s, e)| s <= addr && addr < e)
    }

    /// True if `addr` falls in a data section.
    pub fn is_data(&self, addr: u64) -> bool {
        self.data.iter().any(|&(s, e)| s <= addr && addr < e)
    }
}

/// Provenance class of an address expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Provenance {
    /// Based on `rsp0`: the caller's local stack frame.
    Stack,
    /// A compile-time constant address (global/data space or code).
    Global,
    /// Based on a fresh symbol — heap or externally supplied pointer.
    Heap(Sym),
    /// Based on an initial register value other than `rsp0` — a caller
    /// supplied pointer of unknown space.
    Param(Sym),
    /// Anything else.
    Unknown,
}

/// The read-only query context: symbol bounds mined from the current
/// predicate's clauses, plus the binary layout.
#[derive(Debug, Clone, Default)]
pub struct Ctx {
    bounds: BTreeMap<Atom, Interval>,
    /// Binary layout for constant-address classification. Shared: one
    /// `Layout` is built per binary and every per-query context holds
    /// a handle, so constructing a `Ctx` never copies section tables.
    pub layout: std::sync::Arc<Layout>,
    /// Set when mined bounds are contradictory: the clause set is
    /// unsatisfiable and the state vacuous.
    unsat: bool,
    /// Shared memo table consulted by [`decide`](crate::decide). A
    /// cache must never outlive the binary whose layout it was built
    /// under (see `cache.rs` on key soundness).
    pub cache: Option<std::sync::Arc<crate::QueryCache>>,
}

impl Ctx {
    /// An empty context (no clause information).
    pub fn new() -> Ctx {
        Ctx::default()
    }

    /// Attach a shared query cache; subsequent [`decide`](crate::decide)
    /// calls under this context memoize through it.
    pub fn with_cache(mut self, cache: std::sync::Arc<crate::QueryCache>) -> Ctx {
        self.cache = Some(cache);
        self
    }

    /// Build a context from predicate clauses, mining interval bounds
    /// for single-atom left-hand sides compared against constants.
    ///
    /// Accepts either an owned [`Layout`] (interned into a fresh `Arc`,
    /// convenient in tests) or an `Arc<Layout>` handle (the hot path:
    /// the engine builds the layout once per binary and every solver
    /// query shares it).
    pub fn from_clauses<'a, I, L>(clauses: I, layout: L) -> Ctx
    where
        I: IntoIterator<Item = &'a Clause>,
        L: Into<std::sync::Arc<Layout>>,
    {
        let mut ctx =
            Ctx { bounds: BTreeMap::new(), layout: layout.into(), unsat: false, cache: None };
        for c in clauses {
            ctx.add_clause(c);
        }
        ctx
    }

    /// Incorporate one clause into the bound map.
    ///
    /// Only wraparound-safe forms are mined: an offset-free
    /// `1·atom □ imm`, or an offset equality `1·atom + k == imm`
    /// (exact in modular arithmetic). Inequalities over `atom + k`
    /// with `k ≠ 0` are *not* sound to shift under wrapping (e.g.
    /// `atom + 5 < 3` holds for `atom = −4`), so they are skipped.
    pub fn add_clause(&mut self, c: &Clause) {
        let Some(rhs) = c.rhs.as_imm() else { return };
        let lin = Linear::of_expr(&c.lhs);
        // Only `1·atom + k □ imm` forms produce bounds.
        let Some((atom, k)) = lin.single_atom() else { return };
        if k == 0 {
            self.constrain(*atom, c.rel, rhs);
        } else if c.rel == Rel::Eq {
            self.constrain(*atom, Rel::Eq, rhs.wrapping_sub(k as u64));
        }
    }

    fn constrain(&mut self, atom: Atom, rel: Rel, c: u64) {
        let iv = match rel {
            Rel::Eq => Interval::point(c),
            Rel::Lt => {
                if c == 0 {
                    // Nothing is unsigned-less-than zero.
                    self.unsat = true;
                    return;
                }
                Interval::new(0, c - 1)
            }
            Rel::Ge => Interval::new(c, u64::MAX),
            // Signed comparisons against small non-negative constants
            // bound the unsigned range only when the value is also
            // known non-negative; be conservative and skip.
            Rel::SLt | Rel::SGe | Rel::Ne => return,
        };
        let merged = match self.bounds.get(&atom) {
            Some(old) => match old.meet(iv) {
                Some(m) => m,
                None => {
                    // Disjoint bounds on the same atom: vacuous state.
                    self.unsat = true;
                    return;
                }
            },
            None => iv,
        };
        self.bounds.insert(atom, merged);
    }

    /// True if the mined bounds are contradictory (the clause set has
    /// no satisfying assignment — the state is vacuous and need not be
    /// explored).
    pub fn is_unsat(&self) -> bool {
        self.unsat
    }

    /// The mined interval for an atom, if any.
    pub fn bound_of(&self, atom: &Atom) -> Option<Interval> {
        self.bounds.get(atom).copied()
    }

    /// Interval abstraction of an arbitrary expression: `Some(iv)` if
    /// every atom of its linear form is bounded and the arithmetic does
    /// not overflow; `None` means unbounded/unknown.
    pub fn interval_of(&self, e: &Expr) -> Option<Interval> {
        let lin = Linear::of_expr(e);
        if lin.has_bottom {
            return None;
        }
        let mut acc = Interval::point(lin.offset as u64);
        // Constant-only form: exact.
        for (atom, &coeff) in &lin.terms {
            if coeff <= 0 {
                return None;
            }
            let base = self.bounds.get(atom)?;
            let scaled = base.mul_const(coeff as u64)?;
            acc = Interval {
                lo: acc.lo.checked_add(scaled.lo)?,
                hi: acc.hi.checked_add(scaled.hi)?,
            };
        }
        Some(acc)
    }

    /// Provenance classification of an address expression.
    pub fn provenance(&self, e: &Expr) -> Provenance {
        let lin = Linear::of_expr(e);
        if lin.has_bottom {
            return Provenance::Unknown;
        }
        if lin.terms.is_empty() {
            return Provenance::Global;
        }
        // `rsp0 + k` exactly: the canonical stack-slot shape, decided
        // by the shared single-atom matcher (see `region.rs`).
        if crate::region::rsp0_displacement(&lin).is_some() {
            return Provenance::Stack;
        }
        if lin.terms.len() == 1 {
            let (atom, &coeff) = lin.terms.iter().next().expect("len checked");
            if coeff == 1 {
                if let Atom::Sym(s) = atom {
                    return match s {
                        Sym::Init(_) => Provenance::Param(*s),
                        Sym::Fresh(_) => Provenance::Heap(*s),
                        _ => Provenance::Unknown,
                    };
                }
            }
        }
        // Multi-atom forms rooted in rsp0 (e.g. rsp0 - i*8 with bounded
        // i) still count as stack if rsp0 has coefficient 1.
        if lin.terms.get(&Atom::Sym(Sym::Init(Reg::Rsp))) == Some(&1) {
            return Provenance::Stack;
        }
        // Bounded computed addresses that provably stay inside the
        // binary's image (e.g. a jump-table access `table + i*8` with
        // bounded `i`) are global.
        if let Some(iv) = self.interval_of(e) {
            let in_image = |a: u64| self.layout.is_data(a) || self.layout.is_code(a);
            if in_image(iv.lo) && in_image(iv.hi) && iv.count() < (1 << 32) {
                return Provenance::Global;
            }
        }
        Provenance::Unknown
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rax0() -> Expr {
        Expr::sym(Sym::Init(Reg::Rax))
    }

    #[test]
    fn mines_lt_bound() {
        let c = Clause::new(rax0(), Rel::Lt, Expr::imm(0xc3));
        let ctx = Ctx::from_clauses([&c], Layout::default());
        assert_eq!(ctx.bound_of(&Atom::Sym(Sym::Init(Reg::Rax))), Some(Interval::new(0, 0xc2)));
    }

    #[test]
    fn mines_eq_and_meets() {
        let c1 = Clause::new(rax0(), Rel::Lt, Expr::imm(100));
        let c2 = Clause::new(rax0(), Rel::Ge, Expr::imm(10));
        let ctx = Ctx::from_clauses([&c1, &c2], Layout::default());
        assert_eq!(ctx.bound_of(&Atom::Sym(Sym::Init(Reg::Rax))), Some(Interval::new(10, 99)));
    }

    #[test]
    fn offset_lhs_inequalities_not_mined() {
        // `rax0 + 5 < 10` does NOT bound rax0 under wrapping
        // arithmetic (rax0 = -4 satisfies it), so no interval is mined.
        let c = Clause::new(rax0().add(Expr::imm(5)), Rel::Lt, Expr::imm(10));
        let ctx = Ctx::from_clauses([&c], Layout::default());
        assert_eq!(ctx.bound_of(&Atom::Sym(Sym::Init(Reg::Rax))), None);
        // Offset *equalities* are exact in modular arithmetic and are
        // mined.
        let e = Clause::new(rax0().add(Expr::imm(5)), Rel::Eq, Expr::imm(3));
        let ctx = Ctx::from_clauses([&e], Layout::default());
        assert_eq!(
            ctx.bound_of(&Atom::Sym(Sym::Init(Reg::Rax))),
            Some(Interval::point(3u64.wrapping_sub(5)))
        );
    }

    #[test]
    fn interval_of_scaled() {
        let c = Clause::new(rax0(), Rel::Lt, Expr::imm(0xc3));
        let ctx = Ctx::from_clauses([&c], Layout::default());
        // a + rax0*4 with a = 0x1000
        let e = Expr::imm(0x1000).add(rax0().mul(Expr::imm(4)));
        assert_eq!(ctx.interval_of(&e), Some(Interval::new(0x1000, 0x1000 + 0xc2 * 4)));
    }

    #[test]
    fn interval_of_unbounded_is_none() {
        let ctx = Ctx::new();
        assert_eq!(ctx.interval_of(&rax0()), None);
        assert_eq!(ctx.interval_of(&Expr::imm(7)), Some(Interval::point(7)));
    }

    #[test]
    fn provenance_classes() {
        let ctx = Ctx::new();
        assert_eq!(ctx.provenance(&Expr::sym(Sym::Init(Reg::Rsp)).sub(Expr::imm(8))), Provenance::Stack);
        assert_eq!(ctx.provenance(&Expr::imm(0x601000)), Provenance::Global);
        assert_eq!(
            ctx.provenance(&Expr::sym(Sym::Fresh(3)).add(Expr::imm(16))),
            Provenance::Heap(Sym::Fresh(3))
        );
        assert_eq!(
            ctx.provenance(&Expr::sym(Sym::Init(Reg::Rdi))),
            Provenance::Param(Sym::Init(Reg::Rdi))
        );
        assert_eq!(ctx.provenance(&Expr::bottom()), Provenance::Unknown);
    }

    #[test]
    fn layout_classification() {
        let layout = Layout { text: vec![(0x400000, 0x401000)], data: vec![(0x601000, 0x602000)] };
        assert!(layout.is_code(0x400500));
        assert!(!layout.is_code(0x601500));
        assert!(layout.is_data(0x601500));
    }
}
