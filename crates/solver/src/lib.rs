//! # hgl-solver: pointer-relation decision procedures
//!
//! The paper uses the Z3 SMT solver to establish whether the
//! *necessarily*-relations of Definition 3.6 — aliasing `≡`, separation
//! `⊲⊳` and enclosure `⪯` — hold between two symbolic memory regions
//! under the current predicate. This crate is the offline substitute
//! (see `DESIGN.md`, *Substitutions*): a bespoke decision procedure
//! over the linear normal forms of `hgl-expr`, with
//!
//! - exact offset reasoning when two addresses share a symbolic base
//!   (`rsp0 - 0x28` vs `rsp0 - 0x10`),
//! - interval reasoning from predicate clauses (a jump-table access
//!   `a + i*8` with `i < 0xc3` is separate from `a + 0x618`),
//! - provenance-class reasoning between the stack frame, the
//!   global/data space, the heap and distinct allocations — each use of
//!   which is recorded as an explicit [`Assumption`], mirroring the
//!   paper's generation of implicit-assumption proof obligations
//!   (§5.2).
//!
//! The procedure is deliberately *incomplete*: when nothing can be
//! proven it answers [`RegionRel::Unknown`], and the caller (the memory
//! model's `ins` function) falls back to the paper's
//! destroy-overlapping-regions rule. Incompleteness costs precision,
//! never soundness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assumptions;
mod cache;
mod ctx;
mod region;
mod relation;

/// The crate version, folded into configuration fingerprints: a change
/// to the decision procedures must invalidate persisted artifacts.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

pub use assumptions::{Assumption, AssumptionKind};
pub use cache::{CacheStats, QueryCache, QueryKey};
pub use ctx::{Ctx, Layout, Provenance};
pub use region::{rsp0_displacement, Region};
pub use relation::{decide, Answer, RegionRel};
