//! Memory regions `[address, size]`.

use hgl_expr::{Atom, Expr, Linear, Sym};
use hgl_x86::Reg;
use std::fmt;

/// The displacement `k` when a linear address form is exactly
/// `rsp0 + k` — the canonical "stack slot at a known offset" shape.
///
/// This is the one place that pattern-matches an address against
/// `rsp0`; provenance classification, stack-depth analysis and write
/// classification all go through it instead of re-implementing the
/// single-atom match.
pub fn rsp0_displacement(lin: &Linear) -> Option<i64> {
    match lin.single_atom() {
        Some((Atom::Sym(Sym::Init(Reg::Rsp)), k)) => Some(k),
        _ => None,
    }
}

/// A memory region: a symbolic address expression and a byte size
/// (the `E × N` of the paper's expression grammar). `Copy` now that
/// addresses are interned handles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Region {
    /// Start address (a constant expression).
    pub addr: Expr,
    /// Size in bytes.
    pub size: u64,
}

impl Region {
    /// Construct a region.
    pub fn new(addr: Expr, size: u64) -> Region {
        Region { addr, size }
    }

    /// The region `[rsp0 + offset, size]` in the caller's frame.
    pub fn stack(offset: i64, size: u64) -> Region {
        let rsp0 = Expr::sym(Sym::Init(Reg::Rsp));
        let addr = if offset >= 0 {
            rsp0.add(Expr::imm(offset as u64))
        } else {
            rsp0.sub(Expr::imm(offset.unsigned_abs()))
        };
        Region { addr, size }
    }

    /// The return-address slot `[rsp0, 8]`.
    pub fn return_address_slot() -> Region {
        Region::stack(0, 8)
    }

    /// A region at a concrete (global) address.
    pub fn global(addr: u64, size: u64) -> Region {
        Region { addr: Expr::imm(addr), size }
    }

    /// The linear form of the start address (memoized per interned
    /// address node — see [`Expr::linear_form`]).
    pub fn linear(&self) -> &'static Linear {
        self.addr.linear_form()
    }

    /// The displacement `k` when this region's address is exactly
    /// `rsp0 + k`: the region is a stack slot at a statically known
    /// offset in the frame of the function being analysed. `None` for
    /// global, symbol-rooted, multi-term and unknown addresses.
    ///
    /// Inverse of [`Region::stack`] for all offsets, including
    /// `i64::MIN` (whose negation does not exist in `i64`; the
    /// constructor's `unsigned_abs` and the wrapping linear-form
    /// arithmetic agree on the round trip).
    pub fn displacement_from_rsp0(&self) -> Option<i64> {
        rsp0_displacement(self.linear())
    }

    /// True if the address contains ⊥.
    pub fn is_unknown(&self) -> bool {
        self.addr.is_bottom() || self.linear().has_bottom
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.addr, self.size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_constructor() {
        assert_eq!(Region::stack(-8, 8).to_string(), "[(rsp0 + -0x8), 8]");
        assert_eq!(Region::return_address_slot().to_string(), "[rsp0, 8]");
    }

    #[test]
    fn global_constructor() {
        let r = Region::global(0x601000, 4);
        assert_eq!(r.addr.as_imm(), Some(0x601000));
    }

    #[test]
    fn displacement_roundtrip() {
        for off in [0i64, 8, -8, -0x28, 0x7fff_ffff, -0x8000_0000] {
            assert_eq!(Region::stack(off, 8).displacement_from_rsp0(), Some(off), "offset {off}");
        }
        assert_eq!(Region::global(0x601000, 8).displacement_from_rsp0(), None);
        assert_eq!(Region::new(Expr::bottom(), 8).displacement_from_rsp0(), None);
        // Multi-term stack addresses have no single displacement.
        let multi = Region::new(
            Expr::sym(Sym::Init(Reg::Rsp)).add(Expr::sym(Sym::Init(Reg::Rax))),
            8,
        );
        assert_eq!(multi.displacement_from_rsp0(), None);
    }

    #[test]
    fn displacement_i64_min_edge_case() {
        // `-i64::MIN` does not exist in i64; the constructor uses
        // `unsigned_abs` and the linear form wraps, so the round trip
        // must still hold exactly.
        let r = Region::stack(i64::MIN, 8);
        assert_eq!(r.displacement_from_rsp0(), Some(i64::MIN));
        assert_eq!(r.linear().offset, i64::MIN);
    }
}
