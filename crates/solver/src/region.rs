//! Memory regions `[address, size]`.

use hgl_expr::{Expr, Linear, Sym};
use hgl_x86::Reg;
use std::fmt;

/// A memory region: a symbolic address expression and a byte size
/// (the `E × N` of the paper's expression grammar).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Region {
    /// Start address (a constant expression).
    pub addr: Expr,
    /// Size in bytes.
    pub size: u64,
}

impl Region {
    /// Construct a region.
    pub fn new(addr: Expr, size: u64) -> Region {
        Region { addr, size }
    }

    /// The region `[rsp0 + offset, size]` in the caller's frame.
    pub fn stack(offset: i64, size: u64) -> Region {
        let rsp0 = Expr::sym(Sym::Init(Reg::Rsp));
        let addr = if offset >= 0 {
            rsp0.add(Expr::imm(offset as u64))
        } else {
            rsp0.sub(Expr::imm(offset.unsigned_abs()))
        };
        Region { addr, size }
    }

    /// The return-address slot `[rsp0, 8]`.
    pub fn return_address_slot() -> Region {
        Region::stack(0, 8)
    }

    /// A region at a concrete (global) address.
    pub fn global(addr: u64, size: u64) -> Region {
        Region { addr: Expr::imm(addr), size }
    }

    /// The linear form of the start address.
    pub fn linear(&self) -> Linear {
        Linear::of_expr(&self.addr)
    }

    /// True if the address contains ⊥.
    pub fn is_unknown(&self) -> bool {
        self.addr.is_bottom() || self.linear().has_bottom
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.addr, self.size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_constructor() {
        assert_eq!(Region::stack(-8, 8).to_string(), "[(rsp0 + -0x8), 8]");
        assert_eq!(Region::return_address_slot().to_string(), "[rsp0, 8]");
    }

    #[test]
    fn global_constructor() {
        let r = Region::global(0x601000, 4);
        assert_eq!(r.addr.as_imm(), Some(0x601000));
    }
}
