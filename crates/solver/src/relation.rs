//! The decision procedure for necessarily-relations between regions
//! (Definition 3.6).

use crate::ctx::Provenance;
use crate::{Assumption, AssumptionKind, Ctx, Region};
use hgl_expr::Linear;

/// The decided relation between two regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegionRel {
    /// `r0 ≡ r1`: same start, same size, in every state.
    Alias,
    /// `r0 ⊲⊳ r1`: disjoint in every state.
    Separate,
    /// `r0 ⪯ r1`: `r0` lies within `r1` in every state.
    Enclosed,
    /// `r1 ⪯ r0`.
    Encloses,
    /// Definitely overlapping but not nested (partial overlap): the
    /// caller must destroy, per §1.
    Overlap,
    /// Nothing provable: the caller forks over the possible relations
    /// and keeps a destroyed fallback model.
    Unknown,
}

/// A decision plus the memory-space assumptions it rests on.
///
/// Arithmetic decisions carry no assumptions; provenance-class
/// decisions (stack vs. global, caller pointer vs. frame, …) record
/// one, which the lifter surfaces as a proof obligation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Answer {
    /// The decided relation.
    pub rel: RegionRel,
    /// Assumptions used (empty for arithmetic proofs).
    pub assumptions: Vec<Assumption>,
}

impl Answer {
    fn pure(rel: RegionRel) -> Answer {
        Answer { rel, assumptions: Vec::new() }
    }

    fn assumed(rel: RegionRel, a: Assumption) -> Answer {
        Answer { rel, assumptions: vec![a] }
    }
}

/// Guard against reasoning across 64-bit wraparound: offsets and
/// region extents beyond this magnitude fall back to `Unknown`.
const WRAP_GUARD: i128 = 1 << 62;

/// The signed range of a linear form under the context's atom bounds:
/// `Some((lo, hi))` if every atom is bounded (or the form is constant).
fn signed_range(lin: &Linear, ctx: &Ctx) -> Option<(i128, i128)> {
    if lin.has_bottom {
        return None;
    }
    let mut lo = lin.offset as i128;
    let mut hi = lo;
    for (atom, &coeff) in &lin.terms {
        let b = ctx.bound_of(atom)?;
        // Bounds at or above 2^63 would be negative under a signed
        // reading; refuse rather than misinterpret.
        if b.hi >= 1 << 63 {
            return None;
        }
        let c = coeff as i128;
        let (blo, bhi) = (b.lo as i128, b.hi as i128);
        if c >= 0 {
            lo += c * blo;
            hi += c * bhi;
        } else {
            lo += c * bhi;
            hi += c * blo;
        }
    }
    if lo.abs() >= WRAP_GUARD || hi.abs() >= WRAP_GUARD {
        return None;
    }
    Some((lo, hi))
}

/// Decide the necessarily-relation between `r0` and `r1` under the
/// clause context `ctx`.
///
/// The decision is sound under the no-wraparound guard: region sizes
/// must be modest (the lifter never materialises regions larger than a
/// few KiB) and symbolic offsets within ±2⁶².
///
/// When the context carries a [`QueryCache`](crate::QueryCache)
/// (attached via [`Ctx::with_cache`]), verdicts are memoized under the
/// canonicalized-linear-form key of `cache.rs`; the decision procedure
/// itself is a pure function of that key, so a hit is exact.
///
/// ```
/// use hgl_solver::{decide, Ctx, Region, RegionRel};
///
/// let ctx = Ctx::new();
/// let a = Region::stack(-0x28, 8);
/// let b = Region::stack(-0x10, 8);
/// assert_eq!(decide(&ctx, &a, &b).rel, RegionRel::Separate);
/// assert_eq!(decide(&ctx, &a, &a).rel, RegionRel::Alias);
/// ```
pub fn decide(ctx: &Ctx, r0: &Region, r1: &Region) -> Answer {
    let Some(cache) = &ctx.cache else {
        return decide_uncached(ctx, r0, r1);
    };
    let key = crate::QueryKey::of(ctx, r0, r1);
    match cache.get(&key) {
        Some(hit) => hit,
        None => {
            // Only misses are timed: the decision procedure is where
            // solver time goes, and clocking every hit costs more than
            // the hit itself on the lifting hot path.
            let started = std::time::Instant::now();
            let computed = decide_uncached(ctx, r0, r1);
            cache.add_query_nanos(started.elapsed().as_nanos() as u64);
            cache.insert(key, computed.clone());
            computed
        }
    }
}

/// The memo-free decision procedure; `decide` delegates here on a
/// cache miss (or when no cache is attached).
fn decide_uncached(ctx: &Ctx, r0: &Region, r1: &Region) -> Answer {
    if r0.is_unknown() || r1.is_unknown() {
        return Answer::pure(RegionRel::Unknown);
    }
    let (n0, n1) = (r0.size as i128, r1.size as i128);
    if n0 == 0 || n1 == 0 || n0 >= WRAP_GUARD || n1 >= WRAP_GUARD {
        return Answer::pure(RegionRel::Unknown);
    }

    let l0 = r0.linear();
    let l1 = r1.linear();
    let diff = l0.diff(l1);

    // Arithmetic path: the difference of the two addresses has a known
    // signed range.
    if let Some((dlo, dhi)) = signed_range(&diff, ctx) {
        if dlo == dhi {
            let d = dlo;
            if d == 0 && n0 == n1 {
                return Answer::pure(RegionRel::Alias);
            }
            if d >= n1 || -d >= n0 {
                return Answer::pure(RegionRel::Separate);
            }
            if d >= 0 && d + n0 <= n1 {
                return Answer::pure(RegionRel::Enclosed);
            }
            if d <= 0 && -d + n1 <= n0 {
                return Answer::pure(RegionRel::Encloses);
            }
            return Answer::pure(RegionRel::Overlap);
        }
        // A genuine range: relations must hold for every value in it.
        if dlo >= n1 || dhi <= -n0 {
            return Answer::pure(RegionRel::Separate);
        }
        if dlo >= 0 && dhi + n0 <= n1 {
            return Answer::pure(RegionRel::Enclosed);
        }
        if dhi <= 0 && -dlo + n1 <= n0 {
            return Answer::pure(RegionRel::Encloses);
        }
        // Fall through: ranges straddle; try provenance.
    }

    // Provenance path: different memory spaces are separate by
    // (recorded) assumption.
    let p0 = ctx.provenance(&r0.addr);
    let p1 = ctx.provenance(&r1.addr);
    let assume = |kind| Answer::assumed(RegionRel::Separate, Assumption::new(kind, *r0, *r1));
    match (p0, p1) {
        (Provenance::Stack, Provenance::Global) | (Provenance::Global, Provenance::Stack) => {
            assume(AssumptionKind::StackVsGlobal)
        }
        (Provenance::Stack, Provenance::Heap(_)) | (Provenance::Heap(_), Provenance::Stack) => {
            assume(AssumptionKind::StackVsHeap)
        }
        (Provenance::Global, Provenance::Heap(_)) | (Provenance::Heap(_), Provenance::Global) => {
            assume(AssumptionKind::GlobalVsHeap)
        }
        (Provenance::Heap(a), Provenance::Heap(b)) if a != b => {
            assume(AssumptionKind::DistinctAllocations)
        }
        (Provenance::Param(_), Provenance::Stack) | (Provenance::Stack, Provenance::Param(_)) => {
            assume(AssumptionKind::CallerVsFrame)
        }
        (Provenance::Param(_), Provenance::Global) | (Provenance::Global, Provenance::Param(_)) => {
            assume(AssumptionKind::CallerVsGlobal)
        }
        (Provenance::Param(_), Provenance::Heap(_)) | (Provenance::Heap(_), Provenance::Param(_)) => {
            assume(AssumptionKind::CallerVsFreshAllocation)
        }
        // Two distinct caller pointers (the §2 edi/esi case), same-space
        // pairs that arithmetic could not split, or unknown provenance:
        // nothing provable.
        _ => Answer::pure(RegionRel::Unknown),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgl_expr::{Clause, Expr, Rel, Sym};
    use hgl_x86::Reg;

    fn sym(r: Reg) -> Expr {
        Expr::sym(Sym::Init(r))
    }

    #[test]
    fn same_base_offsets() {
        let ctx = Ctx::new();
        let a = Region::stack(-0x28, 8);
        let b = Region::stack(-0x20, 8);
        assert_eq!(decide(&ctx, &a, &b).rel, RegionRel::Separate);
        assert_eq!(decide(&ctx, &b, &a).rel, RegionRel::Separate);
        assert_eq!(decide(&ctx, &a, &a).rel, RegionRel::Alias);
    }

    #[test]
    fn enclosure_same_base() {
        let ctx = Ctx::new();
        // [rsi0+4, 4] enclosed in [rsi0, 8]  (Example 3.8)
        let inner = Region::new(sym(Reg::Rsi).add(Expr::imm(4)), 4);
        let outer = Region::new(sym(Reg::Rsi), 8);
        assert_eq!(decide(&ctx, &inner, &outer).rel, RegionRel::Enclosed);
        assert_eq!(decide(&ctx, &outer, &inner).rel, RegionRel::Encloses);
        // [rsi0, 4] separate from [rsi0+4, 4]
        let low = Region::new(sym(Reg::Rsi), 4);
        assert_eq!(decide(&ctx, &low, &inner).rel, RegionRel::Separate);
    }

    #[test]
    fn partial_overlap_same_base() {
        let ctx = Ctx::new();
        let a = Region::new(sym(Reg::Rsi), 8);
        let b = Region::new(sym(Reg::Rsi).add(Expr::imm(4)), 8);
        assert_eq!(decide(&ctx, &a, &b).rel, RegionRel::Overlap);
    }

    #[test]
    fn two_params_unknown() {
        // The §2 situation: [edi, 4] vs [esi, 4].
        let ctx = Ctx::new();
        let a = Region::new(sym(Reg::Rdi), 4);
        let b = Region::new(sym(Reg::Rsi), 4);
        let ans = decide(&ctx, &a, &b);
        assert_eq!(ans.rel, RegionRel::Unknown);
        assert!(ans.assumptions.is_empty());
    }

    #[test]
    fn param_vs_stack_assumed_separate() {
        let ctx = Ctx::new();
        let p = Region::new(sym(Reg::Rdi), 8);
        let s = Region::return_address_slot();
        let ans = decide(&ctx, &p, &s);
        assert_eq!(ans.rel, RegionRel::Separate);
        assert_eq!(ans.assumptions.len(), 1);
        assert_eq!(ans.assumptions[0].kind, AssumptionKind::CallerVsFrame);
    }

    #[test]
    fn stack_vs_global_assumed_separate() {
        let ctx = Ctx::new();
        let s = Region::stack(-16, 8);
        let g = Region::global(0x601000, 8);
        let ans = decide(&ctx, &s, &g);
        assert_eq!(ans.rel, RegionRel::Separate);
        assert_eq!(ans.assumptions[0].kind, AssumptionKind::StackVsGlobal);
    }

    #[test]
    fn fresh_allocations_distinct() {
        let ctx = Ctx::new();
        let a = Region::new(Expr::sym(Sym::Fresh(1)), 16);
        let b = Region::new(Expr::sym(Sym::Fresh(2)), 16);
        let ans = decide(&ctx, &a, &b);
        assert_eq!(ans.rel, RegionRel::Separate);
        assert_eq!(ans.assumptions[0].kind, AssumptionKind::DistinctAllocations);
        // Same allocation, same offset: alias.
        assert_eq!(decide(&ctx, &a, &a).rel, RegionRel::Alias);
    }

    #[test]
    fn bounded_jump_table_access() {
        // Jump table at 0x1000 with 0xc3 8-byte entries, index rax0 < 0xc3,
        // vs the cell just past the table.
        let c = Clause::new(sym(Reg::Rax), Rel::Lt, Expr::imm(0xc3));
        let ctx = Ctx::from_clauses([&c], crate::Layout::default());
        let entry = Region::new(Expr::imm(0x1000).add(sym(Reg::Rax).mul(Expr::imm(8))), 8);
        let past = Region::global(0x1000 + 0xc3 * 8, 8);
        assert_eq!(decide(&ctx, &entry, &past).rel, RegionRel::Separate);
        // …but not from a cell inside the table.
        let inside = Region::global(0x1000 + 8, 8);
        assert_eq!(decide(&ctx, &entry, &inside).rel, RegionRel::Unknown);
        // The whole table encloses any entry.
        let table = Region::global(0x1000, 0xc3 * 8);
        assert_eq!(decide(&ctx, &entry, &table).rel, RegionRel::Enclosed);
    }

    #[test]
    fn scaled_stack_array_separate_from_ret_slot() {
        // rsp0 - 0x30 + i*4, i < 4 is separate from [rsp0, 8].
        let c = Clause::new(sym(Reg::Rcx), Rel::Lt, Expr::imm(4));
        let ctx = Ctx::from_clauses([&c], crate::Layout::default());
        let arr = Region::new(
            sym(Reg::Rsp).sub(Expr::imm(0x30)).add(sym(Reg::Rcx).mul(Expr::imm(4))),
            4,
        );
        let ret = Region::return_address_slot();
        assert_eq!(decide(&ctx, &arr, &ret).rel, RegionRel::Separate);
        // Without the bound, the relation is unknown… but both are
        // stack-rooted so provenance cannot help either.
        let ctx2 = Ctx::new();
        assert_eq!(decide(&ctx2, &arr, &ret).rel, RegionRel::Unknown);
    }

    #[test]
    fn unknown_region_is_unknown() {
        let ctx = Ctx::new();
        let a = Region::new(Expr::bottom(), 8);
        let b = Region::return_address_slot();
        assert_eq!(decide(&ctx, &a, &b).rel, RegionRel::Unknown);
    }

    #[test]
    fn zero_sized_regions_unknown() {
        let ctx = Ctx::new();
        let a = Region::stack(0, 0);
        assert_eq!(decide(&ctx, &a, &a).rel, RegionRel::Unknown);
    }
}
