//! Cache soundness: a memoized `decide` must return exactly the
//! verdict the memo-free procedure returns, for every query, in any
//! replay order.
//!
//! The cache key canonicalizes the linear forms of both regions plus
//! the mined bounds of every atom they mention (`cache.rs`); the
//! decision procedure is a pure function of that information, so a
//! cached answer must be bit-identical to a fresh one. This test
//! replays randomized query streams — duplicated and shuffled so the
//! cache serves real hits — through a shared cache and cross-checks
//! every answer against an uncached context.

use hgl_expr::{Clause, Expr, Rel, Sym};
use hgl_solver::{decide, Ctx, Layout, QueryCache, Region};
use hgl_x86::Reg;
use proptest::prelude::*;

fn arb_region() -> impl Strategy<Value = Region> {
    let size = prop_oneof![Just(1u64), Just(2), Just(4), Just(8), Just(16)];
    prop_oneof![
        // Stack slots: the dominant query population in real lifts.
        (-0x200i64..0x40, size.clone()).prop_map(|(off, n)| Region::stack(off, n)),
        // Globals in a small window, so collisions/enclosures happen.
        (0x601000u64..0x601080, size.clone()).prop_map(|(a, n)| Region::global(a, n)),
        // Pointer-parameter based, with an offset.
        (-0x40i64..0x40, size).prop_map(|(off, n)| Region::new(
            Expr::sym(Sym::Init(Reg::Rdi)).add(Expr::imm(off as u64)),
            n,
        )),
    ]
}

/// An optional interval constraint on the `rdi0` parameter symbol,
/// so bound-mining participates in the key.
fn arb_bound() -> impl Strategy<Value = Option<Clause>> {
    prop_oneof![
        Just(None),
        (0x7000_0000u64..0x7000_4000).prop_map(|lo| Some(Clause {
            lhs: Expr::sym(Sym::Init(Reg::Rdi)),
            rel: Rel::Ge,
            rhs: Expr::imm(lo),
        })),
        (0x7000_4000u64..0x7000_8000).prop_map(|hi| Some(Clause {
            lhs: Expr::sym(Sym::Init(Reg::Rdi)),
            rel: Rel::Lt,
            rhs: Expr::imm(hi),
        })),
    ]
}

fn layout() -> Layout {
    Layout { text: vec![(0x401000, 0x402000)], data: vec![(0x601000, 0x602000)] }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Replaying a duplicated, shuffled query stream through one shared
    /// cache yields the same verdict as a cache-free context, query by
    /// query — including queries repeated under *different* clause
    /// contexts, which must not collide.
    #[test]
    fn cached_verdicts_match_uncached_replay(
        queries in proptest::collection::vec((arb_region(), arb_region(), arb_bound()), 1..24),
        dup in 1usize..4,
    ) {
        let cache = std::sync::Arc::new(QueryCache::new());
        for round in 0..dup {
            for (r0, r1, bound) in &queries {
                let clauses: Vec<Clause> = bound.iter().cloned().collect();
                let plain = Ctx::from_clauses(clauses.iter(), layout());
                let cached = Ctx::from_clauses(clauses.iter(), layout())
                    .with_cache(std::sync::Arc::clone(&cache));

                let want = decide(&plain, r0, r1);
                let got = decide(&cached, r0, r1);
                prop_assert_eq!(
                    &got.rel, &want.rel,
                    "round {}: cached relation diverged for {:?} vs {:?} under {:?}",
                    round, r0, r1, bound
                );
                prop_assert_eq!(
                    &got.assumptions, &want.assumptions,
                    "round {}: cached assumptions diverged for {:?} vs {:?}",
                    round, r0, r1
                );
            }
        }
        // After `dup` identical passes the cache must have served hits.
        let stats = cache.stats();
        if dup > 1 {
            prop_assert!(stats.hits > 0, "no hits after {} passes: {:?}", dup, stats);
        }
        prop_assert!(stats.misses > 0);
    }
}

/// The same (r0, r1) pair under different mined bounds must be two
/// distinct cache entries — a collision here would be unsound, not
/// just slow.
#[test]
fn bounds_participate_in_the_cache_key() {
    let cache = std::sync::Arc::new(QueryCache::new());
    let r0 = Region::new(Expr::sym(Sym::Init(Reg::Rdi)), 8);
    let r1 = Region::global(0x601000, 8);

    let unbounded = Ctx::from_clauses([].iter(), layout())
        .with_cache(std::sync::Arc::clone(&cache));
    let first = decide(&unbounded, &r0, &r1);

    // Pin rdi0 to a constant far from the global: the verdict can
    // sharpen, and at minimum the query must MISS, not hit the
    // unbounded entry.
    let pin = Clause { lhs: Expr::sym(Sym::Init(Reg::Rdi)), rel: Rel::Eq, rhs: Expr::imm(0x7000_0000) };
    let clauses = [pin];
    let bounded = Ctx::from_clauses(clauses.iter(), layout())
        .with_cache(std::sync::Arc::clone(&cache));
    let misses_before = cache.stats().misses;
    let second = decide(&bounded, &r0, &r1);
    assert!(
        cache.stats().misses > misses_before,
        "bounded query hit the unbounded entry: keys must include atom bounds"
    );

    // And each cached answer equals its own uncached recomputation.
    assert_eq!(first.rel, decide(&Ctx::from_clauses([].iter(), layout()), &r0, &r1).rel);
    assert_eq!(second.rel, decide(&Ctx::from_clauses(clauses.iter(), layout()), &r0, &r1).rel);
}
