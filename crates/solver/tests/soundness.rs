//! Property tests: every *definite* verdict of the decision procedure
//! must hold in every concrete state satisfying the clause context.
//!
//! For random regions and bounds we draw random symbol assignments that
//! satisfy the mined clauses, evaluate both regions concretely, and
//! check the claimed relation — aliasing, separation or enclosure —
//! against the arithmetic truth. (Assumption-based verdicts are
//! excluded: they are sound *under* the recorded assumption, which is
//! exactly why the lifter surfaces them.)

use hgl_expr::{Clause, Expr, Rel, Sym};
use hgl_solver::{decide, Ctx, Layout, Region, RegionRel};
use hgl_x86::Reg;
use proptest::prelude::*;

/// Concretely evaluate a region.
fn concrete(r: &Region, env: &dyn Fn(Sym) -> u64) -> Option<(u64, u64)> {
    let nomem = |_: u64, _: u8| None;
    Some((r.addr.eval(&|s| env(s), &nomem)?, r.size))
}

fn rel_holds(rel: RegionRel, a: (u64, u64), b: (u64, u64)) -> bool {
    let (a0, n0) = a;
    let (b0, n1) = b;
    match rel {
        RegionRel::Alias => a0 == b0 && n0 == n1,
        RegionRel::Separate => a0.wrapping_add(n0) <= b0 || b0.wrapping_add(n1) <= a0,
        RegionRel::Enclosed => a0 >= b0 && a0.wrapping_add(n0) <= b0.wrapping_add(n1),
        RegionRel::Encloses => b0 >= a0 && b0.wrapping_add(n1) <= a0.wrapping_add(n0),
        RegionRel::Overlap => {
            // Definitely overlapping but not nested: at least overlap.
            !(a0.wrapping_add(n0) <= b0 || b0.wrapping_add(n1) <= a0)
        }
        RegionRel::Unknown => true,
    }
}

fn arb_offset() -> impl Strategy<Value = i64> {
    prop_oneof![-0x80i64..0x80, -0x4000i64..0x4000, Just(0i64)]
}

fn arb_size() -> impl Strategy<Value = u64> {
    prop_oneof![Just(1u64), Just(2), Just(4), Just(8), Just(16), 1u64..64]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1024))]

    /// Same-base regions: arithmetic verdicts are exact.
    #[test]
    fn same_base_verdicts_sound(
        off0 in arb_offset(),
        off1 in arb_offset(),
        n0 in arb_size(),
        n1 in arb_size(),
        base in any::<u64>(),
    ) {
        let r0 = Region::stack(off0, n0);
        let r1 = Region::stack(off1, n1);
        let ans = decide(&Ctx::new(), &r0, &r1);
        prop_assume!(ans.assumptions.is_empty());
        // Keep the base away from wraparound (the lifter's documented
        // no-wrap guard).
        let base = 0x1000_0000 + (base % 0x1_0000_0000);
        let env = move |s: Sym| if s == Sym::Init(Reg::Rsp) { base } else { 0 };
        let a = concrete(&r0, &env).expect("evaluates");
        let b = concrete(&r1, &env).expect("evaluates");
        prop_assert!(
            rel_holds(ans.rel, a, b),
            "verdict {:?} wrong for [{:#x},{}] vs [{:#x},{}]",
            ans.rel, a.0, a.1, b.0, b.1
        );
    }

    /// Bounded-index verdicts hold for every index in the bound.
    #[test]
    fn bounded_index_verdicts_sound(
        table in 0x50_0000u64..0x52_0000,
        bound in 1u64..0x200,
        stride in prop_oneof![Just(1u64), Just(4), Just(8)],
        probe_off in -0x100i64..0x4000,
        n0 in prop_oneof![Just(4u64), Just(8)],
        n1 in prop_oneof![Just(4u64), Just(8)],
        idx_frac in 0.0f64..1.0,
    ) {
        let idx_sym = Sym::Init(Reg::Rax);
        let clause = Clause::new(Expr::sym(idx_sym), Rel::Lt, Expr::imm(bound));
        let layout = Layout { text: vec![], data: vec![(0x50_0000, 0x60_0000)] };
        let ctx = Ctx::from_clauses([&clause], layout);
        let entry = Region::new(
            Expr::imm(table).add(Expr::sym(idx_sym).mul(Expr::imm(stride))),
            n0,
        );
        let probe = Region::global(table.wrapping_add_signed(probe_off), n1);
        let ans = decide(&ctx, &entry, &probe);
        prop_assume!(ans.assumptions.is_empty());
        // Check every feasible index... sampled.
        let idx = ((bound - 1) as f64 * idx_frac) as u64;
        let env = move |s: Sym| if s == idx_sym { idx } else { 0 };
        let a = concrete(&entry, &env).expect("evaluates");
        let b = concrete(&probe, &env).expect("evaluates");
        prop_assert!(
            rel_holds(ans.rel, a, b),
            "verdict {:?} wrong at idx {idx}: [{:#x},{}] vs [{:#x},{}]",
            ans.rel, a.0, a.1, b.0, b.1
        );
    }

    /// Equal-bound checks: Eq clauses give exact points.
    #[test]
    fn point_bound_verdicts_sound(
        point in 0u64..0x100,
        off in -0x40i64..0x40,
        n in prop_oneof![Just(1u64), Just(4), Just(8)],
    ) {
        let s = Sym::Init(Reg::Rcx);
        let clause = Clause::new(Expr::sym(s), Rel::Eq, Expr::imm(point));
        let ctx = Ctx::from_clauses([&clause], Layout::default());
        let base = Expr::imm(0x9000);
        let r0 = Region::new(base.add(Expr::sym(s)), n);
        let r1 = Region::new(base.add(Expr::imm(point).add(Expr::imm(off as u64))), n);
        let ans = decide(&ctx, &r0, &r1);
        prop_assume!(ans.assumptions.is_empty());
        let env = move |sym: Sym| if sym == s { point } else { 0 };
        let a = concrete(&r0, &env).expect("evaluates");
        let b = concrete(&r1, &env).expect("evaluates");
        prop_assert!(rel_holds(ans.rel, a, b), "verdict {:?} at point {point} off {off}", ans.rel);
    }

    /// Interval mining from random clause sets never produces a bound
    /// excluding a satisfying value.
    #[test]
    fn mined_bounds_contain_satisfying_values(
        lo in 0u64..1000,
        width in 1u64..1000,
        v_frac in 0.0f64..1.0,
    ) {
        let hi = lo + width;
        let s = Sym::Init(Reg::Rdx);
        let c1 = Clause::new(Expr::sym(s), Rel::Ge, Expr::imm(lo));
        let c2 = Clause::new(Expr::sym(s), Rel::Lt, Expr::imm(hi));
        let ctx = Ctx::from_clauses([&c1, &c2], Layout::default());
        prop_assert!(!ctx.is_unsat());
        let v = lo + ((width - 1) as f64 * v_frac) as u64;
        let iv = ctx.bound_of(&hgl_expr::Atom::Sym(s)).expect("mined");
        prop_assert!(iv.contains(v), "{iv} must contain {v}");
    }

    /// Contradictory bounds are flagged unsat.
    #[test]
    fn contradictions_detected(a in 0u64..1000, gap in 1u64..1000) {
        let s = Sym::Init(Reg::Rdx);
        // s < a  and  s >= a + gap: unsatisfiable.
        let c1 = Clause::new(Expr::sym(s), Rel::Lt, Expr::imm(a.max(1)));
        let c2 = Clause::new(Expr::sym(s), Rel::Ge, Expr::imm(a.max(1) + gap));
        let ctx = Ctx::from_clauses([&c1, &c2], Layout::default());
        prop_assert!(ctx.is_unsat());
    }
}

/// Assumption-based verdicts list the regions they constrain.
#[test]
fn assumption_verdicts_name_their_regions() {
    let ctx = Ctx::new();
    let p = Region::new(Expr::sym(Sym::Init(Reg::Rdi)), 8);
    let s = Region::return_address_slot();
    let ans = decide(&ctx, &p, &s);
    assert_eq!(ans.rel, RegionRel::Separate);
    assert_eq!(ans.assumptions.len(), 1);
    let a = &ans.assumptions[0];
    assert!((a.r0 == p && a.r1 == s) || (a.r0 == s && a.r1 == p));
}
