//! A hand-rolled binary codec for per-function lift artifacts.
//!
//! Encodes the full [`FnLift`] surface — Hoare Graph, diagnostics,
//! dependency records — into a flat byte vector and back. Design rules:
//!
//! - **Never panic on malformed input.** Every read is bounds-checked
//!   and returns [`CodecError`]; recursion (expressions, memory-model
//!   forests) is depth-limited; collection lengths are validated
//!   against the remaining input before allocating. The whole-payload
//!   checksum in `store.rs` makes these paths unreachable for random
//!   bit flips, but the decoder stands on its own.
//! - **Edges store only `(from, to, instruction address)`.** The
//!   instruction itself is re-decoded from the binary on load — sound
//!   because the store's content hash proves the instruction bytes are
//!   unchanged — which keeps artifacts small and reuses the one
//!   decoder as the single source of instruction semantics.
//! - **Round-tripping is identity** for every artifact the lifter can
//!   produce, pinned by property tests in `tests/roundtrip.rs`.

use hgl_core::budget::BudgetDim;
use hgl_core::diag::{Annotation, ProofObligation, VerificationError};
use hgl_core::graph::{HoareGraph, VertexId};
use hgl_core::lift::{FnLift, RejectReason};
use hgl_core::pred::{FlagState, Pred, RegFile, Shared, SymState};
use hgl_core::{MemModel, MemTree};
use hgl_elf::Binary;
use hgl_expr::{Clause, Expr, ExprKind, OpKind, Rel, Sym};
use hgl_solver::{Assumption, AssumptionKind, Region};
use hgl_x86::{decode, Reg, Width};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Maximum nesting the decoder will follow in recursive structures
/// (expressions, memory-model forests). The lifter's own
/// `max_expr_nodes` keeps real artifacts far below this; the limit
/// exists so crafted input cannot overflow the stack.
const MAX_DEPTH: u32 = 512;

/// A malformed artifact byte stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// Byte offset where decoding failed.
    pub at: usize,
    /// What the decoder expected.
    pub what: &'static str,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed artifact at byte {}: {}", self.at, self.what)
    }
}

impl std::error::Error for CodecError {}

type R<T> = Result<T, CodecError>;

// ---------------------------------------------------------------- writer

/// Byte-stream writer: little-endian scalars, u32-prefixed sequences.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// A fresh writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn len(&mut self, n: usize) {
        // Artifact collections are far below u32::MAX; saturating keeps
        // the writer total (the decoder would reject such a stream
        // against its input length anyway).
        self.u32(u32::try_from(n).unwrap_or(u32::MAX));
    }

    fn str(&mut self, s: &str) {
        self.len(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
}

// ---------------------------------------------------------------- reader

/// Bounds-checked byte-stream reader.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Read from `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// True once every byte has been consumed.
    pub fn at_end(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn fail<T>(&self, what: &'static str) -> R<T> {
        Err(CodecError { at: self.pos, what })
    }

    fn take(&mut self, n: usize) -> R<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|e| *e <= self.buf.len());
        match end {
            Some(end) => {
                let s = &self.buf[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => self.fail("truncated input"),
        }
    }

    fn u8(&mut self) -> R<u8> {
        Ok(self.take(1)?[0])
    }

    fn bool(&mut self) -> R<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => self.fail("boolean"),
        }
    }

    fn u32(&mut self) -> R<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> R<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// A u32 sequence-length prefix, validated against the bytes left:
    /// every element costs at least `min_elem_bytes`, so a length that
    /// could not possibly fit is rejected *before* any allocation.
    fn len(&mut self, min_elem_bytes: usize) -> R<usize> {
        let n = self.u32()? as usize;
        let need = n.checked_mul(min_elem_bytes.max(1));
        if need.is_none_or(|need| need > self.buf.len() - self.pos) {
            return self.fail("oversized sequence length");
        }
        Ok(n)
    }

    fn str(&mut self) -> R<String> {
        let n = self.len(1)?;
        let bytes = self.take(n)?;
        match std::str::from_utf8(bytes) {
            Ok(s) => Ok(s.to_string()),
            Err(_) => self.fail("utf-8 string"),
        }
    }
}

// ------------------------------------------------------------ primitives

fn put_reg(w: &mut Writer, r: Reg) {
    w.u8(r.number());
}

fn get_reg(r: &mut Reader<'_>) -> R<Reg> {
    let n = r.u8()?;
    if n as usize >= Reg::ALL.len() {
        return r.fail("register number");
    }
    Ok(Reg::ALL[n as usize])
}

fn put_width(w: &mut Writer, width: Width) {
    w.u8(width.bytes());
}

fn get_width(r: &mut Reader<'_>) -> R<Width> {
    match r.u8()? {
        1 => Ok(Width::B1),
        2 => Ok(Width::B2),
        4 => Ok(Width::B4),
        8 => Ok(Width::B8),
        _ => r.fail("operand width"),
    }
}

fn put_sym(w: &mut Writer, s: &Sym) {
    match s {
        Sym::Init(reg) => {
            w.u8(0);
            put_reg(w, *reg);
        }
        Sym::RetAddr => w.u8(1),
        Sym::RetSym(a) => {
            w.u8(2);
            w.u64(*a);
        }
        Sym::Fresh(id) => {
            w.u8(3);
            w.u64(*id);
        }
        Sym::Global(a) => {
            w.u8(4);
            w.u64(*a);
        }
    }
}

fn get_sym(r: &mut Reader<'_>) -> R<Sym> {
    match r.u8()? {
        0 => Ok(Sym::Init(get_reg(r)?)),
        1 => Ok(Sym::RetAddr),
        2 => Ok(Sym::RetSym(r.u64()?)),
        3 => Ok(Sym::Fresh(r.u64()?)),
        4 => Ok(Sym::Global(r.u64()?)),
        _ => r.fail("symbol tag"),
    }
}

fn put_op(w: &mut Writer, op: &OpKind) {
    let simple = |w: &mut Writer, t: u8| w.u8(t);
    match op {
        OpKind::Add => simple(w, 0),
        OpKind::Sub => simple(w, 1),
        OpKind::Mul => simple(w, 2),
        OpKind::UDiv => simple(w, 3),
        OpKind::URem => simple(w, 4),
        OpKind::SDiv => simple(w, 5),
        OpKind::SRem => simple(w, 6),
        OpKind::And => simple(w, 7),
        OpKind::Or => simple(w, 8),
        OpKind::Xor => simple(w, 9),
        OpKind::Not => simple(w, 10),
        OpKind::Neg => simple(w, 11),
        OpKind::Shl => simple(w, 12),
        OpKind::Shr => simple(w, 13),
        OpKind::Sar => simple(w, 14),
        OpKind::Popcnt => simple(w, 15),
        OpKind::Tzcnt => simple(w, 16),
        OpKind::Bsf => simple(w, 17),
        OpKind::Bsr => simple(w, 18),
        OpKind::Rol(width) => {
            w.u8(19);
            put_width(w, *width);
        }
        OpKind::Ror(width) => {
            w.u8(20);
            put_width(w, *width);
        }
        OpKind::Trunc(width) => {
            w.u8(21);
            put_width(w, *width);
        }
        OpKind::SExt(width) => {
            w.u8(22);
            put_width(w, *width);
        }
    }
}

fn get_op(r: &mut Reader<'_>) -> R<OpKind> {
    Ok(match r.u8()? {
        0 => OpKind::Add,
        1 => OpKind::Sub,
        2 => OpKind::Mul,
        3 => OpKind::UDiv,
        4 => OpKind::URem,
        5 => OpKind::SDiv,
        6 => OpKind::SRem,
        7 => OpKind::And,
        8 => OpKind::Or,
        9 => OpKind::Xor,
        10 => OpKind::Not,
        11 => OpKind::Neg,
        12 => OpKind::Shl,
        13 => OpKind::Shr,
        14 => OpKind::Sar,
        15 => OpKind::Popcnt,
        16 => OpKind::Tzcnt,
        17 => OpKind::Bsf,
        18 => OpKind::Bsr,
        19 => OpKind::Rol(get_width(r)?),
        20 => OpKind::Ror(get_width(r)?),
        21 => OpKind::Trunc(get_width(r)?),
        22 => OpKind::SExt(get_width(r)?),
        _ => return r.fail("operator tag"),
    })
}

fn put_expr(w: &mut Writer, e: &Expr) {
    match e.kind() {
        ExprKind::Imm(v) => {
            w.u8(0);
            w.u64(*v);
        }
        ExprKind::Sym(s) => {
            w.u8(1);
            put_sym(w, s);
        }
        ExprKind::Deref { addr, size } => {
            w.u8(2);
            w.u8(*size);
            put_expr(w, addr);
        }
        ExprKind::Op { op, args } => {
            w.u8(3);
            put_op(w, op);
            w.len(args.len());
            for a in args {
                put_expr(w, a);
            }
        }
        ExprKind::Bottom => w.u8(4),
    }
}

fn get_expr(r: &mut Reader<'_>, depth: u32) -> R<Expr> {
    if depth > MAX_DEPTH {
        return r.fail("expression nesting too deep");
    }
    Ok(match r.u8()? {
        0 => Expr::imm(r.u64()?),
        1 => Expr::sym(get_sym(r)?),
        2 => {
            let size = r.u8()?;
            // Raw constructor: persisted terms must replay byte-exactly,
            // with no simplification applied on the way back in.
            Expr::deref_raw(get_expr(r, depth + 1)?, size)
        }
        3 => {
            let op = get_op(r)?;
            match r.len(1)? {
                1 => Expr::op1_raw(op, get_expr(r, depth + 1)?),
                2 => {
                    let a = get_expr(r, depth + 1)?;
                    let b = get_expr(r, depth + 1)?;
                    Expr::op2_raw(op, a, b)
                }
                n => {
                    let mut args = Vec::with_capacity(n);
                    for _ in 0..n {
                        args.push(get_expr(r, depth + 1)?);
                    }
                    Expr::op_raw(op, args)
                }
            }
        }
        4 => Expr::bottom(),
        _ => return r.fail("expression tag"),
    })
}

fn put_region(w: &mut Writer, region: &Region) {
    put_expr(w, &region.addr);
    w.u64(region.size);
}

fn get_region(r: &mut Reader<'_>) -> R<Region> {
    let addr = get_expr(r, 0)?;
    let size = r.u64()?;
    Ok(Region { addr, size })
}

fn put_rel(w: &mut Writer, rel: Rel) {
    w.u8(match rel {
        Rel::Eq => 0,
        Rel::Ne => 1,
        Rel::Lt => 2,
        Rel::SLt => 3,
        Rel::Ge => 4,
        Rel::SGe => 5,
    });
}

fn get_rel(r: &mut Reader<'_>) -> R<Rel> {
    Ok(match r.u8()? {
        0 => Rel::Eq,
        1 => Rel::Ne,
        2 => Rel::Lt,
        3 => Rel::SLt,
        4 => Rel::Ge,
        5 => Rel::SGe,
        _ => return r.fail("relation tag"),
    })
}

fn put_clause(w: &mut Writer, c: &Clause) {
    put_expr(w, &c.lhs);
    put_rel(w, c.rel);
    put_expr(w, &c.rhs);
}

fn get_clause(r: &mut Reader<'_>) -> R<Clause> {
    let lhs = get_expr(r, 0)?;
    let rel = get_rel(r)?;
    let rhs = get_expr(r, 0)?;
    Ok(Clause { lhs, rel, rhs })
}

fn put_flags(w: &mut Writer, f: &FlagState) {
    match f {
        FlagState::Unknown => w.u8(0),
        FlagState::Cmp { width, lhs, rhs } => {
            w.u8(1);
            put_width(w, *width);
            put_expr(w, lhs);
            put_expr(w, rhs);
        }
        FlagState::Test { width, lhs, rhs } => {
            w.u8(2);
            put_width(w, *width);
            put_expr(w, lhs);
            put_expr(w, rhs);
        }
        FlagState::Result { width, value } => {
            w.u8(3);
            put_width(w, *width);
            put_expr(w, value);
        }
    }
}

fn get_flags(r: &mut Reader<'_>) -> R<FlagState> {
    Ok(match r.u8()? {
        0 => FlagState::Unknown,
        1 => {
            let width = get_width(r)?;
            FlagState::Cmp { width, lhs: get_expr(r, 0)?, rhs: get_expr(r, 0)? }
        }
        2 => {
            let width = get_width(r)?;
            FlagState::Test { width, lhs: get_expr(r, 0)?, rhs: get_expr(r, 0)? }
        }
        3 => {
            let width = get_width(r)?;
            FlagState::Result { width, value: get_expr(r, 0)? }
        }
        _ => return r.fail("flag-state tag"),
    })
}

fn put_model(w: &mut Writer, m: &MemModel) {
    w.len(m.trees.len());
    for t in &m.trees {
        w.len(t.regions.len());
        for region in &t.regions {
            put_region(w, region);
        }
        put_model(w, &t.children);
    }
}

fn get_model(r: &mut Reader<'_>, depth: u32) -> R<MemModel> {
    if depth > MAX_DEPTH {
        return r.fail("memory-model nesting too deep");
    }
    let n = r.len(1)?;
    let mut trees = Vec::with_capacity(n);
    for _ in 0..n {
        let k = r.len(1)?;
        let mut regions = BTreeSet::new();
        for _ in 0..k {
            regions.insert(get_region(r)?);
        }
        let children = get_model(r, depth + 1)?;
        trees.push(MemTree { regions, children });
    }
    Ok(MemModel { trees })
}

fn put_state(w: &mut Writer, s: &SymState) {
    w.len(s.pred.regs.len());
    for (reg, e) in s.pred.regs.iter() {
        put_reg(w, reg);
        put_expr(w, &e);
    }
    put_flags(w, &s.pred.flags);
    match s.pred.df {
        None => w.u8(0),
        Some(false) => w.u8(1),
        Some(true) => w.u8(2),
    }
    w.len(s.pred.mem.len());
    for (region, e) in &s.pred.mem {
        put_region(w, region);
        put_expr(w, e);
    }
    w.len(s.pred.clauses.len());
    for c in &s.pred.clauses {
        put_clause(w, c);
    }
    put_model(w, &s.model);
}

fn get_state(r: &mut Reader<'_>) -> R<SymState> {
    let mut regs = RegFile::all_bottom();
    for _ in 0..r.len(2)? {
        let reg = get_reg(r)?;
        regs.set(reg, get_expr(r, 0)?);
    }
    let flags = get_flags(r)?;
    let df = match r.u8()? {
        0 => None,
        1 => Some(false),
        2 => Some(true),
        _ => return r.fail("direction-flag tag"),
    };
    let mut mem = BTreeMap::new();
    for _ in 0..r.len(2)? {
        let region = get_region(r)?;
        mem.insert(region, get_expr(r, 0)?);
    }
    let mut clauses = BTreeSet::new();
    for _ in 0..r.len(2)? {
        clauses.insert(get_clause(r)?);
    }
    let model = get_model(r, 0)?;
    Ok(SymState {
        pred: Pred { regs, flags, df, mem: Shared::new(mem), clauses: Shared::new(clauses) },
        model: Shared::new(model),
    })
}

fn put_vid(w: &mut Writer, v: VertexId) {
    match v {
        VertexId::At(a, variant) => {
            w.u8(0);
            w.u64(a);
            w.u32(variant);
        }
        VertexId::Exit => w.u8(1),
    }
}

fn get_vid(r: &mut Reader<'_>) -> R<VertexId> {
    Ok(match r.u8()? {
        0 => {
            let a = r.u64()?;
            VertexId::At(a, r.u32()?)
        }
        1 => VertexId::Exit,
        _ => return r.fail("vertex-id tag"),
    })
}

fn put_dim(w: &mut Writer, d: BudgetDim) {
    w.u8(match d {
        BudgetDim::WallClock => 0,
        BudgetDim::Fuel => 1,
        BudgetDim::SolverQueries => 2,
        BudgetDim::Forks => 3,
        BudgetDim::States => 4,
    });
}

fn get_dim(r: &mut Reader<'_>) -> R<BudgetDim> {
    Ok(match r.u8()? {
        0 => BudgetDim::WallClock,
        1 => BudgetDim::Fuel,
        2 => BudgetDim::SolverQueries,
        3 => BudgetDim::Forks,
        4 => BudgetDim::States,
        _ => return r.fail("budget-dimension tag"),
    })
}

fn put_annotation(w: &mut Writer, a: &Annotation) {
    match a {
        Annotation::UnresolvedJump { addr, target } => {
            w.u8(0);
            w.u64(*addr);
            put_expr(w, target);
        }
        Annotation::UnresolvedCall { addr, target } => {
            w.u8(1);
            w.u64(*addr);
            put_expr(w, target);
        }
        Annotation::BudgetFrontier { addr, dimension } => {
            w.u8(2);
            w.u64(*addr);
            put_dim(w, *dimension);
        }
    }
}

fn get_annotation(r: &mut Reader<'_>) -> R<Annotation> {
    Ok(match r.u8()? {
        0 => {
            let addr = r.u64()?;
            Annotation::UnresolvedJump { addr, target: get_expr(r, 0)? }
        }
        1 => {
            let addr = r.u64()?;
            Annotation::UnresolvedCall { addr, target: get_expr(r, 0)? }
        }
        2 => {
            let addr = r.u64()?;
            Annotation::BudgetFrontier { addr, dimension: get_dim(r)? }
        }
        _ => return r.fail("annotation tag"),
    })
}

fn put_obligation(w: &mut Writer, ob: &ProofObligation) {
    w.u64(ob.call_site);
    w.str(&ob.callee);
    w.len(ob.frame_args.len());
    for (reg, e) in &ob.frame_args {
        put_reg(w, *reg);
        put_expr(w, e);
    }
    w.len(ob.must_preserve.len());
    for region in &ob.must_preserve {
        put_region(w, region);
    }
}

fn get_obligation(r: &mut Reader<'_>) -> R<ProofObligation> {
    let call_site = r.u64()?;
    let callee = r.str()?;
    let mut frame_args = Vec::new();
    for _ in 0..r.len(2)? {
        let reg = get_reg(r)?;
        frame_args.push((reg, get_expr(r, 0)?));
    }
    let mut must_preserve = Vec::new();
    for _ in 0..r.len(2)? {
        must_preserve.push(get_region(r)?);
    }
    Ok(ProofObligation { call_site, callee, frame_args, must_preserve })
}

fn put_assumption(w: &mut Writer, a: &Assumption) {
    w.u8(match a.kind {
        AssumptionKind::StackVsGlobal => 0,
        AssumptionKind::StackVsHeap => 1,
        AssumptionKind::GlobalVsHeap => 2,
        AssumptionKind::DistinctAllocations => 3,
        AssumptionKind::CallerVsFrame => 4,
        AssumptionKind::CallerVsGlobal => 5,
        AssumptionKind::CallerVsFreshAllocation => 6,
    });
    put_region(w, &a.r0);
    put_region(w, &a.r1);
}

fn get_assumption(r: &mut Reader<'_>) -> R<Assumption> {
    let kind = match r.u8()? {
        0 => AssumptionKind::StackVsGlobal,
        1 => AssumptionKind::StackVsHeap,
        2 => AssumptionKind::GlobalVsHeap,
        3 => AssumptionKind::DistinctAllocations,
        4 => AssumptionKind::CallerVsFrame,
        5 => AssumptionKind::CallerVsGlobal,
        6 => AssumptionKind::CallerVsFreshAllocation,
        _ => return r.fail("assumption-kind tag"),
    };
    let r0 = get_region(r)?;
    let r1 = get_region(r)?;
    Ok(Assumption { kind, r0, r1 })
}

fn put_verr(w: &mut Writer, e: &VerificationError) {
    match e {
        VerificationError::UnprovableReturnAddress { addr, found } => {
            w.u8(0);
            w.u64(*addr);
            put_expr(w, found);
        }
        VerificationError::NonStandardStackRestore { addr, rsp } => {
            w.u8(1);
            w.u64(*addr);
            put_expr(w, rsp);
        }
        VerificationError::CallingConventionViolation { addr, reg, found } => {
            w.u8(2);
            w.u64(*addr);
            put_reg(w, *reg);
            put_expr(w, found);
        }
        VerificationError::ReturnAddressClobbered { addr, region } => {
            w.u8(3);
            w.u64(*addr);
            put_region(w, region);
        }
        VerificationError::Undecodable { addr, message } => {
            w.u8(4);
            w.u64(*addr);
            w.str(message);
        }
        VerificationError::JumpOutsideText { addr, target } => {
            w.u8(5);
            w.u64(*addr);
            w.u64(*target);
        }
    }
}

fn get_verr(r: &mut Reader<'_>) -> R<VerificationError> {
    Ok(match r.u8()? {
        0 => {
            let addr = r.u64()?;
            VerificationError::UnprovableReturnAddress { addr, found: get_expr(r, 0)? }
        }
        1 => {
            let addr = r.u64()?;
            VerificationError::NonStandardStackRestore { addr, rsp: get_expr(r, 0)? }
        }
        2 => {
            let addr = r.u64()?;
            let reg = get_reg(r)?;
            VerificationError::CallingConventionViolation { addr, reg, found: get_expr(r, 0)? }
        }
        3 => {
            let addr = r.u64()?;
            VerificationError::ReturnAddressClobbered { addr, region: get_region(r)? }
        }
        4 => {
            let addr = r.u64()?;
            VerificationError::Undecodable { addr, message: r.str()? }
        }
        5 => {
            let addr = r.u64()?;
            VerificationError::JumpOutsideText { addr, target: r.u64()? }
        }
        _ => return r.fail("verification-error tag"),
    })
}

// -------------------------------------------------------------- artifact

/// Encode a full per-function artifact.
pub fn encode_fn_lift(f: &FnLift) -> Vec<u8> {
    let mut w = Writer::new();
    w.u64(f.entry);
    w.bool(f.returns);
    w.u64(f.resolved_indirections as u64);
    w.len(f.extent.len());
    for (a, l) in &f.extent {
        w.u64(*a);
        w.u8(*l);
    }
    w.len(f.image_reads.len());
    for (a, l) in &f.image_reads {
        w.u64(*a);
        w.u8(*l);
    }
    w.len(f.callee_deps.len());
    for (c, consumed) in &f.callee_deps {
        w.u64(*c);
        w.bool(*consumed);
    }
    w.len(f.verification_errors.len());
    for e in &f.verification_errors {
        put_verr(&mut w, e);
    }
    w.len(f.annotations.len());
    for a in &f.annotations {
        put_annotation(&mut w, a);
    }
    w.len(f.obligations.len());
    for ob in &f.obligations {
        put_obligation(&mut w, ob);
    }
    w.len(f.assumptions.len());
    for a in &f.assumptions {
        put_assumption(&mut w, a);
    }
    w.len(f.graph.vertices.len());
    for (vid, v) in &f.graph.vertices {
        put_vid(&mut w, *vid);
        w.bool(v.reachable);
        put_state(&mut w, &v.state);
    }
    w.len(f.graph.edges.len());
    for e in &f.graph.edges {
        put_vid(&mut w, e.from);
        put_vid(&mut w, e.to);
        w.u64(e.instr.addr);
    }
    w.into_bytes()
}

/// Decode a per-function artifact, re-decoding edge instructions from
/// `binary` (sound: the store verified the content hash over the
/// artifact's byte extent before calling this).
pub fn decode_fn_lift(bytes: &[u8], binary: &Binary) -> R<FnLift> {
    let mut r = Reader::new(bytes);
    let entry = r.u64()?;
    let returns = r.bool()?;
    let resolved = r.u64()?;
    let resolved_indirections =
        usize::try_from(resolved).map_err(|_| CodecError { at: 0, what: "indirection count" })?;
    let mut extent = BTreeSet::new();
    for _ in 0..r.len(9)? {
        let a = r.u64()?;
        extent.insert((a, r.u8()?));
    }
    let mut image_reads = BTreeSet::new();
    for _ in 0..r.len(9)? {
        let a = r.u64()?;
        image_reads.insert((a, r.u8()?));
    }
    let mut callee_deps = BTreeMap::new();
    for _ in 0..r.len(9)? {
        let c = r.u64()?;
        callee_deps.insert(c, r.bool()?);
    }
    let mut verification_errors = Vec::new();
    for _ in 0..r.len(9)? {
        verification_errors.push(get_verr(&mut r)?);
    }
    let mut annotations = Vec::new();
    for _ in 0..r.len(9)? {
        annotations.push(get_annotation(&mut r)?);
    }
    let mut obligations = Vec::new();
    for _ in 0..r.len(8)? {
        obligations.push(get_obligation(&mut r)?);
    }
    let mut assumptions = Vec::new();
    for _ in 0..r.len(3)? {
        assumptions.push(get_assumption(&mut r)?);
    }
    let mut graph = HoareGraph::new();
    for _ in 0..r.len(2)? {
        let vid = get_vid(&mut r)?;
        let reachable = r.bool()?;
        let state = get_state(&mut r)?;
        graph.add_vertex(vid, state, reachable);
    }
    // Graphs have several edges per instruction address (one per
    // predicate index), so the re-decode is memoized per address.
    let mut decoded: BTreeMap<u64, hgl_x86::Instr> = BTreeMap::new();
    for _ in 0..r.len(10)? {
        let from = get_vid(&mut r)?;
        let to = get_vid(&mut r)?;
        let addr = r.u64()?;
        let instr = match decoded.get(&addr) {
            Some(i) => i.clone(),
            None => {
                let Some(window) = binary.fetch_window(addr) else {
                    return r.fail("edge instruction outside text");
                };
                let Ok(instr) = decode(window, addr) else {
                    return r.fail("edge instruction undecodable");
                };
                decoded.insert(addr, instr.clone());
                instr
            }
        };
        graph.edges.push(hgl_core::Edge { from, to, instr });
    }
    if !r.at_end() {
        return r.fail("trailing bytes");
    }
    // `CalleeRejected` is intentionally NOT reconstructed here: it is a
    // derived verdict, recomputed at assembly from `callee_deps` so a
    // callee's fate decided in *this* run wins over history.
    let reject = verification_errors.first().map(|e| match e {
        VerificationError::Undecodable { addr, message } => {
            RejectReason::DecodeError { addr: *addr, message: message.clone() }
        }
        other => RejectReason::Verification(other.clone()),
    });
    Ok(FnLift {
        entry,
        graph,
        annotations,
        obligations,
        assumptions,
        verification_errors,
        resolved_indirections,
        extent,
        image_reads,
        callee_deps,
        returns,
        reject,
    })
}
