//! # hgl-store: persistent content-addressed lift store
//!
//! Hoare-Graph extraction is *context-free per function* (§4.2.2 of the
//! paper): a function's artifact — its graph, diagnostics and
//! write-classification inputs — depends only on the instruction bytes
//! it decodes, the image bytes it reads, the lifting configuration, and
//! the binary's segment/external layout. This crate exploits that to
//! make whole-binary re-lifts incremental: artifacts are persisted
//! on disk keyed by content, and a re-lift recomputes only the
//! functions whose inputs actually changed.
//!
//! ```no_run
//! use hgl_core::Lifter;
//! use hgl_store::Store;
//! # let binary: hgl_elf::Binary = unimplemented!();
//!
//! let store = Store::open(".hgl-store")?;
//! let report = Lifter::new(&binary).with_store(&store).lift_all();
//! // Second run: every unchanged function is a store hit.
//! let again = Lifter::new(&binary).with_store(&store).lift_all();
//! assert!(again.metrics.store.expect("store attached").hits > 0);
//! # Ok::<(), std::io::Error>(())
//! ```
//!
//! The module split:
//!
//! - [`store`]: the on-disk [`Store`] — key derivation, content-hash
//!   validation, corruption handling, capacity eviction;
//! - [`codec`]: the panic-free binary codec for the full artifact
//!   surface;
//! - [`sha256`]: a dependency-free SHA-256.
//!
//! See `DESIGN.md` (*Persistent store & incremental lifting*) for the
//! invalidation rules and the soundness argument.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod sha256;
pub mod store;

pub use codec::{decode_fn_lift, encode_fn_lift, CodecError};
pub use store::{Store, StoreOptions};
