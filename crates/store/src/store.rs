//! The on-disk, content-addressed artifact store.
//!
//! # Object keys
//!
//! One object per `(function, configuration, binary context)` triple.
//! The object file name is the hex SHA-256 of
//!
//! ```text
//! "hgl-store-key" ‖ schema version ‖ fingerprint bytes ‖ binctx hash ‖ entry
//! ```
//!
//! where the *fingerprint bytes* are the canonical
//! [`Fingerprint`](hgl_core::Fingerprint) encoding (crate versions plus
//! every lifting knob) and the *binctx hash* digests the binary's
//! segment layout (address, length, permission flags) and its external
//! map — everything that shapes a per-function lift besides the
//! function's own bytes. Symbols are deliberately excluded: they only
//! steer root discovery, never the artifact of a given entry.
//!
//! # Object payload
//!
//! ```text
//! magic ‖ schema version ‖ fingerprint digest ‖ entry
//!       ‖ content hash ‖ artifact blob ‖ SHA-256(everything above)
//! ```
//!
//! The *content hash* digests the bytes the lift actually read from the
//! image (decoded instruction extent plus constant/jump-table reads),
//! so editing any byte the function depends on invalidates exactly the
//! functions that read it. The trailing whole-payload checksum detects
//! every torn write, truncation or bit flip before the decoder runs.
//!
//! # Degradation contract
//!
//! Every failure mode — missing file, bad checksum, version skew,
//! stale content hash, malformed blob, failed `verify` replay — maps to
//! `None` from [`Store::lookup`] (counted as a miss or invalidation),
//! never to a wrong artifact and never to a panic. The engine then
//! simply re-lifts. The fault-injection campaign in
//! `tests/corruption.rs` flips bits at every byte offset and asserts
//! exactly this.

use crate::codec::{decode_fn_lift, encode_fn_lift};
use crate::sha256::{hex, sha256, Sha256};
use hgl_core::lift::FnLift;
use hgl_core::{ArtifactStore, Fingerprint, StoreStats, ARTIFACT_SCHEMA_VERSION};
use hgl_elf::Binary;
use hgl_export::{validate_lift, ValidateConfig};
use std::collections::BTreeSet;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Leading payload magic; the trailing byte is the container version,
/// bumped on any layout change (schema evolution of the *artifact*
/// encoding itself is covered by [`ARTIFACT_SCHEMA_VERSION`]).
const MAGIC: &[u8; 12] = b"hgl-store\x00\x00\x01";

/// Key-derivation domain separator.
const KEY_MAGIC: &[u8] = b"hgl-store-key";

/// Store behaviour knobs.
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Maximum number of objects kept on disk; inserting past the cap
    /// evicts the oldest objects (by modification time). `None` means
    /// unbounded.
    pub capacity: Option<usize>,
    /// Replay every hit through the `hgl-export` differential checker
    /// before returning it (the CLI's `--store-verify`). A replay
    /// counterexample demotes the hit to an invalidation.
    pub verify: bool,
    /// Sampling configuration for `verify` replays.
    pub verify_config: ValidateConfig,
}

impl Default for StoreOptions {
    fn default() -> StoreOptions {
        StoreOptions {
            capacity: None,
            verify: false,
            verify_config: ValidateConfig { samples_per_edge: 4, sample_attempts: 32, seed: 0x5eed },
        }
    }
}

/// A persistent, content-addressed store of per-function lift
/// artifacts rooted at one directory.
pub struct Store {
    dir: PathBuf,
    options: StoreOptions,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
    evictions: AtomicU64,
    inserts: AtomicU64,
    tmp_swept: AtomicU64,
    write_retries: AtomicU64,
    write_failures: AtomicU64,
    /// Per-process sequence for unique temp-file names, so two threads
    /// publishing the same object never share a temp path.
    tmp_seq: AtomicU64,
    /// Test-only fault injection: the next N publish attempts fail as
    /// if the filesystem returned a transient error.
    injected_write_faults: AtomicU64,
}

/// How many times a publish is attempted before being abandoned.
const PUBLISH_ATTEMPTS: u32 = 3;

/// Backoff before retry `n` (1-based): 2ms, then 8ms.
fn publish_backoff(attempt: u32) -> std::time::Duration {
    std::time::Duration::from_millis(2u64 << (2 * (attempt - 1)))
}

impl Store {
    /// Open (creating if needed) a store rooted at `dir`.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Store> {
        Store::open_with(dir, StoreOptions::default())
    }

    /// Open with explicit [`StoreOptions`].
    ///
    /// Opening garbage-collects orphaned temp files: a process that
    /// died between tmp write and rename leaves a `*.tmp*` file behind,
    /// which no surviving process will ever rename. Published `.hgs`
    /// objects are never touched by the sweep. (A temp file belonging
    /// to a *concurrently live* writer in another process could in
    /// principle be swept too; that writer's publish then fails and is
    /// retried or abandoned — degrading to a recompute, never to a
    /// wrong artifact.)
    pub fn open_with(dir: impl AsRef<Path>, options: StoreOptions) -> io::Result<Store> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let swept = sweep_orphaned_tmp(&dir);
        Ok(Store {
            dir,
            options,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            tmp_swept: AtomicU64::new(swept),
            write_retries: AtomicU64::new(0),
            write_failures: AtomicU64::new(0),
            tmp_seq: AtomicU64::new(0),
            injected_write_faults: AtomicU64::new(0),
        })
    }

    /// Arms test-only fault injection: the next `n` publish attempts
    /// fail as if the filesystem returned a transient error (EIO).
    /// Used by the resilience regression tests; a production store
    /// never calls this.
    #[doc(hidden)]
    pub fn inject_write_faults(&self, n: u64) {
        self.injected_write_faults.store(n, Ordering::Relaxed);
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of objects currently on disk (0 if the directory became
    /// unreadable).
    pub fn object_count(&self) -> usize {
        self.objects().len()
    }

    fn objects(&self) -> Vec<PathBuf> {
        let Ok(entries) = std::fs::read_dir(&self.dir) else { return Vec::new() };
        entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "hgs"))
            .collect()
    }

    /// The object path for `(binary, fingerprint, entry)`.
    pub fn object_path(&self, binary: &Binary, fingerprint: &Fingerprint, entry: u64) -> PathBuf {
        let mut h = Sha256::new();
        h.update(KEY_MAGIC);
        h.update(&ARTIFACT_SCHEMA_VERSION.to_le_bytes());
        h.update(fingerprint.bytes());
        h.update(&binctx_hash(binary));
        h.update(&entry.to_le_bytes());
        self.dir.join(format!("{}.hgs", hex(&h.finish())))
    }

    /// Digest the image bytes at the artifact's recorded footprint.
    /// `None` if any recorded range is no longer readable (segment
    /// shrunk or moved) — an invalidation.
    fn content_hash(
        binary: &Binary,
        extent: &BTreeSet<(u64, u8)>,
        image_reads: &BTreeSet<(u64, u8)>,
    ) -> Option<[u8; 32]> {
        let mut h = Sha256::new();
        for (addr, len) in extent.iter().chain(image_reads.iter()) {
            h.update(&addr.to_le_bytes());
            h.update(&[*len]);
            h.update(binary.read(*addr, *len as u64)?);
        }
        Some(h.finish())
    }

    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Evict oldest objects (by mtime) until the count respects the
    /// capacity.
    fn enforce_capacity(&self) {
        let Some(cap) = self.options.capacity else { return };
        let mut objects: Vec<(std::time::SystemTime, PathBuf)> = self
            .objects()
            .into_iter()
            .filter_map(|p| {
                let mtime = std::fs::metadata(&p).and_then(|m| m.modified()).ok()?;
                Some((mtime, p))
            })
            .collect();
        if objects.len() <= cap {
            return;
        }
        objects.sort();
        for (_, path) in objects.iter().take(objects.len() - cap) {
            if std::fs::remove_file(path).is_ok() {
                Self::bump(&self.evictions);
            }
        }
    }
}

/// Removes every `*.tmp*` file under `dir`, returning how many were
/// collected. Valid objects use the `.hgs` extension and are never
/// matched.
fn sweep_orphaned_tmp(dir: &Path) -> u64 {
    let Ok(entries) = std::fs::read_dir(dir) else { return 0 };
    let mut swept = 0;
    for path in entries.filter_map(|e| e.ok()).map(|e| e.path()) {
        let is_tmp = path
            .extension()
            .and_then(|x| x.to_str())
            .is_some_and(|x| x.starts_with("tmp"));
        if is_tmp && std::fs::remove_file(&path).is_ok() {
            swept += 1;
        }
    }
    swept
}

/// Digest of the binary's segment layout and external map — the
/// whole-binary context a per-function artifact depends on.
fn binctx_hash(binary: &Binary) -> [u8; 32] {
    let mut h = Sha256::new();
    for seg in &binary.segments {
        h.update(&seg.vaddr.to_le_bytes());
        h.update(&(seg.bytes.len() as u64).to_le_bytes());
        h.update(&[seg.flags.r as u8, seg.flags.w as u8, seg.flags.x as u8]);
    }
    h.update(&(binary.externals.len() as u64).to_le_bytes());
    for (addr, name) in &binary.externals {
        h.update(&addr.to_le_bytes());
        h.update(&(name.len() as u64).to_le_bytes());
        h.update(name.as_bytes());
    }
    h.finish()
}

impl ArtifactStore for Store {
    fn lookup(&self, binary: &Binary, fingerprint: &Fingerprint, entry: u64) -> Option<FnLift> {
        let path = self.object_path(binary, fingerprint, entry);
        let Ok(payload) = std::fs::read(&path) else {
            Self::bump(&self.misses);
            return None;
        };
        let invalid = || {
            Self::bump(&self.invalidations);
            None
        };
        // 1. Whole-payload checksum: any torn write / truncation / bit
        //    flip fails here, before any structure is interpreted.
        if payload.len() < 32 {
            return invalid();
        }
        let (body, recorded) = payload.split_at(payload.len() - 32);
        if sha256(body) != *<&[u8; 32]>::try_from(recorded).expect("split is 32 bytes") {
            return invalid();
        }
        // 2. Container header: magic, versions, identity.
        let header_len = MAGIC.len() + 4 + 8 + 8 + 32;
        if body.len() < header_len || &body[..MAGIC.len()] != MAGIC {
            return invalid();
        }
        let mut at = MAGIC.len();
        let take = |at: &mut usize, n: usize| {
            let s = &body[*at..*at + n];
            *at += n;
            s
        };
        let schema = u32::from_le_bytes(take(&mut at, 4).try_into().expect("4 bytes"));
        let fp_digest = u64::from_le_bytes(take(&mut at, 8).try_into().expect("8 bytes"));
        let stored_entry = u64::from_le_bytes(take(&mut at, 8).try_into().expect("8 bytes"));
        let recorded_content: [u8; 32] = take(&mut at, 32).try_into().expect("32 bytes");
        if schema != ARTIFACT_SCHEMA_VERSION
            || fp_digest != fingerprint.digest64()
            || stored_entry != entry
        {
            return invalid();
        }
        // 3. Artifact blob (panic-free decoder).
        let Ok(lift) = decode_fn_lift(&body[at..], binary) else {
            return invalid();
        };
        if lift.entry != entry {
            return invalid();
        }
        // 4. Content hash over the *current* binary bytes: the artifact
        //    is valid only if every byte it depends on is unchanged.
        if Self::content_hash(binary, &lift.extent, &lift.image_reads) != Some(recorded_content) {
            return invalid();
        }
        // 5. Optional differential replay (`--store-verify`).
        if self.options.verify {
            let mut result = hgl_core::LiftResult::default();
            result.functions.insert(entry, lift.clone());
            let report = validate_lift(binary, &result, &self.options.verify_config);
            if !report.all_proven() {
                return invalid();
            }
        }
        Self::bump(&self.hits);
        Some(lift)
    }

    fn insert(&self, binary: &Binary, fingerprint: &Fingerprint, lift: &FnLift) {
        // Refuse artifacts we could not re-validate on load.
        let Some(content) = Self::content_hash(binary, &lift.extent, &lift.image_reads) else {
            return;
        };
        if !lift.is_storable() {
            return;
        }
        let mut body = Vec::new();
        body.extend_from_slice(MAGIC);
        body.extend_from_slice(&ARTIFACT_SCHEMA_VERSION.to_le_bytes());
        body.extend_from_slice(&fingerprint.digest64().to_le_bytes());
        body.extend_from_slice(&lift.entry.to_le_bytes());
        body.extend_from_slice(&content);
        body.extend_from_slice(&encode_fn_lift(lift));
        let checksum = sha256(&body);
        body.extend_from_slice(&checksum);

        // Atomic publish: write a temp file, then rename. A concurrent
        // reader sees either the old object or the new one, never a
        // torn write (and a torn temp file fails its checksum anyway).
        // Transient I/O errors (EIO, ENOSPC, a swept temp file) are
        // retried with backoff; a publish that still fails is abandoned
        // silently — the artifact is simply recomputed by the next
        // lift, which is always sound.
        let path = self.object_path(binary, fingerprint, lift.entry);
        let mut ok = false;
        for attempt in 1..=PUBLISH_ATTEMPTS {
            if attempt > 1 {
                Self::bump(&self.write_retries);
                std::thread::sleep(publish_backoff(attempt - 1));
            }
            let seq = self.tmp_seq.fetch_add(1, Ordering::Relaxed);
            let tmp = path.with_extension(format!("tmp{}-{}", std::process::id(), seq));
            let injected = {
                let n = &self.injected_write_faults;
                n.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1))
                    .is_ok()
            };
            if !injected && std::fs::write(&tmp, &body).is_ok() && std::fs::rename(&tmp, &path).is_ok()
            {
                ok = true;
                break;
            }
            let _ = std::fs::remove_file(&tmp);
        }
        if ok {
            Self::bump(&self.inserts);
            self.enforce_capacity();
        } else {
            Self::bump(&self.write_failures);
        }
    }

    fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            tmp_swept: self.tmp_swept.load(Ordering::Relaxed),
            write_retries: self.write_retries.load(Ordering::Relaxed),
            write_failures: self.write_failures.load(Ordering::Relaxed),
        }
    }
}
