//! Store fault-injection campaign: flip bits, truncate objects and
//! skew versions in a populated store, then re-lift. Acceptance is the
//! tentpole's degradation contract — every injected fault degrades to
//! a recompute (a miss or invalidation), the lifted result is
//! byte-identical to a pristine cold lift, and nothing ever panics.
//!
//! 100 bit-flip cases at rng-chosen (object, byte, bit) positions plus
//! deterministic truncation/garbage/version-skew cases, all driven by
//! a fixed seed so failures replay exactly.

use hgl_core::Lifter;
use hgl_corpus::xen::gen_study_binary;
use hgl_export::export_json;
use hgl_store::Store;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};

fn tmpdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("hgl-store-corrupt-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("create temp store dir");
    d
}

fn objects(dir: &Path) -> Vec<PathBuf> {
    let mut v: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("store dir readable")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "hgs"))
        .collect();
    v.sort();
    v
}

/// Run one faulted warm lift and check the contract. Returns the
/// store stats so callers can assert *how* the store degraded.
fn assert_recovers(dir: &Path, binary: &hgl_elf::Binary, pristine: &str, case: &str) {
    let store = Store::open(dir).expect("reopen store");
    let report = Lifter::new(binary).with_store(&store).lift_all();
    assert_eq!(
        export_json(&report.result),
        pristine,
        "case {case}: faulted store changed the lift output"
    );
}

#[test]
fn bit_flip_campaign_100_cases() {
    let dir = tmpdir("flip");
    let binary = gen_study_binary(0x9e37_79b9_7f4a_7c15, false);

    // Populate, and freeze the pristine output.
    let cold = Store::open(&dir).expect("open store");
    let report = Lifter::new(&binary).with_store(&cold).lift_all();
    assert!(report.metrics.store.expect("attached").inserts > 0);
    let pristine = export_json(&report.result);
    let objs = objects(&dir);
    assert!(!objs.is_empty());

    let mut rng = SmallRng::seed_from_u64(0xc0_44_u64);
    for case in 0..100 {
        let path = &objs[rng.gen_range(0..objs.len())];
        let original = std::fs::read(path).expect("read object");
        let mut mutated = original.clone();
        let byte = rng.gen_range(0..mutated.len());
        let bit = rng.gen_range(0..8u32);
        mutated[byte] ^= 1 << bit;
        std::fs::write(path, &mutated).expect("write corrupted object");

        assert_recovers(&dir, &binary, &pristine, &format!("flip #{case} {path:?} byte {byte} bit {bit}"));

        // The faulted object was invalidated and re-inserted by the
        // recovery run: the store heals itself.
        let healed = std::fs::read(path).expect("object still present");
        assert_eq!(healed, original, "flip #{case}: store did not heal the corrupt object");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncation_garbage_and_version_skew() {
    let dir = tmpdir("trunc");
    let binary = gen_study_binary(0x517e_ca5e, true);

    let cold = Store::open(&dir).expect("open store");
    let report = Lifter::new(&binary).with_store(&cold).lift_all();
    let pristine = export_json(&report.result);
    let objs = objects(&dir);
    assert!(objs.len() >= 2, "need a few objects to maul");

    let original: Vec<Vec<u8>> = objs.iter().map(|p| std::fs::read(p).expect("read")).collect();
    let restore = |i: usize| std::fs::write(&objs[i], &original[i]).expect("restore");

    // Truncations at every interesting boundary: empty, mid-magic,
    // mid-header, mid-blob, missing checksum tail.
    for (case, keep) in [0usize, 5, 20, 40].into_iter().enumerate() {
        let trunc: Vec<u8> = original[0].iter().copied().take(keep).collect();
        std::fs::write(&objs[0], &trunc).expect("truncate");
        assert_recovers(&dir, &binary, &pristine, &format!("truncate to {keep} (case {case})"));
        restore(0);
    }
    let keep = original[0].len() - 16; // drop half the trailing checksum
    let trunc: Vec<u8> = original[0][..keep].to_vec();
    std::fs::write(&objs[0], &trunc).expect("truncate");
    assert_recovers(&dir, &binary, &pristine, "truncate checksum tail");
    restore(0);

    // Pure garbage of a plausible size.
    let garbage: Vec<u8> = (0..original[1].len()).map(|i| (i * 37 + 11) as u8).collect();
    std::fs::write(&objs[1], &garbage).expect("garbage");
    assert_recovers(&dir, &binary, &pristine, "garbage object");
    restore(1);

    // Version skew with a *valid* checksum: bump the container schema
    // field and recompute the trailing SHA-256, simulating an object
    // written by a future lifter version. The checksum passes; the
    // header check must still reject it.
    let mut skewed = original[0].clone();
    let schema_at = 12; // after the 12-byte magic
    skewed[schema_at] = skewed[schema_at].wrapping_add(1);
    let body_len = skewed.len() - 32;
    let sum = hgl_store::sha256::sha256(&skewed[..body_len]);
    skewed[body_len..].copy_from_slice(&sum);
    std::fs::write(&objs[0], &skewed).expect("skew");
    let store = Store::open(&dir).expect("reopen");
    let rerun = Lifter::new(&binary).with_store(&store).lift_all();
    assert_eq!(export_json(&rerun.result), pristine, "schema-skewed object changed output");
    let stats = rerun.metrics.store.expect("attached");
    assert!(stats.invalidations >= 1, "skew must surface as an invalidation: {stats:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
