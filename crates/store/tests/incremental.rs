//! Incremental re-lifting end-to-end: warm runs reuse every unchanged
//! artifact, edits invalidate exactly the functions whose inputs
//! changed, and the confirm fixpoint demotes callers whose callee
//! verdicts drifted — the store never changes *what* is computed, only
//! *how much* of it.

use hgl_asm::Asm;
use hgl_core::lift::LiftConfig;
use hgl_core::Lifter;
use hgl_corpus::xen::gen_study_binary;
use hgl_elf::Binary;
use hgl_export::export_json;
use hgl_store::Store;
use hgl_x86::{Instr, Mnemonic, Operand, Reg, Width};
use std::path::PathBuf;

fn tmpdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("hgl-store-test-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("create temp store dir");
    d
}

fn ins(m: Mnemonic, ops: Vec<Operand>, w: Width) -> Instr {
    Instr::new(m, ops, w)
}

/// `main` calls `helper`; `leaf` is an independent exported root;
/// `helper` moves `imm` into eax. All three occupy fixed addresses so
/// two variants differing only in `imm` share every other byte.
fn three_fn_program(imm: i64) -> Binary {
    let mut asm = Asm::new();
    asm.label("main");
    asm.call("helper");
    asm.ins(ins(Mnemonic::Add, vec![Operand::reg64(Reg::Rax), Operand::Imm(1)], Width::B8));
    asm.ret();
    asm.label("leaf");
    asm.ret();
    asm.export("leaf", "leaf");
    asm.label("helper");
    asm.ins(ins(Mnemonic::Mov, vec![Operand::reg(Reg::Rax, Width::B4), Operand::Imm(imm)], Width::B4));
    asm.ret();
    asm.entry("main").assemble().expect("assembles")
}

#[test]
fn warm_rerun_hits_everything_and_is_byte_identical() {
    let dir = tmpdir("warm");
    let binary = gen_study_binary(42, false);

    let cold_store = Store::open(&dir).expect("open store");
    let cold = Lifter::new(&binary).with_store(&cold_store).lift_all();
    let cold_stats = cold.metrics.store.expect("store attached");
    assert!(cold_stats.inserts > 0, "cold run populated the store");
    assert_eq!(cold_stats.hits, 0, "nothing to hit on a cold store");

    // A *fresh* Store instance over the same directory: persistence,
    // not in-memory caching, carries the artifacts.
    let warm_store = Store::open(&dir).expect("reopen store");
    let warm = Lifter::new(&binary).with_store(&warm_store).lift_all();
    let warm_stats = warm.metrics.store.expect("store attached");
    assert_eq!(warm_stats.misses, 0, "warm run missed: {warm_stats:?}");
    assert_eq!(warm_stats.invalidations, 0, "warm run invalidated: {warm_stats:?}");
    assert_eq!(warm_stats.hits, cold_stats.inserts, "every stored artifact was reused");
    assert_eq!(warm_stats.inserts, 0, "nothing re-lifted, nothing re-inserted");

    // The replayed result is byte-identical on the export surface.
    assert_eq!(export_json(&cold.result), export_json(&warm.result));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn changed_byte_invalidates_exactly_the_changed_function() {
    let dir = tmpdir("edit");
    let v1 = three_fn_program(7);
    let v2 = three_fn_program(9);

    let s1 = Store::open(&dir).expect("open store");
    let cold = Lifter::new(&v1).with_store(&s1).lift_all();
    assert_eq!(cold.result.functions.len(), 3);

    let s2 = Store::open(&dir).expect("reopen store");
    let warm = Lifter::new(&v2).with_store(&s2).lift_all();
    let stats = warm.metrics.store.expect("store attached");
    // helper's immediate changed: its artifact fails the content hash
    // (an invalidation). leaf and main still hit — main is then
    // *demoted* by the confirm fixpoint (its callee changed), which by
    // design still counts as a lookup-level hit.
    assert_eq!(stats.invalidations, 1, "exactly the edited function invalidates: {stats:?}");
    assert_eq!(stats.hits, 2, "leaf and main artifacts were still readable: {stats:?}");

    // Correctness: the warm mixed run computes exactly what a
    // store-less cold lift of v2 computes.
    let fresh = Lifter::new(&v2).lift_all();
    assert_eq!(export_json(&warm.result), export_json(&fresh.result));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn config_change_misses_everything() {
    let dir = tmpdir("config");
    let binary = three_fn_program(7);

    let s1 = Store::open(&dir).expect("open store");
    let cold = Lifter::new(&binary).with_store(&s1).lift_all();
    let inserted = cold.metrics.store.expect("store attached").inserts;
    assert!(inserted > 0);

    // Any knob change re-keys every object: old artifacts are not even
    // looked at (different fingerprint, different path) — misses, not
    // invalidations.
    let mut config = LiftConfig::default();
    config.limits.max_states /= 2;
    let s2 = Store::open(&dir).expect("reopen store");
    let warm = Lifter::new(&binary).with_config(config).with_store(&s2).lift_all();
    let stats = warm.metrics.store.expect("store attached");
    assert_eq!(stats.hits, 0, "no artifact of the old config is reusable: {stats:?}");
    assert_eq!(stats.invalidations, 0, "re-keying is a miss, not an invalidation: {stats:?}");
    assert!(stats.misses > 0);
    assert_eq!(s2.object_count(), (inserted + stats.inserts) as usize, "both keyings coexist");
    let _ = std::fs::remove_dir_all(&dir);
}

/// `main` calls `helper`. v1's helper returns; v2's helper (same byte
/// length, same addresses) spins forever. A store holding v1's `main`
/// (which consumed helper's return proof) next to v2's `helper`
/// (returns: false) must NOT replay `main` from cache: the confirm
/// fixpoint sees the consumed-vs-current mismatch and demotes it.
#[test]
fn callee_return_flip_demotes_cached_caller() {
    fn program(returning_helper: bool) -> Binary {
        let mut asm = Asm::new();
        asm.label("main");
        asm.call("helper");
        asm.ret();
        asm.label("helper");
        if returning_helper {
            // nop×4; ret — 5 bytes, provably returns.
            for _ in 0..4 {
                asm.ins(ins(Mnemonic::Nop, vec![], Width::B8));
            }
            asm.ret();
        } else {
            // jmp helper — 5 bytes (e9 rel32), provably never returns.
            asm.jmp("helper");
        }
        asm.entry("main").assemble().expect("assembles")
    }
    let v1 = program(true);
    let v2 = program(false);
    let main = v1.entry;

    let dir1 = tmpdir("flip1");
    let dir2 = tmpdir("flip2");
    let s1 = Store::open(&dir1).expect("open store 1");
    let r1 = Lifter::new(&v1).with_store(&s1).lift_all();
    assert!(r1.result.functions[&main].returns, "v1 main returns");
    let helper = *r1
        .result
        .functions
        .keys()
        .find(|&&a| a != main)
        .expect("helper discovered transitively");
    let s2 = Store::open(&dir2).expect("open store 2");
    let r2 = Lifter::new(&v2).with_store(&s2).lift_all();
    assert!(!r2.result.functions[&main].returns, "v2 main cannot return");

    // Same segment layout and config ⇒ same object key in both stores.
    let fp = hgl_core::Fingerprint::of(&LiftConfig::default());
    let p1 = s1.object_path(&v1, &fp, helper);
    let p2 = s2.object_path(&v2, &fp, helper);
    assert_eq!(p1.file_name(), p2.file_name(), "binctx must match for this test to bite");

    // Graft v2's helper artifact into store 1, next to v1's main.
    std::fs::copy(&p2, &p1).expect("graft helper object");

    let s1b = Store::open(&dir1).expect("reopen store 1");
    let warm = Lifter::new(&v2).with_store(&s1b).lift_all();
    let stats = warm.metrics.store.expect("store attached");
    // Both artifacts are individually valid for v2's bytes (main's
    // bytes never changed), so both hit at lookup level...
    assert_eq!(stats.invalidations, 0, "{stats:?}");
    assert!(stats.hits >= 2, "{stats:?}");
    // ...but main must have been demoted and re-lifted, or this run
    // would wrongly claim main returns.
    assert!(!warm.result.functions[&main].returns, "stale caller artifact replayed!");
    assert_eq!(export_json(&warm.result), export_json(&r2.result));
    let _ = std::fs::remove_dir_all(&dir1);
    let _ = std::fs::remove_dir_all(&dir2);
}

#[test]
fn capacity_evicts_oldest() {
    let dir = tmpdir("cap");
    let binary = three_fn_program(7);
    let store = Store::open_with(
        &dir,
        hgl_store::StoreOptions { capacity: Some(2), ..Default::default() },
    )
    .expect("open store");
    let report = Lifter::new(&binary).with_store(&store).lift_all();
    let stats = report.metrics.store.expect("store attached");
    assert!(stats.inserts > 2, "program has three storable functions");
    assert_eq!(store.object_count(), 2, "capacity enforced");
    assert_eq!(stats.evictions, stats.inserts - 2);
    let _ = std::fs::remove_dir_all(&dir);
}
