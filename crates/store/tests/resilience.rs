//! Store resilience: crash-leftover garbage collection and transient
//! publish failures.
//!
//! The daemon contract (`hgl serve`) leans on two store guarantees:
//!
//! 1. a process that dies between tmp write and rename never poisons
//!    the store — the orphaned temp file is collected at the next
//!    open, without touching valid artifacts;
//! 2. every publish failure (EIO, ENOSPC, a racing sweep) heals to
//!    recompute — transient faults are retried with backoff, and a
//!    persistent fault silently abandons the publish, so the lift
//!    result is identical either way.

use hgl_core::{ArtifactStore, Lifter};
use hgl_corpus::xen::gen_study_binary;
use hgl_store::Store;
use std::path::PathBuf;

fn tmpdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("hgl-store-resil-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("create temp store dir");
    d
}

#[test]
fn startup_sweep_collects_stale_tmp_without_touching_artifacts() {
    let dir = tmpdir("sweep");
    let binary = gen_study_binary(7, false);

    // Populate the store with valid artifacts.
    let store = Store::open(&dir).expect("open store");
    let cold = Lifter::new(&binary).with_store(&store).lift_all();
    let objects = store.object_count();
    assert!(objects > 0, "cold run stored artifacts");

    // Seed crash leftovers: the exact shapes a dying process leaves
    // behind (pid-suffixed, pid+seq-suffixed, and a bare .tmp).
    for name in ["deadbeef.tmp4242", "cafef00d.tmp99-3", "torn.tmp"] {
        std::fs::write(dir.join(name), b"half-written garbage").expect("seed tmp file");
    }

    // Reopening sweeps all three and only the three.
    let reopened = Store::open(&dir).expect("reopen store");
    assert_eq!(reopened.stats().tmp_swept, 3, "every stale tmp file collected");
    assert_eq!(reopened.object_count(), objects, "valid artifacts untouched");
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .expect("read store dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_none_or(|x| x != "hgs"))
        .collect();
    assert!(leftovers.is_empty(), "non-object files remain: {leftovers:?}");

    // And the swept store still replays everything.
    let warm = Lifter::new(&binary).with_store(&reopened).lift_all();
    assert!(warm.metrics.store.expect("store attached").hits > 0);
    assert_eq!(
        format!("{:?}", cold.result.functions),
        format!("{:?}", warm.result.functions),
        "warm replay after sweep is byte-identical"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn transient_publish_faults_are_retried() {
    let dir = tmpdir("retry");
    let binary = gen_study_binary(8, false);

    let store = Store::open(&dir).expect("open store");
    // Fail the first two publish attempts; the retry loop (3 attempts
    // per publish) absorbs both on the very first artifact.
    store.inject_write_faults(2);
    let report = Lifter::new(&binary).with_store(&store).lift_all();
    assert!(report.is_lifted(), "injected publish faults must not affect the lift");

    let stats = report.metrics.store.expect("store attached");
    assert!(stats.write_retries >= 2, "both faults retried: {stats:?}");
    assert_eq!(stats.write_failures, 0, "retries absorbed the faults: {stats:?}");
    assert!(store.object_count() > 0, "artifacts landed despite the faults");

    // The published artifacts are complete: a warm pass hits them all.
    let warm_store = Store::open(&dir).expect("reopen");
    let warm = Lifter::new(&binary).with_store(&warm_store).lift_all();
    assert_eq!(warm.metrics.store.expect("store").misses, 0, "everything published");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn persistent_publish_faults_heal_to_recompute() {
    let dir = tmpdir("persistent");
    let binary = gen_study_binary(9, false);

    // Reference result with no store at all.
    let reference = Lifter::new(&binary).lift_all();

    let store = Store::open(&dir).expect("open store");
    // More faults than any run can retry through: every publish fails.
    store.inject_write_faults(u64::MAX);
    let faulted = Lifter::new(&binary).with_store(&store).lift_all();
    assert!(faulted.is_lifted(), "publish failures are invisible to the caller");
    assert_eq!(
        format!("{:?}", reference.result.functions),
        format!("{:?}", faulted.result.functions),
        "a store that cannot write behaves exactly like no store"
    );
    let stats = faulted.metrics.store.expect("store attached");
    assert!(stats.write_failures > 0, "abandoned publishes counted: {stats:?}");
    assert_eq!(store.object_count(), 0, "nothing half-written on disk");

    // Next run recomputes (all misses) and — faults cleared — persists.
    let healed_store = Store::open(&dir).expect("reopen");
    let healed = Lifter::new(&binary).with_store(&healed_store).lift_all();
    assert!(healed.is_lifted());
    assert!(healed.metrics.store.expect("store").inserts > 0, "healed run persists");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unwritable_store_directory_degrades_to_recompute() {
    // A real (not injected) I/O failure: the store directory vanishes
    // out from under the open store and its path is re-occupied by a
    // regular file, so every tmp write fails with ENOTDIR (the same
    // failure surface as a yanked mount). The lift must be unaffected.
    let dir = tmpdir("yanked");
    let binary = gen_study_binary(10, false);
    let store = Store::open(&dir).expect("open store");

    std::fs::remove_dir_all(&dir).expect("yank store dir");
    std::fs::write(&dir, b"not a directory").expect("occupy store path");

    let report = Lifter::new(&binary).with_store(&store).lift_all();

    assert!(report.is_lifted(), "an unwritable store must not affect the lift");
    let stats = report.metrics.store.expect("store attached");
    assert!(stats.write_failures > 0, "publishes abandoned: {stats:?}");
    assert_eq!(store.object_count(), 0);
    let _ = std::fs::remove_file(&dir);
}
