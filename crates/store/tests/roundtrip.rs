//! Serialisation round-trip properties: `decode(encode(artifact))` is
//! the identity on every artifact the lifter actually produces.
//!
//! `FnLift` deliberately has no `PartialEq` (graphs carry solver
//! state), so identity is asserted through the canonical encoding:
//! re-encoding the decoded artifact must reproduce the original bytes
//! exactly. Because the encoder is deterministic and injective on the
//! stored surface, byte equality implies structural equality of
//! everything the store persists.

use hgl_core::lift::FnLift;
use hgl_core::Lifter;
use hgl_corpus::xen::gen_study_binary;
use hgl_elf::Binary;
use hgl_store::{decode_fn_lift, encode_fn_lift};
use proptest::prelude::*;

/// Round-trip every function of one lifted binary.
fn roundtrip_all(binary: &Binary) -> usize {
    let report = Lifter::new(binary).lift_all();
    let mut checked = 0;
    for f in report.result.functions.values() {
        if !f.is_storable() {
            continue;
        }
        checked += 1;
        roundtrip_one(binary, f);
    }
    checked
}

fn roundtrip_one(binary: &Binary, f: &FnLift) {
    let bytes = encode_fn_lift(f);
    let decoded = decode_fn_lift(&bytes, binary)
        .unwrap_or_else(|e| panic!("decode of fn {:#x} failed: {e}", f.entry));
    assert_eq!(decoded.entry, f.entry);
    assert_eq!(decoded.returns, f.returns);
    assert_eq!(decoded.reject, f.reject, "fn {:#x}", f.entry);
    assert_eq!(decoded.extent, f.extent);
    assert_eq!(decoded.image_reads, f.image_reads);
    assert_eq!(decoded.callee_deps, f.callee_deps);
    assert_eq!(decoded.graph.vertices.len(), f.graph.vertices.len());
    assert_eq!(decoded.graph.edges.len(), f.graph.edges.len());
    // The decisive check: the canonical encoding is a fixpoint.
    assert_eq!(encode_fn_lift(&decoded), bytes, "fn {:#x} re-encode drifted", f.entry);
}

#[test]
fn study_corpus_roundtrips() {
    let mut total = 0;
    for i in 0..4u64 {
        let binary = gen_study_binary(0x9e37_79b9_7f4a_7c15 ^ i, i % 3 == 2);
        total += roundtrip_all(&binary);
    }
    assert!(total >= 8, "expected a real corpus, round-tripped only {total} functions");
}

#[test]
fn rejected_artifacts_roundtrip() {
    // Verification-rejected functions are storable (a negative verdict
    // is as cacheable as a positive one) and must survive the codec
    // with their error list and reject verdict intact.
    for binary in
        [hgl_corpus::failures::stack_probe(), hgl_corpus::failures::callee_saved_clobber()]
    {
        let report = Lifter::new(&binary).lift_all();
        let mut saw_reject = false;
        for f in report.result.functions.values().filter(|f| f.is_storable()) {
            saw_reject |= f.reject.is_some();
            roundtrip_one(&binary, f);
        }
        assert!(saw_reject, "failure corpus binary produced no storable reject");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any seed, library-shaped or not: every storable artifact of the
    /// lifted binary round-trips bit-exactly.
    #[test]
    fn any_seed_roundtrips(seed in any::<u64>(), library in any::<bool>()) {
        let binary = gen_study_binary(seed, library);
        prop_assert!(roundtrip_all(&binary) > 0);
    }

    /// Decoding arbitrary garbage never panics — it returns a codec
    /// error (or, vanishingly rarely, a structurally valid artifact).
    #[test]
    fn decoding_garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let binary = gen_study_binary(1, false);
        let _ = decode_fn_lift(&bytes, &binary);
    }
}
