//! Condition codes for `jcc`, `setcc` and `cmovcc`.

use crate::Flag;
use std::fmt;

/// An x86 condition code (the low nibble of the `jcc`/`setcc`/`cmovcc`
/// opcodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum Cond {
    O,
    No,
    B,
    Ae,
    E,
    Ne,
    Be,
    A,
    S,
    Ns,
    P,
    Np,
    L,
    Ge,
    Le,
    G,
}

impl Cond {
    /// All sixteen condition codes in encoding order.
    pub const ALL: [Cond; 16] = [
        Cond::O,
        Cond::No,
        Cond::B,
        Cond::Ae,
        Cond::E,
        Cond::Ne,
        Cond::Be,
        Cond::A,
        Cond::S,
        Cond::Ns,
        Cond::P,
        Cond::Np,
        Cond::L,
        Cond::Ge,
        Cond::Le,
        Cond::G,
    ];

    /// The encoding nibble (0–15).
    pub const fn number(self) -> u8 {
        self as u8
    }

    /// Inverse of [`Cond::number`].
    ///
    /// # Panics
    ///
    /// Panics if `n > 15`.
    pub fn from_number(n: u8) -> Cond {
        Cond::ALL[n as usize]
    }

    /// The negated condition (`e` ↔ `ne`, `l` ↔ `ge`, …).
    pub fn negate(self) -> Cond {
        Cond::from_number(self.number() ^ 1)
    }

    /// Flags read when evaluating this condition.
    pub fn flags_read(self) -> &'static [Flag] {
        match self {
            Cond::O | Cond::No => &[Flag::Of],
            Cond::B | Cond::Ae => &[Flag::Cf],
            Cond::E | Cond::Ne => &[Flag::Zf],
            Cond::Be | Cond::A => &[Flag::Cf, Flag::Zf],
            Cond::S | Cond::Ns => &[Flag::Sf],
            Cond::P | Cond::Np => &[Flag::Pf],
            Cond::L | Cond::Ge => &[Flag::Sf, Flag::Of],
            Cond::Le | Cond::G => &[Flag::Sf, Flag::Of, Flag::Zf],
        }
    }

    /// Evaluate the condition against concrete flag values.
    pub fn eval(self, cf: bool, pf: bool, zf: bool, sf: bool, of: bool) -> bool {
        match self {
            Cond::O => of,
            Cond::No => !of,
            Cond::B => cf,
            Cond::Ae => !cf,
            Cond::E => zf,
            Cond::Ne => !zf,
            Cond::Be => cf || zf,
            Cond::A => !(cf || zf),
            Cond::S => sf,
            Cond::Ns => !sf,
            Cond::P => pf,
            Cond::Np => !pf,
            Cond::L => sf != of,
            Cond::Ge => sf == of,
            Cond::Le => zf || (sf != of),
            Cond::G => !zf && (sf == of),
        }
    }

    /// Mnemonic suffix (`o`, `b`, `ne`, …).
    pub const fn suffix(self) -> &'static str {
        match self {
            Cond::O => "o",
            Cond::No => "no",
            Cond::B => "b",
            Cond::Ae => "ae",
            Cond::E => "e",
            Cond::Ne => "ne",
            Cond::Be => "be",
            Cond::A => "a",
            Cond::S => "s",
            Cond::Ns => "ns",
            Cond::P => "p",
            Cond::Np => "np",
            Cond::L => "l",
            Cond::Ge => "ge",
            Cond::Le => "le",
            Cond::G => "g",
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.suffix())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn number_roundtrip() {
        for c in Cond::ALL {
            assert_eq!(Cond::from_number(c.number()), c);
        }
    }

    #[test]
    fn negation_is_involution() {
        for c in Cond::ALL {
            assert_eq!(c.negate().negate(), c);
            // A condition and its negation always disagree.
            for bits in 0..32u32 {
                let f = |i: u32| bits >> i & 1 == 1;
                let (cf, pf, zf, sf, of) = (f(0), f(1), f(2), f(3), f(4));
                assert_ne!(c.eval(cf, pf, zf, sf, of), c.negate().eval(cf, pf, zf, sf, of));
            }
        }
    }

    #[test]
    fn signed_conditions() {
        // sf != of  =>  less
        assert!(Cond::L.eval(false, false, false, true, false));
        assert!(Cond::Ge.eval(false, false, false, true, true));
        assert!(Cond::G.eval(false, false, false, false, false));
        assert!(!Cond::G.eval(false, false, true, false, false));
    }

    #[test]
    fn unsigned_conditions() {
        assert!(Cond::B.eval(true, false, false, false, false));
        assert!(Cond::Be.eval(false, false, true, false, false));
        assert!(Cond::A.eval(false, false, false, false, false));
        assert!(!Cond::A.eval(true, false, false, false, false));
    }
}
