//! x86-64 instruction decoder.
//!
//! Implements the paper's `fetch : W64 → I` (Definition 3.1): given the
//! bytes at an address, soundly retrieve a single instruction. The
//! decoder is total over the supported subset and returns a
//! [`DecodeError`] otherwise — the lifter treats undecodable bytes as a
//! verification failure rather than guessing.

use crate::instr::RepPrefix;
use crate::{Cond, Instr, MemOperand, Mnemonic, Operand, Reg, RegRef, Width};
use std::fmt;

/// Errors produced by [`decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The byte buffer ended before the instruction did.
    Truncated,
    /// Instruction exceeded the architectural 15-byte limit.
    TooLong,
    /// An opcode outside the supported subset.
    UnknownOpcode {
        /// The offending opcode byte(s), including a 0x0F escape.
        opcode: Vec<u8>,
    },
    /// A valid opcode with an unsupported ModRM `/r` extension.
    UnknownExtension {
        /// The opcode byte.
        opcode: u8,
        /// The `reg` field of the ModRM byte.
        ext: u8,
    },
    /// A prefix the model does not support (e.g. address-size override).
    UnsupportedPrefix(u8),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "instruction truncated"),
            DecodeError::TooLong => write!(f, "instruction longer than 15 bytes"),
            DecodeError::UnknownOpcode { opcode } => {
                write!(f, "unknown opcode {:02x?}", opcode)
            }
            DecodeError::UnknownExtension { opcode, ext } => {
                write!(f, "unknown extension /{ext} for opcode {opcode:#04x}")
            }
            DecodeError::UnsupportedPrefix(p) => write!(f, "unsupported prefix {p:#04x}"),
        }
    }
}

impl std::error::Error for DecodeError {}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn u8(&mut self) -> Result<u8, DecodeError> {
        let b = *self.bytes.get(self.pos).ok_or(DecodeError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes([self.u8()?, self.u8()?]))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes([self.u8()?, self.u8()?, self.u8()?, self.u8()?]))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        let lo = self.u32()? as u64;
        let hi = self.u32()? as u64;
        Ok(lo | hi << 32)
    }

    /// Read an immediate of `width` (but at most 4 bytes, per the ISA's
    /// imm32 rule), sign-extended to 64 bits.
    fn imm(&mut self, width: Width) -> Result<i64, DecodeError> {
        Ok(match width {
            Width::B1 => self.u8()? as i8 as i64,
            Width::B2 => self.u16()? as i16 as i64,
            Width::B4 | Width::B8 => self.u32()? as i32 as i64,
        })
    }
}

#[derive(Clone, Copy, Default)]
struct Rex {
    present: bool,
    w: bool,
    r: bool,
    x: bool,
    b: bool,
}

struct Prefixes {
    rex: Rex,
    opsize: bool,
    f2: bool,
    f3: bool,
}

impl Prefixes {
    fn width(&self) -> Width {
        if self.rex.w {
            Width::B8
        } else if self.opsize {
            Width::B2
        } else {
            Width::B4
        }
    }
}

fn reg_ref(number: u8, width: Width, rex_present: bool) -> RegRef {
    if width == Width::B1 && !rex_present && (4..8).contains(&number) {
        RegRef::high(Reg::from_number(number - 4))
    } else {
        RegRef::new(Reg::from_number(number), width)
    }
}

/// Decoded ModRM information.
struct ModRm {
    /// The `reg` field (with REX.R applied).
    reg: u8,
    /// The register-or-memory operand.
    rm: Operand,
}

fn parse_modrm(cur: &mut Cursor<'_>, pfx: &Prefixes, width: Width) -> Result<ModRm, DecodeError> {
    let modrm = cur.u8()?;
    let md = modrm >> 6;
    let reg = (modrm >> 3 & 7) | if pfx.rex.r { 8 } else { 0 };
    let rm_bits = modrm & 7;

    if md == 3 {
        let num = rm_bits | if pfx.rex.b { 8 } else { 0 };
        return Ok(ModRm { reg, rm: Operand::Reg(reg_ref(num, width, pfx.rex.present)) });
    }

    let mut base = None;
    let mut index = None;
    let mut scale = 1u8;
    let mut rip_relative = false;
    let mut disp: i64;

    if rm_bits == 4 {
        // SIB byte.
        let sib = cur.u8()?;
        let sib_scale = 1u8 << (sib >> 6);
        let idx_num = (sib >> 3 & 7) | if pfx.rex.x { 8 } else { 0 };
        let base_num = (sib & 7) | if pfx.rex.b { 8 } else { 0 };
        if idx_num != 4 {
            index = Some(Reg::from_number(idx_num));
            scale = sib_scale;
        }
        if sib & 7 == 5 && md == 0 {
            // No base, disp32 follows.
            disp = cur.u32()? as i32 as i64;
        } else {
            base = Some(Reg::from_number(base_num));
            disp = match md {
                0 => 0,
                1 => cur.u8()? as i8 as i64,
                _ => cur.u32()? as i32 as i64,
            };
        }
    } else if rm_bits == 5 && md == 0 {
        // RIP-relative.
        rip_relative = true;
        disp = cur.u32()? as i32 as i64;
    } else {
        base = Some(Reg::from_number(rm_bits | if pfx.rex.b { 8 } else { 0 }));
        disp = match md {
            0 => 0,
            1 => cur.u8()? as i8 as i64,
            _ => cur.u32()? as i32 as i64,
        };
    }
    let _ = &mut disp;
    Ok(ModRm {
        reg,
        rm: Operand::Mem(MemOperand { base, index, scale, disp, size: width, rip_relative }),
    })
}

/// Resize the memory-operand access size of `op` (register operands are
/// re-viewed at `w`; used when the ModRM was parsed at a different width
/// than the operand it describes, e.g. `movzx r32, r/m8`).
fn resize(op: Operand, w: Width, rex_present: bool) -> Operand {
    match op {
        Operand::Mem(mut m) => {
            m.size = w;
            Operand::Mem(m)
        }
        Operand::Reg(r) => {
            if r.width == w {
                Operand::Reg(r)
            } else {
                Operand::Reg(reg_ref(r.reg.number(), w, rex_present || !r.high8))
            }
        }
        imm => imm,
    }
}

/// Decode a single instruction from `bytes` located at virtual address
/// `addr`.
///
/// Relative branch displacements are resolved into absolute targets.
///
/// # Errors
///
/// Returns a [`DecodeError`] if the bytes are truncated, exceed 15
/// bytes, or use an opcode/prefix outside the supported subset.
///
/// ```
/// let i = hgl_x86::decode(&[0xc3], 0x401000)?;
/// assert_eq!(i.mnemonic, hgl_x86::Mnemonic::Ret);
/// # Ok::<(), hgl_x86::DecodeError>(())
/// ```
pub fn decode(bytes: &[u8], addr: u64) -> Result<Instr, DecodeError> {
    let mut cur = Cursor { bytes, pos: 0 };
    let mut pfx = Prefixes { rex: Rex::default(), opsize: false, f2: false, f3: false };

    // Prefix loop. REX must be the final prefix before the opcode.
    let opcode = loop {
        let b = cur.u8()?;
        match b {
            0x66 => pfx.opsize = true,
            0xf2 => pfx.f2 = true,
            0xf3 => pfx.f3 = true,
            0x2e | 0x3e | 0x26 | 0x36 | 0x64 | 0x65 => {} // segment prefixes: ignored hints
            0xf0 => {} // lock: ignored (single-threaded model, §1 scope)
            0x67 => return Err(DecodeError::UnsupportedPrefix(0x67)),
            0x40..=0x4f => {
                pfx.rex = Rex {
                    present: true,
                    w: b & 8 != 0,
                    r: b & 4 != 0,
                    x: b & 2 != 0,
                    b: b & 1 != 0,
                };
                break cur.u8()?;
            }
            _ => break b,
        }
        if cur.pos > 14 {
            return Err(DecodeError::TooLong);
        }
    };

    let mut instr = decode_opcode(&mut cur, &pfx, opcode, addr)?;
    if cur.pos > 15 {
        return Err(DecodeError::TooLong);
    }
    instr.addr = addr;
    instr.len = cur.pos as u8;
    if instr.rep.is_none() {
        instr.rep = if pfx.f3 && is_string_op(instr.mnemonic) {
            Some(RepPrefix::Rep)
        } else if pfx.f2 && is_string_op(instr.mnemonic) {
            Some(RepPrefix::Repne)
        } else {
            None
        };
    }
    Ok(instr)
}

fn is_string_op(m: Mnemonic) -> bool {
    matches!(m, Mnemonic::Movs | Mnemonic::Stos | Mnemonic::Lods | Mnemonic::Scas | Mnemonic::Cmps)
}

const GRP1: [Mnemonic; 8] = [
    Mnemonic::Add,
    Mnemonic::Or,
    Mnemonic::Adc,
    Mnemonic::Sbb,
    Mnemonic::And,
    Mnemonic::Sub,
    Mnemonic::Xor,
    Mnemonic::Cmp,
];

const SHIFT_GRP: [Option<Mnemonic>; 8] = [
    Some(Mnemonic::Rol),
    Some(Mnemonic::Ror),
    Some(Mnemonic::Rcl),
    Some(Mnemonic::Rcr),
    Some(Mnemonic::Shl),
    Some(Mnemonic::Shr),
    Some(Mnemonic::Shl), // /6 is an alias of sal/shl
    Some(Mnemonic::Sar),
];

fn decode_opcode(
    cur: &mut Cursor<'_>,
    pfx: &Prefixes,
    opcode: u8,
    addr: u64,
) -> Result<Instr, DecodeError> {
    let w = pfx.width();
    let mk = |m, ops, width| Instr::new(m, ops, width);

    match opcode {
        // ALU block 0x00-0x3f: add/or/adc/sbb/and/sub/xor/cmp.
        0x00..=0x3f if opcode & 7 <= 5 => {
            let m = GRP1[(opcode >> 3) as usize & 7];
            match opcode & 7 {
                0 => {
                    let mr = parse_modrm(cur, pfx, Width::B1)?;
                    Ok(mk(m, vec![mr.rm, Operand::Reg(reg_ref(mr.reg, Width::B1, pfx.rex.present))], Width::B1))
                }
                1 => {
                    let mr = parse_modrm(cur, pfx, w)?;
                    Ok(mk(m, vec![mr.rm, Operand::Reg(reg_ref(mr.reg, w, pfx.rex.present))], w))
                }
                2 => {
                    let mr = parse_modrm(cur, pfx, Width::B1)?;
                    Ok(mk(m, vec![Operand::Reg(reg_ref(mr.reg, Width::B1, pfx.rex.present)), mr.rm], Width::B1))
                }
                3 => {
                    let mr = parse_modrm(cur, pfx, w)?;
                    Ok(mk(m, vec![Operand::Reg(reg_ref(mr.reg, w, pfx.rex.present)), mr.rm], w))
                }
                4 => {
                    let imm = cur.imm(Width::B1)?;
                    Ok(mk(m, vec![Operand::reg(Reg::Rax, Width::B1), Operand::Imm(imm)], Width::B1))
                }
                5 => {
                    let imm = cur.imm(w)?;
                    Ok(mk(m, vec![Operand::reg(Reg::Rax, w), Operand::Imm(imm)], w))
                }
                _ => Err(DecodeError::UnknownOpcode { opcode: vec![opcode] }),
            }
        }
        0x0f => decode_0f(cur, pfx, addr),
        0x50..=0x57 => {
            let r = (opcode - 0x50) | if pfx.rex.b { 8 } else { 0 };
            Ok(mk(Mnemonic::Push, vec![Operand::reg64(Reg::from_number(r))], Width::B8))
        }
        0x58..=0x5f => {
            let r = (opcode - 0x58) | if pfx.rex.b { 8 } else { 0 };
            Ok(mk(Mnemonic::Pop, vec![Operand::reg64(Reg::from_number(r))], Width::B8))
        }
        0x63 => {
            let mr = parse_modrm(cur, pfx, Width::B4)?;
            let dst = Operand::Reg(reg_ref(mr.reg, Width::B8, pfx.rex.present));
            Ok(mk(Mnemonic::Movsxd, vec![dst, mr.rm], Width::B8))
        }
        0x68 => {
            let imm = cur.imm(Width::B4)?;
            Ok(mk(Mnemonic::Push, vec![Operand::Imm(imm)], Width::B8))
        }
        0x69 | 0x6b => {
            let mr = parse_modrm(cur, pfx, w)?;
            let imm = if opcode == 0x69 { cur.imm(w)? } else { cur.imm(Width::B1)? };
            let dst = Operand::Reg(reg_ref(mr.reg, w, pfx.rex.present));
            Ok(mk(Mnemonic::Imul, vec![dst, mr.rm, Operand::Imm(imm)], w))
        }
        0x6a => {
            let imm = cur.imm(Width::B1)?;
            Ok(mk(Mnemonic::Push, vec![Operand::Imm(imm)], Width::B8))
        }
        0x70..=0x7f => {
            let rel = cur.imm(Width::B1)?;
            let target = addr.wrapping_add(cur.pos as u64).wrapping_add(rel as u64);
            Ok(mk(Mnemonic::Jcc(Cond::from_number(opcode & 0xf)), vec![Operand::Imm(target as i64)], Width::B8))
        }
        0x80 | 0x81 | 0x83 => {
            let opw = if opcode == 0x80 { Width::B1 } else { w };
            let mr = parse_modrm(cur, pfx, opw)?;
            let imm = match opcode {
                0x80 | 0x83 => cur.imm(Width::B1)?,
                _ => cur.imm(opw)?,
            };
            let m = GRP1[(mr.reg & 7) as usize];
            Ok(mk(m, vec![mr.rm, Operand::Imm(imm)], opw))
        }
        0x84 | 0x85 => {
            let opw = if opcode == 0x84 { Width::B1 } else { w };
            let mr = parse_modrm(cur, pfx, opw)?;
            Ok(mk(Mnemonic::Test, vec![mr.rm, Operand::Reg(reg_ref(mr.reg, opw, pfx.rex.present))], opw))
        }
        0x86 | 0x87 => {
            let opw = if opcode == 0x86 { Width::B1 } else { w };
            let mr = parse_modrm(cur, pfx, opw)?;
            Ok(mk(Mnemonic::Xchg, vec![mr.rm, Operand::Reg(reg_ref(mr.reg, opw, pfx.rex.present))], opw))
        }
        0x88 | 0x89 => {
            let opw = if opcode == 0x88 { Width::B1 } else { w };
            let mr = parse_modrm(cur, pfx, opw)?;
            Ok(mk(Mnemonic::Mov, vec![mr.rm, Operand::Reg(reg_ref(mr.reg, opw, pfx.rex.present))], opw))
        }
        0x8a | 0x8b => {
            let opw = if opcode == 0x8a { Width::B1 } else { w };
            let mr = parse_modrm(cur, pfx, opw)?;
            Ok(mk(Mnemonic::Mov, vec![Operand::Reg(reg_ref(mr.reg, opw, pfx.rex.present)), mr.rm], opw))
        }
        0x8d => {
            let mr = parse_modrm(cur, pfx, w)?;
            if !mr.rm.is_mem() {
                return Err(DecodeError::UnknownOpcode { opcode: vec![opcode] });
            }
            Ok(mk(Mnemonic::Lea, vec![Operand::Reg(reg_ref(mr.reg, w, pfx.rex.present)), mr.rm], w))
        }
        0x8f => {
            let mr = parse_modrm(cur, pfx, Width::B8)?;
            if mr.reg & 7 != 0 {
                return Err(DecodeError::UnknownExtension { opcode, ext: mr.reg & 7 });
            }
            Ok(mk(Mnemonic::Pop, vec![mr.rm], Width::B8))
        }
        0x90 => Ok(mk(Mnemonic::Nop, vec![], Width::B8)),
        0x91..=0x97 => {
            let r = (opcode - 0x90) | if pfx.rex.b { 8 } else { 0 };
            Ok(mk(
                Mnemonic::Xchg,
                vec![Operand::reg(Reg::Rax, w), Operand::Reg(reg_ref(r, w, pfx.rex.present))],
                w,
            ))
        }
        0x98 => Ok(match w {
            Width::B2 => mk(Mnemonic::Cbw, vec![], Width::B2),
            Width::B8 => mk(Mnemonic::Cdqe, vec![], Width::B8),
            _ => mk(Mnemonic::Cwde, vec![], Width::B4),
        }),
        0x99 => Ok(match w {
            Width::B2 => mk(Mnemonic::Cwd, vec![], Width::B2),
            Width::B8 => mk(Mnemonic::Cqo, vec![], Width::B8),
            _ => mk(Mnemonic::Cdq, vec![], Width::B4),
        }),
        0xa4 => Ok(mk(Mnemonic::Movs, vec![], Width::B1)),
        0xa5 => Ok(mk(Mnemonic::Movs, vec![], w)),
        0xa6 => Ok(mk(Mnemonic::Cmps, vec![], Width::B1)),
        0xa7 => Ok(mk(Mnemonic::Cmps, vec![], w)),
        0xa8 => {
            let imm = cur.imm(Width::B1)?;
            Ok(mk(Mnemonic::Test, vec![Operand::reg(Reg::Rax, Width::B1), Operand::Imm(imm)], Width::B1))
        }
        0xa9 => {
            let imm = cur.imm(w)?;
            Ok(mk(Mnemonic::Test, vec![Operand::reg(Reg::Rax, w), Operand::Imm(imm)], w))
        }
        0xaa => Ok(mk(Mnemonic::Stos, vec![], Width::B1)),
        0xab => Ok(mk(Mnemonic::Stos, vec![], w)),
        0xac => Ok(mk(Mnemonic::Lods, vec![], Width::B1)),
        0xad => Ok(mk(Mnemonic::Lods, vec![], w)),
        0xae => Ok(mk(Mnemonic::Scas, vec![], Width::B1)),
        0xaf => Ok(mk(Mnemonic::Scas, vec![], w)),
        0xb0..=0xb7 => {
            let r = (opcode - 0xb0) | if pfx.rex.b { 8 } else { 0 };
            let imm = cur.imm(Width::B1)?;
            Ok(mk(Mnemonic::Mov, vec![Operand::Reg(reg_ref(r, Width::B1, pfx.rex.present)), Operand::Imm(imm)], Width::B1))
        }
        0xb8..=0xbf => {
            let r = (opcode - 0xb8) | if pfx.rex.b { 8 } else { 0 };
            if pfx.rex.w {
                let imm = cur.u64()? as i64;
                Ok(mk(Mnemonic::Movabs, vec![Operand::reg64(Reg::from_number(r)), Operand::Imm(imm)], Width::B8))
            } else {
                let imm = match w {
                    Width::B2 => cur.u16()? as i64,
                    _ => cur.u32()? as i64, // mov r32, imm32 zero-extends
                };
                Ok(mk(Mnemonic::Mov, vec![Operand::Reg(reg_ref(r, w, pfx.rex.present)), Operand::Imm(imm)], w))
            }
        }
        0xc0 | 0xc1 | 0xd0 | 0xd1 | 0xd2 | 0xd3 => {
            let opw = if opcode & 1 == 0 { Width::B1 } else { w };
            let mr = parse_modrm(cur, pfx, opw)?;
            let m = SHIFT_GRP[(mr.reg & 7) as usize]
                .ok_or(DecodeError::UnknownExtension { opcode, ext: mr.reg & 7 })?;
            let amount = match opcode {
                0xc0 | 0xc1 => Operand::Imm(cur.imm(Width::B1)? & 0xff),
                0xd0 | 0xd1 => Operand::Imm(1),
                _ => Operand::reg(Reg::Rcx, Width::B1),
            };
            Ok(mk(m, vec![mr.rm, amount], opw))
        }
        0xc2 => {
            let imm = cur.u16()? as i64;
            Ok(mk(Mnemonic::Ret, vec![Operand::Imm(imm)], Width::B8))
        }
        0xc3 => Ok(mk(Mnemonic::Ret, vec![], Width::B8)),
        0xc6 | 0xc7 => {
            let opw = if opcode == 0xc6 { Width::B1 } else { w };
            let mr = parse_modrm(cur, pfx, opw)?;
            if mr.reg & 7 != 0 {
                return Err(DecodeError::UnknownExtension { opcode, ext: mr.reg & 7 });
            }
            let imm = cur.imm(opw)?;
            Ok(mk(Mnemonic::Mov, vec![mr.rm, Operand::Imm(imm)], opw))
        }
        0xc9 => Ok(mk(Mnemonic::Leave, vec![], Width::B8)),
        0xcc => Ok(mk(Mnemonic::Int3, vec![], Width::B8)),
        0xe0..=0xe3 => {
            let rel = cur.imm(Width::B1)?;
            let target = addr.wrapping_add(cur.pos as u64).wrapping_add(rel as u64);
            let m = match opcode {
                0xe0 => Mnemonic::Loopne,
                0xe1 => Mnemonic::Loope,
                0xe2 => Mnemonic::Loop,
                _ => Mnemonic::Jrcxz,
            };
            Ok(mk(m, vec![Operand::Imm(target as i64)], Width::B8))
        }
        0xe8 => {
            let rel = cur.imm(Width::B4)?;
            let target = addr.wrapping_add(cur.pos as u64).wrapping_add(rel as u64);
            Ok(mk(Mnemonic::Call, vec![Operand::Imm(target as i64)], Width::B8))
        }
        0xe9 => {
            let rel = cur.imm(Width::B4)?;
            let target = addr.wrapping_add(cur.pos as u64).wrapping_add(rel as u64);
            Ok(mk(Mnemonic::Jmp, vec![Operand::Imm(target as i64)], Width::B8))
        }
        0xeb => {
            let rel = cur.imm(Width::B1)?;
            let target = addr.wrapping_add(cur.pos as u64).wrapping_add(rel as u64);
            Ok(mk(Mnemonic::Jmp, vec![Operand::Imm(target as i64)], Width::B8))
        }
        0xf4 => Ok(mk(Mnemonic::Hlt, vec![], Width::B8)),
        0xf5 => Ok(mk(Mnemonic::Cmc, vec![], Width::B8)),
        0xf6 | 0xf7 => {
            let opw = if opcode == 0xf6 { Width::B1 } else { w };
            let mr = parse_modrm(cur, pfx, opw)?;
            match mr.reg & 7 {
                0 | 1 => {
                    let imm = if opcode == 0xf6 { cur.imm(Width::B1)? } else { cur.imm(opw)? };
                    Ok(mk(Mnemonic::Test, vec![mr.rm, Operand::Imm(imm)], opw))
                }
                2 => Ok(mk(Mnemonic::Not, vec![mr.rm], opw)),
                3 => Ok(mk(Mnemonic::Neg, vec![mr.rm], opw)),
                4 => Ok(mk(Mnemonic::Mul, vec![mr.rm], opw)),
                5 => Ok(mk(Mnemonic::Imul, vec![mr.rm], opw)),
                6 => Ok(mk(Mnemonic::Div, vec![mr.rm], opw)),
                _ => Ok(mk(Mnemonic::Idiv, vec![mr.rm], opw)),
            }
        }
        0xf8 => Ok(mk(Mnemonic::Clc, vec![], Width::B8)),
        0xf9 => Ok(mk(Mnemonic::Stc, vec![], Width::B8)),
        0xfc => Ok(mk(Mnemonic::Cld, vec![], Width::B8)),
        0xfd => Ok(mk(Mnemonic::Std, vec![], Width::B8)),
        0xfe => {
            let mr = parse_modrm(cur, pfx, Width::B1)?;
            match mr.reg & 7 {
                0 => Ok(mk(Mnemonic::Inc, vec![mr.rm], Width::B1)),
                1 => Ok(mk(Mnemonic::Dec, vec![mr.rm], Width::B1)),
                e => Err(DecodeError::UnknownExtension { opcode, ext: e }),
            }
        }
        0xff => {
            let mr = parse_modrm(cur, pfx, w)?;
            match mr.reg & 7 {
                0 => Ok(mk(Mnemonic::Inc, vec![mr.rm], w)),
                1 => Ok(mk(Mnemonic::Dec, vec![mr.rm], w)),
                2 => Ok(mk(Mnemonic::Call, vec![resize(mr.rm, Width::B8, pfx.rex.present)], Width::B8)),
                4 => Ok(mk(Mnemonic::Jmp, vec![resize(mr.rm, Width::B8, pfx.rex.present)], Width::B8)),
                6 => Ok(mk(Mnemonic::Push, vec![resize(mr.rm, Width::B8, pfx.rex.present)], Width::B8)),
                e => Err(DecodeError::UnknownExtension { opcode, ext: e }),
            }
        }
        _ => Err(DecodeError::UnknownOpcode { opcode: vec![opcode] }),
    }
}

fn decode_0f(cur: &mut Cursor<'_>, pfx: &Prefixes, addr: u64) -> Result<Instr, DecodeError> {
    let w = pfx.width();
    let op2 = cur.u8()?;
    let mk = |m, ops, width| Instr::new(m, ops, width);

    match op2 {
        0x05 => Ok(mk(Mnemonic::Syscall, vec![], Width::B8)),
        0x0b => Ok(mk(Mnemonic::Ud2, vec![], Width::B8)),
        0x1e if pfx.f3 && cur.peek() == Some(0xfa) => {
            cur.u8()?;
            Ok(mk(Mnemonic::Endbr64, vec![], Width::B8))
        }
        0x1f => {
            let mr = parse_modrm(cur, pfx, w)?;
            let _ = mr;
            Ok(mk(Mnemonic::Nop, vec![], w))
        }
        0x31 => Ok(mk(Mnemonic::Rdtsc, vec![], Width::B8)),
        0x40..=0x4f => {
            let mr = parse_modrm(cur, pfx, w)?;
            let dst = Operand::Reg(reg_ref(mr.reg, w, pfx.rex.present));
            Ok(mk(Mnemonic::Cmovcc(Cond::from_number(op2 & 0xf)), vec![dst, mr.rm], w))
        }
        0x80..=0x8f => {
            let rel = cur.imm(Width::B4)?;
            let target = addr.wrapping_add(cur.pos as u64).wrapping_add(rel as u64);
            Ok(mk(Mnemonic::Jcc(Cond::from_number(op2 & 0xf)), vec![Operand::Imm(target as i64)], Width::B8))
        }
        0x90..=0x9f => {
            let mr = parse_modrm(cur, pfx, Width::B1)?;
            Ok(mk(Mnemonic::Setcc(Cond::from_number(op2 & 0xf)), vec![mr.rm], Width::B1))
        }
        0xa2 => Ok(mk(Mnemonic::Cpuid, vec![], Width::B8)),
        0xa3 | 0xab | 0xb3 | 0xbb => {
            let mr = parse_modrm(cur, pfx, w)?;
            let m = match op2 {
                0xa3 => Mnemonic::Bt,
                0xab => Mnemonic::Bts,
                0xb3 => Mnemonic::Btr,
                _ => Mnemonic::Btc,
            };
            Ok(mk(m, vec![mr.rm, Operand::Reg(reg_ref(mr.reg, w, pfx.rex.present))], w))
        }
        0xa4 | 0xac => {
            let mr = parse_modrm(cur, pfx, w)?;
            let imm = cur.imm(Width::B1)?;
            let m = if op2 == 0xa4 { Mnemonic::Shld } else { Mnemonic::Shrd };
            Ok(mk(m, vec![mr.rm, Operand::Reg(reg_ref(mr.reg, w, pfx.rex.present)), Operand::Imm(imm)], w))
        }
        0xa5 | 0xad => {
            let mr = parse_modrm(cur, pfx, w)?;
            let m = if op2 == 0xa5 { Mnemonic::Shld } else { Mnemonic::Shrd };
            Ok(mk(
                m,
                vec![
                    mr.rm,
                    Operand::Reg(reg_ref(mr.reg, w, pfx.rex.present)),
                    Operand::reg(Reg::Rcx, Width::B1),
                ],
                w,
            ))
        }
        0xaf => {
            let mr = parse_modrm(cur, pfx, w)?;
            let dst = Operand::Reg(reg_ref(mr.reg, w, pfx.rex.present));
            Ok(mk(Mnemonic::Imul, vec![dst, mr.rm], w))
        }
        0xb0 | 0xb1 => {
            let opw = if op2 == 0xb0 { Width::B1 } else { w };
            let mr = parse_modrm(cur, pfx, opw)?;
            Ok(mk(Mnemonic::Cmpxchg, vec![mr.rm, Operand::Reg(reg_ref(mr.reg, opw, pfx.rex.present))], opw))
        }
        0xb6 | 0xb7 | 0xbe | 0xbf => {
            let srcw = if op2 & 1 == 0 { Width::B1 } else { Width::B2 };
            let mr = parse_modrm(cur, pfx, srcw)?;
            let dst = Operand::Reg(reg_ref(mr.reg, w, pfx.rex.present));
            let m = if op2 < 0xbe { Mnemonic::Movzx } else { Mnemonic::Movsx };
            Ok(mk(m, vec![dst, mr.rm], w))
        }
        0xb8 if pfx.f3 => {
            let mr = parse_modrm(cur, pfx, w)?;
            let dst = Operand::Reg(reg_ref(mr.reg, w, pfx.rex.present));
            Ok(mk(Mnemonic::Popcnt, vec![dst, mr.rm], w))
        }
        0xba => {
            let mr = parse_modrm(cur, pfx, w)?;
            let m = match mr.reg & 7 {
                4 => Mnemonic::Bt,
                5 => Mnemonic::Bts,
                6 => Mnemonic::Btr,
                7 => Mnemonic::Btc,
                e => return Err(DecodeError::UnknownExtension { opcode: 0xba, ext: e }),
            };
            let imm = cur.imm(Width::B1)?;
            Ok(mk(m, vec![mr.rm, Operand::Imm(imm & 0xff)], w))
        }
        0xbc => {
            let mr = parse_modrm(cur, pfx, w)?;
            let dst = Operand::Reg(reg_ref(mr.reg, w, pfx.rex.present));
            let m = if pfx.f3 { Mnemonic::Tzcnt } else { Mnemonic::Bsf };
            Ok(mk(m, vec![dst, mr.rm], w))
        }
        0xbd => {
            let mr = parse_modrm(cur, pfx, w)?;
            let dst = Operand::Reg(reg_ref(mr.reg, w, pfx.rex.present));
            Ok(mk(Mnemonic::Bsr, vec![dst, mr.rm], w))
        }
        0xc0 | 0xc1 => {
            let opw = if op2 == 0xc0 { Width::B1 } else { w };
            let mr = parse_modrm(cur, pfx, opw)?;
            Ok(mk(Mnemonic::Xadd, vec![mr.rm, Operand::Reg(reg_ref(mr.reg, opw, pfx.rex.present))], opw))
        }
        0xc8..=0xcf => {
            // bswap r32/r64.
            let r = (op2 - 0xc8) | if pfx.rex.b { 8 } else { 0 };
            let bw = if pfx.rex.w { Width::B8 } else { Width::B4 };
            Ok(mk(Mnemonic::Bswap, vec![Operand::Reg(reg_ref(r, bw, pfx.rex.present))], bw))
        }
        _ => Err(DecodeError::UnknownOpcode { opcode: vec![0x0f, op2] }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(bytes: &[u8]) -> Instr {
        decode(bytes, 0x1000).expect("decodes")
    }

    #[test]
    fn mov_reg_reg() {
        let i = d(&[0x48, 0x89, 0xe5]);
        assert_eq!(i.mnemonic, Mnemonic::Mov);
        assert_eq!(i.len, 3);
        assert_eq!(i.operands, vec![Operand::reg64(Reg::Rbp), Operand::reg64(Reg::Rsp)]);
    }

    #[test]
    fn mov_r32_clears_width() {
        // 89 d8 = mov eax, ebx
        let i = d(&[0x89, 0xd8]);
        assert_eq!(i.width, Width::B4);
        assert_eq!(i.operands[0], Operand::reg(Reg::Rax, Width::B4));
    }

    #[test]
    fn rex_extended_regs() {
        // 4d 89 c8 = mov r8, r9
        let i = d(&[0x4d, 0x89, 0xc8]);
        assert_eq!(i.operands, vec![Operand::reg64(Reg::R8), Operand::reg64(Reg::R9)]);
    }

    #[test]
    fn high_byte_regs_without_rex() {
        // 88 e0 = mov al, ah
        let i = d(&[0x88, 0xe0]);
        assert_eq!(i.operands[0], Operand::reg(Reg::Rax, Width::B1));
        assert_eq!(i.operands[1], Operand::Reg(RegRef::high(Reg::Rax)));
    }

    #[test]
    fn spl_with_rex() {
        // 40 88 e0 = mov al, spl
        let i = d(&[0x40, 0x88, 0xe0]);
        assert_eq!(i.operands[1], Operand::reg(Reg::Rsp, Width::B1));
    }

    #[test]
    fn sib_with_scale() {
        // 8b 04 8d 00 100000 = mov eax, [rcx*4 + 0x1000]
        let i = d(&[0x8b, 0x04, 0x8d, 0x00, 0x10, 0x00, 0x00]);
        match &i.operands[1] {
            Operand::Mem(m) => {
                assert_eq!(m.base, None);
                assert_eq!(m.index, Some(Reg::Rcx));
                assert_eq!(m.scale, 4);
                assert_eq!(m.disp, 0x1000);
            }
            other => panic!("expected mem, got {other:?}"),
        }
    }

    #[test]
    fn rip_relative() {
        // 48 8b 05 10 00 00 00 = mov rax, [rip+0x10]
        let i = d(&[0x48, 0x8b, 0x05, 0x10, 0x00, 0x00, 0x00]);
        match &i.operands[1] {
            Operand::Mem(m) => {
                assert!(m.rip_relative);
                assert_eq!(m.disp, 0x10);
            }
            other => panic!("expected mem, got {other:?}"),
        }
    }

    #[test]
    fn jcc_target_resolution() {
        // at 0x1000: 74 05 = je 0x1007
        let i = d(&[0x74, 0x05]);
        assert_eq!(i.mnemonic, Mnemonic::Jcc(Cond::E));
        assert_eq!(i.direct_target(), Some(0x1007));
        // backward: eb fe = jmp self
        let j = d(&[0xeb, 0xfe]);
        assert_eq!(j.direct_target(), Some(0x1000));
    }

    #[test]
    fn call_rel32() {
        // e8 fb 00 00 00 at 0x1000 -> call 0x1100
        let i = d(&[0xe8, 0xfb, 0x00, 0x00, 0x00]);
        assert_eq!(i.mnemonic, Mnemonic::Call);
        assert_eq!(i.direct_target(), Some(0x1100));
    }

    #[test]
    fn indirect_jmp_through_mem() {
        // ff 27 = jmp qword [rdi]  (the §2 example's final instruction)
        let i = d(&[0xff, 0x27]);
        assert_eq!(i.mnemonic, Mnemonic::Jmp);
        assert!(i.is_indirect_branch());
        match &i.operands[0] {
            Operand::Mem(m) => assert_eq!(m.size, Width::B8),
            other => panic!("expected mem, got {other:?}"),
        }
    }

    #[test]
    fn movabs() {
        let i = d(&[0x48, 0xb8, 1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(i.mnemonic, Mnemonic::Movabs);
        assert_eq!(i.operands[1], Operand::Imm(0x0807060504030201));
        assert_eq!(i.len, 10);
    }

    #[test]
    fn group1_imm8_sext() {
        // 48 83 ec 28 = sub rsp, 0x28
        let i = d(&[0x48, 0x83, 0xec, 0x28]);
        assert_eq!(i.mnemonic, Mnemonic::Sub);
        assert_eq!(i.operands, vec![Operand::reg64(Reg::Rsp), Operand::Imm(0x28)]);
        // 48 83 c0 ff = add rax, -1
        let j = d(&[0x48, 0x83, 0xc0, 0xff]);
        assert_eq!(j.operands[1], Operand::Imm(-1));
    }

    #[test]
    fn movzx_widths() {
        // 0f b6 c0 = movzx eax, al
        let i = d(&[0x0f, 0xb6, 0xc0]);
        assert_eq!(i.mnemonic, Mnemonic::Movzx);
        assert_eq!(i.operands[0], Operand::reg(Reg::Rax, Width::B4));
        assert_eq!(i.operands[1], Operand::reg(Reg::Rax, Width::B1));
    }

    #[test]
    fn endbr64() {
        let i = d(&[0xf3, 0x0f, 0x1e, 0xfa]);
        assert_eq!(i.mnemonic, Mnemonic::Endbr64);
        assert_eq!(i.len, 4);
    }

    #[test]
    fn rep_stosq() {
        let i = d(&[0xf3, 0x48, 0xab]);
        assert_eq!(i.mnemonic, Mnemonic::Stos);
        assert_eq!(i.width, Width::B8);
        assert_eq!(i.rep, Some(RepPrefix::Rep));
    }

    #[test]
    fn ret_is_c3() {
        let i = d(&[0xc3]);
        assert_eq!(i.mnemonic, Mnemonic::Ret);
        assert_eq!(i.len, 1);
    }

    #[test]
    fn shift_group() {
        // 48 c1 e0 04 = shl rax, 4
        let i = d(&[0x48, 0xc1, 0xe0, 0x04]);
        assert_eq!(i.mnemonic, Mnemonic::Shl);
        assert_eq!(i.operands[1], Operand::Imm(4));
        // 48 d3 f8 = sar rax, cl
        let j = d(&[0x48, 0xd3, 0xf8]);
        assert_eq!(j.mnemonic, Mnemonic::Sar);
        assert_eq!(j.operands[1], Operand::reg(Reg::Rcx, Width::B1));
    }

    #[test]
    fn leave_and_multibyte_nop() {
        assert_eq!(d(&[0xc9]).mnemonic, Mnemonic::Leave);
        let nop = d(&[0x0f, 0x1f, 0x44, 0x00, 0x00]);
        assert_eq!(nop.mnemonic, Mnemonic::Nop);
        assert_eq!(nop.len, 5);
    }

    #[test]
    fn truncated_and_unknown() {
        assert_eq!(decode(&[0x48], 0), Err(DecodeError::Truncated));
        assert!(matches!(decode(&[0x0f, 0xff], 0), Err(DecodeError::UnknownOpcode { .. })));
        assert_eq!(decode(&[0x67, 0x8b, 0x00], 0), Err(DecodeError::UnsupportedPrefix(0x67)));
    }

    #[test]
    fn mov_mem_imm_sizes() {
        // c7 06 01 00 00 00 = mov dword [rsi], 1   (the §2 example's 4th instr)
        let i = d(&[0xc7, 0x06, 0x01, 0x00, 0x00, 0x00]);
        assert_eq!(i.mnemonic, Mnemonic::Mov);
        assert_eq!(i.width, Width::B4);
        match &i.operands[0] {
            Operand::Mem(m) => {
                assert_eq!(m.base, Some(Reg::Rsi));
                assert_eq!(m.size, Width::B4);
            }
            other => panic!("expected mem, got {other:?}"),
        }
        assert_eq!(i.operands[1], Operand::Imm(1));
    }

    #[test]
    fn group3_div() {
        // 48 f7 f1 = div rcx
        let i = d(&[0x48, 0xf7, 0xf1]);
        assert_eq!(i.mnemonic, Mnemonic::Div);
        assert_eq!(i.operands, vec![Operand::reg64(Reg::Rcx)]);
    }

    #[test]
    fn rbp_base_needs_disp() {
        // 8b 45 00 = mov eax, [rbp+0]
        let i = d(&[0x8b, 0x45, 0x00]);
        match &i.operands[1] {
            Operand::Mem(m) => {
                assert_eq!(m.base, Some(Reg::Rbp));
                assert_eq!(m.disp, 0);
            }
            other => panic!("expected mem, got {other:?}"),
        }
    }

    #[test]
    fn r12_base_uses_sib() {
        // 49 8b 04 24 = mov rax, [r12]
        let i = d(&[0x49, 0x8b, 0x04, 0x24]);
        match &i.operands[1] {
            Operand::Mem(m) => {
                assert_eq!(m.base, Some(Reg::R12));
                assert_eq!(m.index, None);
            }
            other => panic!("expected mem, got {other:?}"),
        }
    }

    #[test]
    fn r13_base_mod0_is_disp() {
        // 49 8b 45 00 = mov rax, [r13+0]
        let i = d(&[0x49, 0x8b, 0x45, 0x00]);
        match &i.operands[1] {
            Operand::Mem(m) => assert_eq!(m.base, Some(Reg::R13)),
            other => panic!("expected mem, got {other:?}"),
        }
    }
}
