//! x86-64 instruction decoder.
//!
//! Implements the paper's `fetch : W64 → I` (Definition 3.1): given the
//! bytes at an address, soundly retrieve a single instruction. The
//! decoder is total over the supported subset and returns a
//! [`DecodeError`] otherwise — the lifter treats undecodable bytes as a
//! verification failure rather than guessing.

use crate::instr::RepPrefix;
use crate::{Cond, Instr, MemOperand, Mnemonic, Operand, Reg, RegRef, Width};
use std::fmt;

/// Errors produced by [`decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The byte buffer ended before the instruction did.
    Truncated,
    /// Instruction exceeded the architectural 15-byte limit.
    TooLong,
    /// An opcode outside the supported subset.
    UnknownOpcode {
        /// The offending opcode byte(s), including a 0x0F escape.
        opcode: Vec<u8>,
    },
    /// A valid opcode with an unsupported ModRM `/r` extension.
    UnknownExtension {
        /// The opcode byte.
        opcode: u8,
        /// The `reg` field of the ModRM byte.
        ext: u8,
    },
    /// A prefix the model does not support (e.g. address-size override).
    UnsupportedPrefix(u8),
}

impl DecodeError {
    /// A stable, low-cardinality histogram key for this rejection —
    /// the bucket label of the decode-failure telemetry in the
    /// `hgl-metrics-v1` report. Opcode/extension/prefix bytes are part
    /// of the key (that's the whole point: *which* instructions the
    /// subset is missing), but operand detail is not, so the key space
    /// stays bounded by the 256-entry opcode maps.
    pub fn reject_key(&self) -> String {
        use fmt::Write as _;
        match self {
            DecodeError::Truncated => "truncated".to_string(),
            DecodeError::TooLong => "too-long".to_string(),
            DecodeError::UnknownOpcode { opcode } => {
                let mut k = String::from("opcode:");
                for b in opcode {
                    let _ = write!(k, "{b:02x}");
                }
                k
            }
            DecodeError::UnknownExtension { opcode, ext } => {
                format!("ext:{opcode:02x}/{ext}")
            }
            DecodeError::UnsupportedPrefix(p) => format!("prefix:{p:02x}"),
        }
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "instruction truncated"),
            DecodeError::TooLong => write!(f, "instruction longer than 15 bytes"),
            DecodeError::UnknownOpcode { opcode } => {
                write!(f, "unknown opcode {:02x?}", opcode)
            }
            DecodeError::UnknownExtension { opcode, ext } => {
                write!(f, "unknown extension /{ext} for opcode {opcode:#04x}")
            }
            DecodeError::UnsupportedPrefix(p) => write!(f, "unsupported prefix {p:#04x}"),
        }
    }
}

impl std::error::Error for DecodeError {}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn u8(&mut self) -> Result<u8, DecodeError> {
        let b = *self.bytes.get(self.pos).ok_or(DecodeError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes([self.u8()?, self.u8()?]))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes([self.u8()?, self.u8()?, self.u8()?, self.u8()?]))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        let lo = self.u32()? as u64;
        let hi = self.u32()? as u64;
        Ok(lo | hi << 32)
    }

    /// Read an immediate of `width` (but at most 4 bytes, per the ISA's
    /// imm32 rule), sign-extended to 64 bits.
    fn imm(&mut self, width: Width) -> Result<i64, DecodeError> {
        Ok(match width {
            Width::B1 => self.u8()? as i8 as i64,
            Width::B2 => self.u16()? as i16 as i64,
            Width::B4 | Width::B8 => self.u32()? as i32 as i64,
        })
    }
}

#[derive(Clone, Copy, Default)]
struct Rex {
    present: bool,
    w: bool,
    r: bool,
    x: bool,
    b: bool,
}

struct Prefixes {
    rex: Rex,
    opsize: bool,
    f2: bool,
    f3: bool,
}

impl Prefixes {
    fn width(&self) -> Width {
        if self.rex.w {
            Width::B8
        } else if self.opsize {
            Width::B2
        } else {
            Width::B4
        }
    }
}

fn reg_ref(number: u8, width: Width, rex_present: bool) -> RegRef {
    if width == Width::B1 && !rex_present && (4..8).contains(&number) {
        RegRef::high(Reg::from_number(number - 4))
    } else {
        RegRef::new(Reg::from_number(number), width)
    }
}

/// Decoded ModRM information.
struct ModRm {
    /// The `reg` field (with REX.R applied).
    reg: u8,
    /// The register-or-memory operand.
    rm: Operand,
}

fn parse_modrm(cur: &mut Cursor<'_>, pfx: &Prefixes, width: Width) -> Result<ModRm, DecodeError> {
    let modrm = cur.u8()?;
    let md = modrm >> 6;
    let reg = (modrm >> 3 & 7) | if pfx.rex.r { 8 } else { 0 };
    let rm_bits = modrm & 7;

    if md == 3 {
        let num = rm_bits | if pfx.rex.b { 8 } else { 0 };
        return Ok(ModRm { reg, rm: Operand::Reg(reg_ref(num, width, pfx.rex.present)) });
    }

    let mut base = None;
    let mut index = None;
    let mut scale = 1u8;
    let mut rip_relative = false;
    let mut disp: i64;

    if rm_bits == 4 {
        // SIB byte.
        let sib = cur.u8()?;
        let sib_scale = 1u8 << (sib >> 6);
        let idx_num = (sib >> 3 & 7) | if pfx.rex.x { 8 } else { 0 };
        let base_num = (sib & 7) | if pfx.rex.b { 8 } else { 0 };
        if idx_num != 4 {
            index = Some(Reg::from_number(idx_num));
            scale = sib_scale;
        }
        if sib & 7 == 5 && md == 0 {
            // No base, disp32 follows.
            disp = cur.u32()? as i32 as i64;
        } else {
            base = Some(Reg::from_number(base_num));
            disp = match md {
                0 => 0,
                1 => cur.u8()? as i8 as i64,
                _ => cur.u32()? as i32 as i64,
            };
        }
    } else if rm_bits == 5 && md == 0 {
        // RIP-relative.
        rip_relative = true;
        disp = cur.u32()? as i32 as i64;
    } else {
        base = Some(Reg::from_number(rm_bits | if pfx.rex.b { 8 } else { 0 }));
        disp = match md {
            0 => 0,
            1 => cur.u8()? as i8 as i64,
            _ => cur.u32()? as i32 as i64,
        };
    }
    let _ = &mut disp;
    Ok(ModRm {
        reg,
        rm: Operand::Mem(MemOperand { base, index, scale, disp, size: width, rip_relative }),
    })
}

/// Resize the memory-operand access size of `op` (register operands are
/// re-viewed at `w`; used when the ModRM was parsed at a different width
/// than the operand it describes, e.g. `movzx r32, r/m8`).
fn resize(op: Operand, w: Width, rex_present: bool) -> Operand {
    match op {
        Operand::Mem(mut m) => {
            m.size = w;
            Operand::Mem(m)
        }
        Operand::Reg(r) => {
            if r.width == w {
                Operand::Reg(r)
            } else {
                Operand::Reg(reg_ref(r.reg.number(), w, rex_present || !r.high8))
            }
        }
        imm => imm,
    }
}

/// Decode a single instruction from `bytes` located at virtual address
/// `addr`.
///
/// Relative branch displacements are resolved into absolute targets.
///
/// # Errors
///
/// Returns a [`DecodeError`] if the bytes are truncated, exceed 15
/// bytes, or use an opcode/prefix outside the supported subset.
///
/// ```
/// let i = hgl_x86::decode(&[0xc3], 0x401000)?;
/// assert_eq!(i.mnemonic, hgl_x86::Mnemonic::Ret);
/// # Ok::<(), hgl_x86::DecodeError>(())
/// ```
pub fn decode(bytes: &[u8], addr: u64) -> Result<Instr, DecodeError> {
    let mut cur = Cursor { bytes, pos: 0 };
    let pfx = parse_prefixes(&mut cur)?;
    let opcode = cur.u8()?;
    let instr = table::decode_opcode(&mut cur, &pfx, opcode, addr)?;
    finish(instr, &cur, &pfx, addr)
}

/// Decode via the legacy match-ladder decoder (the pre-table
/// implementation, kept verbatim). Exists only so the differential
/// suite can fuzz the table-driven path against it; the two must agree
/// byte-for-byte on every input, including errors.
#[cfg(any(test, feature = "reference-decoder"))]
pub fn decode_reference(bytes: &[u8], addr: u64) -> Result<Instr, DecodeError> {
    let mut cur = Cursor { bytes, pos: 0 };
    let pfx = parse_prefixes(&mut cur)?;
    let opcode = cur.u8()?;
    let instr = reference::decode_opcode(&mut cur, &pfx, opcode, addr)?;
    finish(instr, &cur, &pfx, addr)
}

/// The shared prefix loop. REX must be the final prefix before the
/// opcode; the next cursor byte after this returns is the opcode.
fn parse_prefixes(cur: &mut Cursor<'_>) -> Result<Prefixes, DecodeError> {
    let mut pfx = Prefixes { rex: Rex::default(), opsize: false, f2: false, f3: false };
    loop {
        let b = *cur.bytes.get(cur.pos).ok_or(DecodeError::Truncated)?;
        match b {
            0x66 => pfx.opsize = true,
            0xf2 => pfx.f2 = true,
            0xf3 => pfx.f3 = true,
            0x2e | 0x3e | 0x26 | 0x36 | 0x64 | 0x65 => {} // segment prefixes: ignored hints
            0xf0 => {} // lock: ignored (single-threaded model, §1 scope)
            0x67 => return Err(DecodeError::UnsupportedPrefix(0x67)),
            0x40..=0x4f => {
                pfx.rex = Rex {
                    present: true,
                    w: b & 8 != 0,
                    r: b & 4 != 0,
                    x: b & 2 != 0,
                    b: b & 1 != 0,
                };
                cur.pos += 1;
                return Ok(pfx);
            }
            _ => return Ok(pfx),
        }
        cur.pos += 1;
        if cur.pos > 14 {
            return Err(DecodeError::TooLong);
        }
    }
}

/// Shared epilogue: length bookkeeping and `rep` attachment.
fn finish(mut instr: Instr, cur: &Cursor<'_>, pfx: &Prefixes, addr: u64) -> Result<Instr, DecodeError> {
    if cur.pos > 15 {
        return Err(DecodeError::TooLong);
    }
    instr.addr = addr;
    instr.len = cur.pos as u8;
    if instr.rep.is_none() {
        instr.rep = if pfx.f3 && is_string_op(instr.mnemonic) {
            Some(RepPrefix::Rep)
        } else if pfx.f2 && is_string_op(instr.mnemonic) {
            Some(RepPrefix::Repne)
        } else {
            None
        };
    }
    Ok(instr)
}

fn is_string_op(m: Mnemonic) -> bool {
    matches!(m, Mnemonic::Movs | Mnemonic::Stos | Mnemonic::Lods | Mnemonic::Scas | Mnemonic::Cmps)
}

const GRP1: [Mnemonic; 8] = [
    Mnemonic::Add,
    Mnemonic::Or,
    Mnemonic::Adc,
    Mnemonic::Sbb,
    Mnemonic::And,
    Mnemonic::Sub,
    Mnemonic::Xor,
    Mnemonic::Cmp,
];

const SHIFT_GRP: [Option<Mnemonic>; 8] = [
    Some(Mnemonic::Rol),
    Some(Mnemonic::Ror),
    Some(Mnemonic::Rcl),
    Some(Mnemonic::Rcr),
    Some(Mnemonic::Shl),
    Some(Mnemonic::Shr),
    Some(Mnemonic::Shl), // /6 is an alias of sal/shl
    Some(Mnemonic::Sar),
];

/// The pre-table match-ladder decoder, kept verbatim as the
/// differential-testing reference. Never compiled into release
/// builds unless the `reference-decoder` feature is enabled.
#[cfg(any(test, feature = "reference-decoder"))]
mod reference {
    use super::*;

    pub(super) fn decode_opcode(
        cur: &mut Cursor<'_>,
        pfx: &Prefixes,
        opcode: u8,
        addr: u64,
    ) -> Result<Instr, DecodeError> {
        let w = pfx.width();
        let mk = |m, ops, width| Instr::new(m, ops, width);

        match opcode {
            // ALU block 0x00-0x3f: add/or/adc/sbb/and/sub/xor/cmp.
            0x00..=0x3f if opcode & 7 <= 5 => {
                let m = GRP1[(opcode >> 3) as usize & 7];
                match opcode & 7 {
                    0 => {
                        let mr = parse_modrm(cur, pfx, Width::B1)?;
                        Ok(mk(m, vec![mr.rm, Operand::Reg(reg_ref(mr.reg, Width::B1, pfx.rex.present))], Width::B1))
                    }
                    1 => {
                        let mr = parse_modrm(cur, pfx, w)?;
                        Ok(mk(m, vec![mr.rm, Operand::Reg(reg_ref(mr.reg, w, pfx.rex.present))], w))
                    }
                    2 => {
                        let mr = parse_modrm(cur, pfx, Width::B1)?;
                        Ok(mk(m, vec![Operand::Reg(reg_ref(mr.reg, Width::B1, pfx.rex.present)), mr.rm], Width::B1))
                    }
                    3 => {
                        let mr = parse_modrm(cur, pfx, w)?;
                        Ok(mk(m, vec![Operand::Reg(reg_ref(mr.reg, w, pfx.rex.present)), mr.rm], w))
                    }
                    4 => {
                        let imm = cur.imm(Width::B1)?;
                        Ok(mk(m, vec![Operand::reg(Reg::Rax, Width::B1), Operand::Imm(imm)], Width::B1))
                    }
                    5 => {
                        let imm = cur.imm(w)?;
                        Ok(mk(m, vec![Operand::reg(Reg::Rax, w), Operand::Imm(imm)], w))
                    }
                    _ => Err(DecodeError::UnknownOpcode { opcode: vec![opcode] }),
                }
            }
            0x0f => decode_0f(cur, pfx, addr),
            0x50..=0x57 => {
                let r = (opcode - 0x50) | if pfx.rex.b { 8 } else { 0 };
                Ok(mk(Mnemonic::Push, vec![Operand::reg64(Reg::from_number(r))], Width::B8))
            }
            0x58..=0x5f => {
                let r = (opcode - 0x58) | if pfx.rex.b { 8 } else { 0 };
                Ok(mk(Mnemonic::Pop, vec![Operand::reg64(Reg::from_number(r))], Width::B8))
            }
            0x63 => {
                let mr = parse_modrm(cur, pfx, Width::B4)?;
                let dst = Operand::Reg(reg_ref(mr.reg, Width::B8, pfx.rex.present));
                Ok(mk(Mnemonic::Movsxd, vec![dst, mr.rm], Width::B8))
            }
            0x68 => {
                let imm = cur.imm(Width::B4)?;
                Ok(mk(Mnemonic::Push, vec![Operand::Imm(imm)], Width::B8))
            }
            0x69 | 0x6b => {
                let mr = parse_modrm(cur, pfx, w)?;
                let imm = if opcode == 0x69 { cur.imm(w)? } else { cur.imm(Width::B1)? };
                let dst = Operand::Reg(reg_ref(mr.reg, w, pfx.rex.present));
                Ok(mk(Mnemonic::Imul, vec![dst, mr.rm, Operand::Imm(imm)], w))
            }
            0x6a => {
                let imm = cur.imm(Width::B1)?;
                Ok(mk(Mnemonic::Push, vec![Operand::Imm(imm)], Width::B8))
            }
            0x70..=0x7f => {
                let rel = cur.imm(Width::B1)?;
                let target = addr.wrapping_add(cur.pos as u64).wrapping_add(rel as u64);
                Ok(mk(Mnemonic::Jcc(Cond::from_number(opcode & 0xf)), vec![Operand::Imm(target as i64)], Width::B8))
            }
            0x80 | 0x81 | 0x83 => {
                let opw = if opcode == 0x80 { Width::B1 } else { w };
                let mr = parse_modrm(cur, pfx, opw)?;
                let imm = match opcode {
                    0x80 | 0x83 => cur.imm(Width::B1)?,
                    _ => cur.imm(opw)?,
                };
                let m = GRP1[(mr.reg & 7) as usize];
                Ok(mk(m, vec![mr.rm, Operand::Imm(imm)], opw))
            }
            0x84 | 0x85 => {
                let opw = if opcode == 0x84 { Width::B1 } else { w };
                let mr = parse_modrm(cur, pfx, opw)?;
                Ok(mk(Mnemonic::Test, vec![mr.rm, Operand::Reg(reg_ref(mr.reg, opw, pfx.rex.present))], opw))
            }
            0x86 | 0x87 => {
                let opw = if opcode == 0x86 { Width::B1 } else { w };
                let mr = parse_modrm(cur, pfx, opw)?;
                Ok(mk(Mnemonic::Xchg, vec![mr.rm, Operand::Reg(reg_ref(mr.reg, opw, pfx.rex.present))], opw))
            }
            0x88 | 0x89 => {
                let opw = if opcode == 0x88 { Width::B1 } else { w };
                let mr = parse_modrm(cur, pfx, opw)?;
                Ok(mk(Mnemonic::Mov, vec![mr.rm, Operand::Reg(reg_ref(mr.reg, opw, pfx.rex.present))], opw))
            }
            0x8a | 0x8b => {
                let opw = if opcode == 0x8a { Width::B1 } else { w };
                let mr = parse_modrm(cur, pfx, opw)?;
                Ok(mk(Mnemonic::Mov, vec![Operand::Reg(reg_ref(mr.reg, opw, pfx.rex.present)), mr.rm], opw))
            }
            0x8d => {
                let mr = parse_modrm(cur, pfx, w)?;
                if !mr.rm.is_mem() {
                    return Err(DecodeError::UnknownOpcode { opcode: vec![opcode] });
                }
                Ok(mk(Mnemonic::Lea, vec![Operand::Reg(reg_ref(mr.reg, w, pfx.rex.present)), mr.rm], w))
            }
            0x8f => {
                let mr = parse_modrm(cur, pfx, Width::B8)?;
                if mr.reg & 7 != 0 {
                    return Err(DecodeError::UnknownExtension { opcode, ext: mr.reg & 7 });
                }
                Ok(mk(Mnemonic::Pop, vec![mr.rm], Width::B8))
            }
            0x90 => Ok(mk(Mnemonic::Nop, vec![], Width::B8)),
            0x91..=0x97 => {
                let r = (opcode - 0x90) | if pfx.rex.b { 8 } else { 0 };
                Ok(mk(
                    Mnemonic::Xchg,
                    vec![Operand::reg(Reg::Rax, w), Operand::Reg(reg_ref(r, w, pfx.rex.present))],
                    w,
                ))
            }
            0x98 => Ok(match w {
                Width::B2 => mk(Mnemonic::Cbw, vec![], Width::B2),
                Width::B8 => mk(Mnemonic::Cdqe, vec![], Width::B8),
                _ => mk(Mnemonic::Cwde, vec![], Width::B4),
            }),
            0x99 => Ok(match w {
                Width::B2 => mk(Mnemonic::Cwd, vec![], Width::B2),
                Width::B8 => mk(Mnemonic::Cqo, vec![], Width::B8),
                _ => mk(Mnemonic::Cdq, vec![], Width::B4),
            }),
            0xa4 => Ok(mk(Mnemonic::Movs, vec![], Width::B1)),
            0xa5 => Ok(mk(Mnemonic::Movs, vec![], w)),
            0xa6 => Ok(mk(Mnemonic::Cmps, vec![], Width::B1)),
            0xa7 => Ok(mk(Mnemonic::Cmps, vec![], w)),
            0xa8 => {
                let imm = cur.imm(Width::B1)?;
                Ok(mk(Mnemonic::Test, vec![Operand::reg(Reg::Rax, Width::B1), Operand::Imm(imm)], Width::B1))
            }
            0xa9 => {
                let imm = cur.imm(w)?;
                Ok(mk(Mnemonic::Test, vec![Operand::reg(Reg::Rax, w), Operand::Imm(imm)], w))
            }
            0xaa => Ok(mk(Mnemonic::Stos, vec![], Width::B1)),
            0xab => Ok(mk(Mnemonic::Stos, vec![], w)),
            0xac => Ok(mk(Mnemonic::Lods, vec![], Width::B1)),
            0xad => Ok(mk(Mnemonic::Lods, vec![], w)),
            0xae => Ok(mk(Mnemonic::Scas, vec![], Width::B1)),
            0xaf => Ok(mk(Mnemonic::Scas, vec![], w)),
            0xb0..=0xb7 => {
                let r = (opcode - 0xb0) | if pfx.rex.b { 8 } else { 0 };
                let imm = cur.imm(Width::B1)?;
                Ok(mk(Mnemonic::Mov, vec![Operand::Reg(reg_ref(r, Width::B1, pfx.rex.present)), Operand::Imm(imm)], Width::B1))
            }
            0xb8..=0xbf => {
                let r = (opcode - 0xb8) | if pfx.rex.b { 8 } else { 0 };
                if pfx.rex.w {
                    let imm = cur.u64()? as i64;
                    Ok(mk(Mnemonic::Movabs, vec![Operand::reg64(Reg::from_number(r)), Operand::Imm(imm)], Width::B8))
                } else {
                    let imm = match w {
                        Width::B2 => cur.u16()? as i64,
                        _ => cur.u32()? as i64, // mov r32, imm32 zero-extends
                    };
                    Ok(mk(Mnemonic::Mov, vec![Operand::Reg(reg_ref(r, w, pfx.rex.present)), Operand::Imm(imm)], w))
                }
            }
            0xc0 | 0xc1 | 0xd0 | 0xd1 | 0xd2 | 0xd3 => {
                let opw = if opcode & 1 == 0 { Width::B1 } else { w };
                let mr = parse_modrm(cur, pfx, opw)?;
                let m = SHIFT_GRP[(mr.reg & 7) as usize]
                    .ok_or(DecodeError::UnknownExtension { opcode, ext: mr.reg & 7 })?;
                let amount = match opcode {
                    0xc0 | 0xc1 => Operand::Imm(cur.imm(Width::B1)? & 0xff),
                    0xd0 | 0xd1 => Operand::Imm(1),
                    _ => Operand::reg(Reg::Rcx, Width::B1),
                };
                Ok(mk(m, vec![mr.rm, amount], opw))
            }
            0xc2 => {
                let imm = cur.u16()? as i64;
                Ok(mk(Mnemonic::Ret, vec![Operand::Imm(imm)], Width::B8))
            }
            0xc3 => Ok(mk(Mnemonic::Ret, vec![], Width::B8)),
            0xc6 | 0xc7 => {
                let opw = if opcode == 0xc6 { Width::B1 } else { w };
                let mr = parse_modrm(cur, pfx, opw)?;
                if mr.reg & 7 != 0 {
                    return Err(DecodeError::UnknownExtension { opcode, ext: mr.reg & 7 });
                }
                let imm = cur.imm(opw)?;
                Ok(mk(Mnemonic::Mov, vec![mr.rm, Operand::Imm(imm)], opw))
            }
            0xc9 => Ok(mk(Mnemonic::Leave, vec![], Width::B8)),
            0xcc => Ok(mk(Mnemonic::Int3, vec![], Width::B8)),
            0xe0..=0xe3 => {
                let rel = cur.imm(Width::B1)?;
                let target = addr.wrapping_add(cur.pos as u64).wrapping_add(rel as u64);
                let m = match opcode {
                    0xe0 => Mnemonic::Loopne,
                    0xe1 => Mnemonic::Loope,
                    0xe2 => Mnemonic::Loop,
                    _ => Mnemonic::Jrcxz,
                };
                Ok(mk(m, vec![Operand::Imm(target as i64)], Width::B8))
            }
            0xe8 => {
                let rel = cur.imm(Width::B4)?;
                let target = addr.wrapping_add(cur.pos as u64).wrapping_add(rel as u64);
                Ok(mk(Mnemonic::Call, vec![Operand::Imm(target as i64)], Width::B8))
            }
            0xe9 => {
                let rel = cur.imm(Width::B4)?;
                let target = addr.wrapping_add(cur.pos as u64).wrapping_add(rel as u64);
                Ok(mk(Mnemonic::Jmp, vec![Operand::Imm(target as i64)], Width::B8))
            }
            0xeb => {
                let rel = cur.imm(Width::B1)?;
                let target = addr.wrapping_add(cur.pos as u64).wrapping_add(rel as u64);
                Ok(mk(Mnemonic::Jmp, vec![Operand::Imm(target as i64)], Width::B8))
            }
            0xf4 => Ok(mk(Mnemonic::Hlt, vec![], Width::B8)),
            0xf5 => Ok(mk(Mnemonic::Cmc, vec![], Width::B8)),
            0xf6 | 0xf7 => {
                let opw = if opcode == 0xf6 { Width::B1 } else { w };
                let mr = parse_modrm(cur, pfx, opw)?;
                match mr.reg & 7 {
                    0 | 1 => {
                        let imm = if opcode == 0xf6 { cur.imm(Width::B1)? } else { cur.imm(opw)? };
                        Ok(mk(Mnemonic::Test, vec![mr.rm, Operand::Imm(imm)], opw))
                    }
                    2 => Ok(mk(Mnemonic::Not, vec![mr.rm], opw)),
                    3 => Ok(mk(Mnemonic::Neg, vec![mr.rm], opw)),
                    4 => Ok(mk(Mnemonic::Mul, vec![mr.rm], opw)),
                    5 => Ok(mk(Mnemonic::Imul, vec![mr.rm], opw)),
                    6 => Ok(mk(Mnemonic::Div, vec![mr.rm], opw)),
                    _ => Ok(mk(Mnemonic::Idiv, vec![mr.rm], opw)),
                }
            }
            0xf8 => Ok(mk(Mnemonic::Clc, vec![], Width::B8)),
            0xf9 => Ok(mk(Mnemonic::Stc, vec![], Width::B8)),
            0xfc => Ok(mk(Mnemonic::Cld, vec![], Width::B8)),
            0xfd => Ok(mk(Mnemonic::Std, vec![], Width::B8)),
            0xfe => {
                let mr = parse_modrm(cur, pfx, Width::B1)?;
                match mr.reg & 7 {
                    0 => Ok(mk(Mnemonic::Inc, vec![mr.rm], Width::B1)),
                    1 => Ok(mk(Mnemonic::Dec, vec![mr.rm], Width::B1)),
                    e => Err(DecodeError::UnknownExtension { opcode, ext: e }),
                }
            }
            0xff => {
                let mr = parse_modrm(cur, pfx, w)?;
                match mr.reg & 7 {
                    0 => Ok(mk(Mnemonic::Inc, vec![mr.rm], w)),
                    1 => Ok(mk(Mnemonic::Dec, vec![mr.rm], w)),
                    2 => Ok(mk(Mnemonic::Call, vec![resize(mr.rm, Width::B8, pfx.rex.present)], Width::B8)),
                    4 => Ok(mk(Mnemonic::Jmp, vec![resize(mr.rm, Width::B8, pfx.rex.present)], Width::B8)),
                    6 => Ok(mk(Mnemonic::Push, vec![resize(mr.rm, Width::B8, pfx.rex.present)], Width::B8)),
                    e => Err(DecodeError::UnknownExtension { opcode, ext: e }),
                }
            }
            _ => Err(DecodeError::UnknownOpcode { opcode: vec![opcode] }),
        }
    }

    pub(super) fn decode_0f(cur: &mut Cursor<'_>, pfx: &Prefixes, addr: u64) -> Result<Instr, DecodeError> {
        let w = pfx.width();
        let op2 = cur.u8()?;
        let mk = |m, ops, width| Instr::new(m, ops, width);

        match op2 {
            0x05 => Ok(mk(Mnemonic::Syscall, vec![], Width::B8)),
            0x0b => Ok(mk(Mnemonic::Ud2, vec![], Width::B8)),
            0x1e if pfx.f3 && cur.peek() == Some(0xfa) => {
                cur.u8()?;
                Ok(mk(Mnemonic::Endbr64, vec![], Width::B8))
            }
            0x1f => {
                let mr = parse_modrm(cur, pfx, w)?;
                let _ = mr;
                Ok(mk(Mnemonic::Nop, vec![], w))
            }
            0x31 => Ok(mk(Mnemonic::Rdtsc, vec![], Width::B8)),
            0x40..=0x4f => {
                let mr = parse_modrm(cur, pfx, w)?;
                let dst = Operand::Reg(reg_ref(mr.reg, w, pfx.rex.present));
                Ok(mk(Mnemonic::Cmovcc(Cond::from_number(op2 & 0xf)), vec![dst, mr.rm], w))
            }
            0x80..=0x8f => {
                let rel = cur.imm(Width::B4)?;
                let target = addr.wrapping_add(cur.pos as u64).wrapping_add(rel as u64);
                Ok(mk(Mnemonic::Jcc(Cond::from_number(op2 & 0xf)), vec![Operand::Imm(target as i64)], Width::B8))
            }
            0x90..=0x9f => {
                let mr = parse_modrm(cur, pfx, Width::B1)?;
                Ok(mk(Mnemonic::Setcc(Cond::from_number(op2 & 0xf)), vec![mr.rm], Width::B1))
            }
            0xa2 => Ok(mk(Mnemonic::Cpuid, vec![], Width::B8)),
            0xa3 | 0xab | 0xb3 | 0xbb => {
                let mr = parse_modrm(cur, pfx, w)?;
                let m = match op2 {
                    0xa3 => Mnemonic::Bt,
                    0xab => Mnemonic::Bts,
                    0xb3 => Mnemonic::Btr,
                    _ => Mnemonic::Btc,
                };
                Ok(mk(m, vec![mr.rm, Operand::Reg(reg_ref(mr.reg, w, pfx.rex.present))], w))
            }
            0xa4 | 0xac => {
                let mr = parse_modrm(cur, pfx, w)?;
                let imm = cur.imm(Width::B1)?;
                let m = if op2 == 0xa4 { Mnemonic::Shld } else { Mnemonic::Shrd };
                Ok(mk(m, vec![mr.rm, Operand::Reg(reg_ref(mr.reg, w, pfx.rex.present)), Operand::Imm(imm)], w))
            }
            0xa5 | 0xad => {
                let mr = parse_modrm(cur, pfx, w)?;
                let m = if op2 == 0xa5 { Mnemonic::Shld } else { Mnemonic::Shrd };
                Ok(mk(
                    m,
                    vec![
                        mr.rm,
                        Operand::Reg(reg_ref(mr.reg, w, pfx.rex.present)),
                        Operand::reg(Reg::Rcx, Width::B1),
                    ],
                    w,
                ))
            }
            0xaf => {
                let mr = parse_modrm(cur, pfx, w)?;
                let dst = Operand::Reg(reg_ref(mr.reg, w, pfx.rex.present));
                Ok(mk(Mnemonic::Imul, vec![dst, mr.rm], w))
            }
            0xb0 | 0xb1 => {
                let opw = if op2 == 0xb0 { Width::B1 } else { w };
                let mr = parse_modrm(cur, pfx, opw)?;
                Ok(mk(Mnemonic::Cmpxchg, vec![mr.rm, Operand::Reg(reg_ref(mr.reg, opw, pfx.rex.present))], opw))
            }
            0xb6 | 0xb7 | 0xbe | 0xbf => {
                let srcw = if op2 & 1 == 0 { Width::B1 } else { Width::B2 };
                let mr = parse_modrm(cur, pfx, srcw)?;
                let dst = Operand::Reg(reg_ref(mr.reg, w, pfx.rex.present));
                let m = if op2 < 0xbe { Mnemonic::Movzx } else { Mnemonic::Movsx };
                Ok(mk(m, vec![dst, mr.rm], w))
            }
            0xb8 if pfx.f3 => {
                let mr = parse_modrm(cur, pfx, w)?;
                let dst = Operand::Reg(reg_ref(mr.reg, w, pfx.rex.present));
                Ok(mk(Mnemonic::Popcnt, vec![dst, mr.rm], w))
            }
            0xba => {
                let mr = parse_modrm(cur, pfx, w)?;
                let m = match mr.reg & 7 {
                    4 => Mnemonic::Bt,
                    5 => Mnemonic::Bts,
                    6 => Mnemonic::Btr,
                    7 => Mnemonic::Btc,
                    e => return Err(DecodeError::UnknownExtension { opcode: 0xba, ext: e }),
                };
                let imm = cur.imm(Width::B1)?;
                Ok(mk(m, vec![mr.rm, Operand::Imm(imm & 0xff)], w))
            }
            0xbc => {
                let mr = parse_modrm(cur, pfx, w)?;
                let dst = Operand::Reg(reg_ref(mr.reg, w, pfx.rex.present));
                let m = if pfx.f3 { Mnemonic::Tzcnt } else { Mnemonic::Bsf };
                Ok(mk(m, vec![dst, mr.rm], w))
            }
            0xbd => {
                let mr = parse_modrm(cur, pfx, w)?;
                let dst = Operand::Reg(reg_ref(mr.reg, w, pfx.rex.present));
                Ok(mk(Mnemonic::Bsr, vec![dst, mr.rm], w))
            }
            0xc0 | 0xc1 => {
                let opw = if op2 == 0xc0 { Width::B1 } else { w };
                let mr = parse_modrm(cur, pfx, opw)?;
                Ok(mk(Mnemonic::Xadd, vec![mr.rm, Operand::Reg(reg_ref(mr.reg, opw, pfx.rex.present))], opw))
            }
            0xc8..=0xcf => {
                // bswap r32/r64.
                let r = (op2 - 0xc8) | if pfx.rex.b { 8 } else { 0 };
                let bw = if pfx.rex.w { Width::B8 } else { Width::B4 };
                Ok(mk(Mnemonic::Bswap, vec![Operand::Reg(reg_ref(r, bw, pfx.rex.present))], bw))
            }
            _ => Err(DecodeError::UnknownOpcode { opcode: vec![0x0f, op2] }),
        }
    }
}

/// The table-driven decoder: two 256-entry const lookup tables (one
/// per opcode map) classify every opcode byte into an addressing
/// [`Form`], and a single generic interpreter executes the form. The
/// tables are built at compile time; decoding an opcode is one array
/// index plus one `match` on ~30 forms instead of a walk through a
/// 90-arm ladder with inline operand logic.
///
/// Equivalence with the legacy ladder (`reference`) is enforced by the
/// exhaustive differential suite in `tests/decode_diff.rs`.
mod table {
    use super::*;

    /// Operand-width selector, resolved against the decoded prefixes.
    #[derive(Clone, Copy)]
    enum Wsel {
        /// Always one byte.
        Byte,
        /// The operand-size-prefix/REX.W-selected width.
        Oper,
    }

    impl Wsel {
        fn resolve(self, pfx: &Prefixes) -> Width {
            match self {
                Wsel::Byte => Width::B1,
                Wsel::Oper => pfx.width(),
            }
        }
    }

    /// Shift-amount source for the 0xC0/0xD0 shift group.
    #[derive(Clone, Copy)]
    enum ShiftSrc {
        Imm8,
        One,
        Cl,
    }

    /// One opcode's decode recipe. Everything data-dependent (widths,
    /// mnemonics, immediate sizes) is baked into the entry; the
    /// interpreter supplies only the mechanics.
    #[derive(Clone, Copy)]
    enum Form {
        /// Opcode outside the supported subset.
        Invalid,
        /// 0x0F: dispatch into the secondary table.
        Escape,
        /// No operands, width B8 (ret/leave/hlt/syscall/...).
        Fixed(Mnemonic),
        /// ModRM; operands `[rm, reg]`.
        ModRmMR(Mnemonic, Wsel),
        /// ModRM; operands `[reg, rm]`.
        ModRmRM(Mnemonic, Wsel),
        /// Accumulator and an immediate: `[al/ax/eax/rax, imm]`.
        AccImm(Mnemonic, Wsel),
        /// Group-1 ALU with the mnemonic in ModRM.reg.
        Grp1 { byte: bool, imm8: bool },
        /// push r64 with the register in the low opcode bits.
        PushReg,
        /// pop r64 with the register in the low opcode bits.
        PopReg,
        /// 0x63 movsxd r64, r/m32.
        Movsxd,
        /// push imm (B1 or B4 immediate, both push a qword).
        PushImm { imm8: bool },
        /// imul r, r/m, imm.
        ImulImm { imm8: bool },
        /// Short conditional jump; condition in the low opcode nibble.
        JccRel8,
        /// 0x8D lea (memory operand required).
        Lea,
        /// 0x8F pop r/m64 (/0 only).
        PopRm,
        /// 0x90 nop.
        Nop,
        /// 0x91-0x97 xchg acc, reg.
        XchgAcc,
        /// 0x98 cbw/cwde/cdqe by operand width.
        ConvertAcc,
        /// 0x99 cwd/cdq/cqo by operand width.
        ConvertDbl,
        /// String operation (movs/cmps/stos/lods/scas); implicit operands.
        StringOp(Mnemonic, Wsel),
        /// 0xB0-0xB7 mov r8, imm8.
        MovR8Imm,
        /// 0xB8-0xBF mov r, imm (movabs under REX.W).
        MovRImm,
        /// Shift group 0xC0/0xC1/0xD0-0xD3; mnemonic in ModRM.reg.
        Shift { byte: bool, src: ShiftSrc },
        /// 0xC2 ret imm16.
        RetImm,
        /// 0xC6/0xC7 mov r/m, imm (/0 only).
        MovMI { byte: bool },
        /// 0xE0-0xE3 loop/loope/loopne/jrcxz.
        LoopOp(Mnemonic),
        /// 0xE8 call rel32.
        CallRel32,
        /// 0xE9 jmp rel32.
        JmpRel32,
        /// 0xEB jmp rel8.
        JmpRel8,
        /// Group 3 (0xF6/0xF7): test/not/neg/mul/imul/div/idiv.
        Grp3 { byte: bool },
        /// Group 4 (0xFE): inc/dec r/m8.
        Grp4,
        /// Group 5 (0xFF): inc/dec/call/jmp/push r/m.
        Grp5,
        /// 0F 1E: endbr64 (requires F3 prefix and a 0xFA suffix byte).
        Endbr,
        /// 0F 1F: multi-byte nop (ModRM consumed, no operands).
        NopModRm,
        /// 0F 40-4F cmovcc; condition in the low opcode nibble.
        CmovRM,
        /// 0F 80-8F near conditional jump.
        JccRel32,
        /// 0F 90-9F setcc r/m8.
        SetccRm,
        /// 0F A4/AC shld/shrd r/m, r, imm8.
        ShiftDImm(Mnemonic),
        /// 0F A5/AD shld/shrd r/m, r, cl.
        ShiftDCl(Mnemonic),
        /// 0F B6/B7/BE/BF movzx/movsx.
        MovExt { sign: bool, src16: bool },
        /// 0F B8 popcnt (requires F3).
        PopcntF3,
        /// 0F BA bt/bts/btr/btc r/m, imm8 (/4-/7).
        BtGrp,
        /// 0F BC bsf (tzcnt under F3).
        BsfTzcnt,
        /// 0F C8-CF bswap r32/r64.
        Bswap,
    }

    /// Primary-map entry for opcode byte `op`. `const`: evaluated once
    /// at compile time to fill [`PRIMARY`].
    const fn primary(op: u8) -> Form {
        match op {
            0x0f => Form::Escape,
            // ALU block 0x00-0x3F: add/or/adc/sbb/and/sub/xor/cmp,
            // six addressing forms each, selected by the low 3 bits.
            0x00..=0x3f if op & 7 <= 5 => {
                let m = GRP1[(op >> 3) as usize & 7];
                match op & 7 {
                    0 => Form::ModRmMR(m, Wsel::Byte),
                    1 => Form::ModRmMR(m, Wsel::Oper),
                    2 => Form::ModRmRM(m, Wsel::Byte),
                    3 => Form::ModRmRM(m, Wsel::Oper),
                    4 => Form::AccImm(m, Wsel::Byte),
                    _ => Form::AccImm(m, Wsel::Oper),
                }
            }
            0x50..=0x57 => Form::PushReg,
            0x58..=0x5f => Form::PopReg,
            0x63 => Form::Movsxd,
            0x68 => Form::PushImm { imm8: false },
            0x69 => Form::ImulImm { imm8: false },
            0x6a => Form::PushImm { imm8: true },
            0x6b => Form::ImulImm { imm8: true },
            0x70..=0x7f => Form::JccRel8,
            0x80 => Form::Grp1 { byte: true, imm8: true },
            0x81 => Form::Grp1 { byte: false, imm8: false },
            0x83 => Form::Grp1 { byte: false, imm8: true },
            0x84 => Form::ModRmMR(Mnemonic::Test, Wsel::Byte),
            0x85 => Form::ModRmMR(Mnemonic::Test, Wsel::Oper),
            0x86 => Form::ModRmMR(Mnemonic::Xchg, Wsel::Byte),
            0x87 => Form::ModRmMR(Mnemonic::Xchg, Wsel::Oper),
            0x88 => Form::ModRmMR(Mnemonic::Mov, Wsel::Byte),
            0x89 => Form::ModRmMR(Mnemonic::Mov, Wsel::Oper),
            0x8a => Form::ModRmRM(Mnemonic::Mov, Wsel::Byte),
            0x8b => Form::ModRmRM(Mnemonic::Mov, Wsel::Oper),
            0x8d => Form::Lea,
            0x8f => Form::PopRm,
            0x90 => Form::Nop,
            0x91..=0x97 => Form::XchgAcc,
            0x98 => Form::ConvertAcc,
            0x99 => Form::ConvertDbl,
            0xa4 => Form::StringOp(Mnemonic::Movs, Wsel::Byte),
            0xa5 => Form::StringOp(Mnemonic::Movs, Wsel::Oper),
            0xa6 => Form::StringOp(Mnemonic::Cmps, Wsel::Byte),
            0xa7 => Form::StringOp(Mnemonic::Cmps, Wsel::Oper),
            0xa8 => Form::AccImm(Mnemonic::Test, Wsel::Byte),
            0xa9 => Form::AccImm(Mnemonic::Test, Wsel::Oper),
            0xaa => Form::StringOp(Mnemonic::Stos, Wsel::Byte),
            0xab => Form::StringOp(Mnemonic::Stos, Wsel::Oper),
            0xac => Form::StringOp(Mnemonic::Lods, Wsel::Byte),
            0xad => Form::StringOp(Mnemonic::Lods, Wsel::Oper),
            0xae => Form::StringOp(Mnemonic::Scas, Wsel::Byte),
            0xaf => Form::StringOp(Mnemonic::Scas, Wsel::Oper),
            0xb0..=0xb7 => Form::MovR8Imm,
            0xb8..=0xbf => Form::MovRImm,
            0xc0 => Form::Shift { byte: true, src: ShiftSrc::Imm8 },
            0xc1 => Form::Shift { byte: false, src: ShiftSrc::Imm8 },
            0xc2 => Form::RetImm,
            0xc3 => Form::Fixed(Mnemonic::Ret),
            0xc6 => Form::MovMI { byte: true },
            0xc7 => Form::MovMI { byte: false },
            0xc9 => Form::Fixed(Mnemonic::Leave),
            0xcc => Form::Fixed(Mnemonic::Int3),
            0xd0 => Form::Shift { byte: true, src: ShiftSrc::One },
            0xd1 => Form::Shift { byte: false, src: ShiftSrc::One },
            0xd2 => Form::Shift { byte: true, src: ShiftSrc::Cl },
            0xd3 => Form::Shift { byte: false, src: ShiftSrc::Cl },
            0xe0 => Form::LoopOp(Mnemonic::Loopne),
            0xe1 => Form::LoopOp(Mnemonic::Loope),
            0xe2 => Form::LoopOp(Mnemonic::Loop),
            0xe3 => Form::LoopOp(Mnemonic::Jrcxz),
            0xe8 => Form::CallRel32,
            0xe9 => Form::JmpRel32,
            0xeb => Form::JmpRel8,
            0xf4 => Form::Fixed(Mnemonic::Hlt),
            0xf5 => Form::Fixed(Mnemonic::Cmc),
            0xf6 => Form::Grp3 { byte: true },
            0xf7 => Form::Grp3 { byte: false },
            0xf8 => Form::Fixed(Mnemonic::Clc),
            0xf9 => Form::Fixed(Mnemonic::Stc),
            0xfc => Form::Fixed(Mnemonic::Cld),
            0xfd => Form::Fixed(Mnemonic::Std),
            0xfe => Form::Grp4,
            0xff => Form::Grp5,
            _ => Form::Invalid,
        }
    }

    /// Secondary-map (0F-escape) entry for opcode byte `op`.
    const fn secondary(op: u8) -> Form {
        match op {
            0x05 => Form::Fixed(Mnemonic::Syscall),
            0x0b => Form::Fixed(Mnemonic::Ud2),
            0x1e => Form::Endbr,
            0x1f => Form::NopModRm,
            0x31 => Form::Fixed(Mnemonic::Rdtsc),
            0x40..=0x4f => Form::CmovRM,
            0x80..=0x8f => Form::JccRel32,
            0x90..=0x9f => Form::SetccRm,
            0xa2 => Form::Fixed(Mnemonic::Cpuid),
            0xa3 => Form::ModRmMR(Mnemonic::Bt, Wsel::Oper),
            0xa4 => Form::ShiftDImm(Mnemonic::Shld),
            0xa5 => Form::ShiftDCl(Mnemonic::Shld),
            0xab => Form::ModRmMR(Mnemonic::Bts, Wsel::Oper),
            0xac => Form::ShiftDImm(Mnemonic::Shrd),
            0xad => Form::ShiftDCl(Mnemonic::Shrd),
            0xaf => Form::ModRmRM(Mnemonic::Imul, Wsel::Oper),
            0xb0 => Form::ModRmMR(Mnemonic::Cmpxchg, Wsel::Byte),
            0xb1 => Form::ModRmMR(Mnemonic::Cmpxchg, Wsel::Oper),
            0xb3 => Form::ModRmMR(Mnemonic::Btr, Wsel::Oper),
            0xb6 => Form::MovExt { sign: false, src16: false },
            0xb7 => Form::MovExt { sign: false, src16: true },
            0xb8 => Form::PopcntF3,
            0xba => Form::BtGrp,
            0xbb => Form::ModRmMR(Mnemonic::Btc, Wsel::Oper),
            0xbc => Form::BsfTzcnt,
            0xbd => Form::ModRmRM(Mnemonic::Bsr, Wsel::Oper),
            0xbe => Form::MovExt { sign: true, src16: false },
            0xbf => Form::MovExt { sign: true, src16: true },
            0xc0 => Form::ModRmMR(Mnemonic::Xadd, Wsel::Byte),
            0xc1 => Form::ModRmMR(Mnemonic::Xadd, Wsel::Oper),
            0xc8..=0xcf => Form::Bswap,
            _ => Form::Invalid,
        }
    }

    /// The one-byte opcode map.
    static PRIMARY: [Form; 256] = {
        let mut t = [Form::Invalid; 256];
        let mut i = 0;
        while i < 256 {
            t[i] = primary(i as u8);
            i += 1;
        }
        t
    };

    /// The 0F-escape opcode map.
    static SECONDARY: [Form; 256] = {
        let mut t = [Form::Invalid; 256];
        let mut i = 0;
        while i < 256 {
            t[i] = secondary(i as u8);
            i += 1;
        }
        t
    };

    fn unknown(op: u8, escaped: bool) -> DecodeError {
        let opcode = if escaped { vec![0x0f, op] } else { vec![op] };
        DecodeError::UnknownOpcode { opcode }
    }

    pub(super) fn decode_opcode(
        cur: &mut Cursor<'_>,
        pfx: &Prefixes,
        opcode: u8,
        addr: u64,
    ) -> Result<Instr, DecodeError> {
        exec(PRIMARY[opcode as usize], cur, pfx, opcode, addr, false)
    }

    /// Resolve a relative displacement already consumed from `cur`
    /// into an absolute branch target.
    fn rel_target(cur: &Cursor<'_>, addr: u64, rel: i64) -> Operand {
        Operand::Imm(addr.wrapping_add(cur.pos as u64).wrapping_add(rel as u64) as i64)
    }

    /// The generic interpreter: executes one table entry.
    fn exec(
        form: Form,
        cur: &mut Cursor<'_>,
        pfx: &Prefixes,
        op: u8,
        addr: u64,
        escaped: bool,
    ) -> Result<Instr, DecodeError> {
        let w = pfx.width();
        let rexp = pfx.rex.present;
        let rexb = if pfx.rex.b { 8 } else { 0 };
        let mk = Instr::new;
        match form {
            Form::Invalid => Err(unknown(op, escaped)),
            Form::Escape => {
                let op2 = cur.u8()?;
                exec(SECONDARY[op2 as usize], cur, pfx, op2, addr, true)
            }
            Form::Fixed(m) => Ok(mk(m, vec![], Width::B8)),
            Form::ModRmMR(m, sel) => {
                let opw = sel.resolve(pfx);
                let mr = parse_modrm(cur, pfx, opw)?;
                Ok(mk(m, vec![mr.rm, Operand::Reg(reg_ref(mr.reg, opw, rexp))], opw))
            }
            Form::ModRmRM(m, sel) => {
                let opw = sel.resolve(pfx);
                let mr = parse_modrm(cur, pfx, opw)?;
                Ok(mk(m, vec![Operand::Reg(reg_ref(mr.reg, opw, rexp)), mr.rm], opw))
            }
            Form::AccImm(m, sel) => {
                let opw = sel.resolve(pfx);
                let imm = cur.imm(opw)?;
                Ok(mk(m, vec![Operand::reg(Reg::Rax, opw), Operand::Imm(imm)], opw))
            }
            Form::Grp1 { byte, imm8 } => {
                let opw = if byte { Width::B1 } else { w };
                let mr = parse_modrm(cur, pfx, opw)?;
                let imm = if imm8 { cur.imm(Width::B1)? } else { cur.imm(opw)? };
                let m = GRP1[(mr.reg & 7) as usize];
                Ok(mk(m, vec![mr.rm, Operand::Imm(imm)], opw))
            }
            Form::PushReg => {
                let r = (op & 7) | rexb;
                Ok(mk(Mnemonic::Push, vec![Operand::reg64(Reg::from_number(r))], Width::B8))
            }
            Form::PopReg => {
                let r = (op & 7) | rexb;
                Ok(mk(Mnemonic::Pop, vec![Operand::reg64(Reg::from_number(r))], Width::B8))
            }
            Form::Movsxd => {
                let mr = parse_modrm(cur, pfx, Width::B4)?;
                let dst = Operand::Reg(reg_ref(mr.reg, Width::B8, rexp));
                Ok(mk(Mnemonic::Movsxd, vec![dst, mr.rm], Width::B8))
            }
            Form::PushImm { imm8 } => {
                let imm = cur.imm(if imm8 { Width::B1 } else { Width::B4 })?;
                Ok(mk(Mnemonic::Push, vec![Operand::Imm(imm)], Width::B8))
            }
            Form::ImulImm { imm8 } => {
                let mr = parse_modrm(cur, pfx, w)?;
                let imm = if imm8 { cur.imm(Width::B1)? } else { cur.imm(w)? };
                let dst = Operand::Reg(reg_ref(mr.reg, w, rexp));
                Ok(mk(Mnemonic::Imul, vec![dst, mr.rm, Operand::Imm(imm)], w))
            }
            Form::JccRel8 => {
                let rel = cur.imm(Width::B1)?;
                let target = rel_target(cur, addr, rel);
                Ok(mk(Mnemonic::Jcc(Cond::from_number(op & 0xf)), vec![target], Width::B8))
            }
            Form::Lea => {
                let mr = parse_modrm(cur, pfx, w)?;
                if !mr.rm.is_mem() {
                    return Err(unknown(op, escaped));
                }
                Ok(mk(Mnemonic::Lea, vec![Operand::Reg(reg_ref(mr.reg, w, rexp)), mr.rm], w))
            }
            Form::PopRm => {
                let mr = parse_modrm(cur, pfx, Width::B8)?;
                if mr.reg & 7 != 0 {
                    return Err(DecodeError::UnknownExtension { opcode: op, ext: mr.reg & 7 });
                }
                Ok(mk(Mnemonic::Pop, vec![mr.rm], Width::B8))
            }
            Form::Nop => Ok(mk(Mnemonic::Nop, vec![], Width::B8)),
            Form::XchgAcc => {
                let r = (op & 7) | rexb;
                Ok(mk(
                    Mnemonic::Xchg,
                    vec![Operand::reg(Reg::Rax, w), Operand::Reg(reg_ref(r, w, rexp))],
                    w,
                ))
            }
            Form::ConvertAcc => Ok(match w {
                Width::B2 => mk(Mnemonic::Cbw, vec![], Width::B2),
                Width::B8 => mk(Mnemonic::Cdqe, vec![], Width::B8),
                _ => mk(Mnemonic::Cwde, vec![], Width::B4),
            }),
            Form::ConvertDbl => Ok(match w {
                Width::B2 => mk(Mnemonic::Cwd, vec![], Width::B2),
                Width::B8 => mk(Mnemonic::Cqo, vec![], Width::B8),
                _ => mk(Mnemonic::Cdq, vec![], Width::B4),
            }),
            Form::StringOp(m, sel) => Ok(mk(m, vec![], sel.resolve(pfx))),
            Form::MovR8Imm => {
                let r = (op & 7) | rexb;
                let imm = cur.imm(Width::B1)?;
                Ok(mk(
                    Mnemonic::Mov,
                    vec![Operand::Reg(reg_ref(r, Width::B1, rexp)), Operand::Imm(imm)],
                    Width::B1,
                ))
            }
            Form::MovRImm => {
                let r = (op & 7) | rexb;
                if pfx.rex.w {
                    let imm = cur.u64()? as i64;
                    Ok(mk(
                        Mnemonic::Movabs,
                        vec![Operand::reg64(Reg::from_number(r)), Operand::Imm(imm)],
                        Width::B8,
                    ))
                } else {
                    let imm = match w {
                        Width::B2 => cur.u16()? as i64,
                        _ => cur.u32()? as i64, // mov r32, imm32 zero-extends
                    };
                    Ok(mk(Mnemonic::Mov, vec![Operand::Reg(reg_ref(r, w, rexp)), Operand::Imm(imm)], w))
                }
            }
            Form::Shift { byte, src } => {
                let opw = if byte { Width::B1 } else { w };
                let mr = parse_modrm(cur, pfx, opw)?;
                let m = SHIFT_GRP[(mr.reg & 7) as usize]
                    .ok_or(DecodeError::UnknownExtension { opcode: op, ext: mr.reg & 7 })?;
                let amount = match src {
                    ShiftSrc::Imm8 => Operand::Imm(cur.imm(Width::B1)? & 0xff),
                    ShiftSrc::One => Operand::Imm(1),
                    ShiftSrc::Cl => Operand::reg(Reg::Rcx, Width::B1),
                };
                Ok(mk(m, vec![mr.rm, amount], opw))
            }
            Form::RetImm => {
                let imm = cur.u16()? as i64;
                Ok(mk(Mnemonic::Ret, vec![Operand::Imm(imm)], Width::B8))
            }
            Form::MovMI { byte } => {
                let opw = if byte { Width::B1 } else { w };
                let mr = parse_modrm(cur, pfx, opw)?;
                if mr.reg & 7 != 0 {
                    return Err(DecodeError::UnknownExtension { opcode: op, ext: mr.reg & 7 });
                }
                let imm = cur.imm(opw)?;
                Ok(mk(Mnemonic::Mov, vec![mr.rm, Operand::Imm(imm)], opw))
            }
            Form::LoopOp(m) => {
                let rel = cur.imm(Width::B1)?;
                let target = rel_target(cur, addr, rel);
                Ok(mk(m, vec![target], Width::B8))
            }
            Form::CallRel32 => {
                let rel = cur.imm(Width::B4)?;
                let target = rel_target(cur, addr, rel);
                Ok(mk(Mnemonic::Call, vec![target], Width::B8))
            }
            Form::JmpRel32 => {
                let rel = cur.imm(Width::B4)?;
                let target = rel_target(cur, addr, rel);
                Ok(mk(Mnemonic::Jmp, vec![target], Width::B8))
            }
            Form::JmpRel8 => {
                let rel = cur.imm(Width::B1)?;
                let target = rel_target(cur, addr, rel);
                Ok(mk(Mnemonic::Jmp, vec![target], Width::B8))
            }
            Form::Grp3 { byte } => {
                let opw = if byte { Width::B1 } else { w };
                let mr = parse_modrm(cur, pfx, opw)?;
                match mr.reg & 7 {
                    0 | 1 => {
                        let imm = if byte { cur.imm(Width::B1)? } else { cur.imm(opw)? };
                        Ok(mk(Mnemonic::Test, vec![mr.rm, Operand::Imm(imm)], opw))
                    }
                    2 => Ok(mk(Mnemonic::Not, vec![mr.rm], opw)),
                    3 => Ok(mk(Mnemonic::Neg, vec![mr.rm], opw)),
                    4 => Ok(mk(Mnemonic::Mul, vec![mr.rm], opw)),
                    5 => Ok(mk(Mnemonic::Imul, vec![mr.rm], opw)),
                    6 => Ok(mk(Mnemonic::Div, vec![mr.rm], opw)),
                    _ => Ok(mk(Mnemonic::Idiv, vec![mr.rm], opw)),
                }
            }
            Form::Grp4 => {
                let mr = parse_modrm(cur, pfx, Width::B1)?;
                match mr.reg & 7 {
                    0 => Ok(mk(Mnemonic::Inc, vec![mr.rm], Width::B1)),
                    1 => Ok(mk(Mnemonic::Dec, vec![mr.rm], Width::B1)),
                    e => Err(DecodeError::UnknownExtension { opcode: op, ext: e }),
                }
            }
            Form::Grp5 => {
                let mr = parse_modrm(cur, pfx, w)?;
                match mr.reg & 7 {
                    0 => Ok(mk(Mnemonic::Inc, vec![mr.rm], w)),
                    1 => Ok(mk(Mnemonic::Dec, vec![mr.rm], w)),
                    2 => Ok(mk(Mnemonic::Call, vec![resize(mr.rm, Width::B8, rexp)], Width::B8)),
                    4 => Ok(mk(Mnemonic::Jmp, vec![resize(mr.rm, Width::B8, rexp)], Width::B8)),
                    6 => Ok(mk(Mnemonic::Push, vec![resize(mr.rm, Width::B8, rexp)], Width::B8)),
                    e => Err(DecodeError::UnknownExtension { opcode: op, ext: e }),
                }
            }
            Form::Endbr => {
                if pfx.f3 && cur.peek() == Some(0xfa) {
                    cur.u8()?;
                    Ok(mk(Mnemonic::Endbr64, vec![], Width::B8))
                } else {
                    Err(unknown(op, escaped))
                }
            }
            Form::NopModRm => {
                let mr = parse_modrm(cur, pfx, w)?;
                let _ = mr;
                Ok(mk(Mnemonic::Nop, vec![], w))
            }
            Form::CmovRM => {
                let mr = parse_modrm(cur, pfx, w)?;
                let dst = Operand::Reg(reg_ref(mr.reg, w, rexp));
                Ok(mk(Mnemonic::Cmovcc(Cond::from_number(op & 0xf)), vec![dst, mr.rm], w))
            }
            Form::JccRel32 => {
                let rel = cur.imm(Width::B4)?;
                let target = rel_target(cur, addr, rel);
                Ok(mk(Mnemonic::Jcc(Cond::from_number(op & 0xf)), vec![target], Width::B8))
            }
            Form::SetccRm => {
                let mr = parse_modrm(cur, pfx, Width::B1)?;
                Ok(mk(Mnemonic::Setcc(Cond::from_number(op & 0xf)), vec![mr.rm], Width::B1))
            }
            Form::ShiftDImm(m) => {
                let mr = parse_modrm(cur, pfx, w)?;
                let imm = cur.imm(Width::B1)?;
                Ok(mk(
                    m,
                    vec![mr.rm, Operand::Reg(reg_ref(mr.reg, w, rexp)), Operand::Imm(imm)],
                    w,
                ))
            }
            Form::ShiftDCl(m) => {
                let mr = parse_modrm(cur, pfx, w)?;
                Ok(mk(
                    m,
                    vec![
                        mr.rm,
                        Operand::Reg(reg_ref(mr.reg, w, rexp)),
                        Operand::reg(Reg::Rcx, Width::B1),
                    ],
                    w,
                ))
            }
            Form::MovExt { sign, src16 } => {
                let srcw = if src16 { Width::B2 } else { Width::B1 };
                let mr = parse_modrm(cur, pfx, srcw)?;
                let dst = Operand::Reg(reg_ref(mr.reg, w, rexp));
                let m = if sign { Mnemonic::Movsx } else { Mnemonic::Movzx };
                Ok(mk(m, vec![dst, mr.rm], w))
            }
            Form::PopcntF3 => {
                if !pfx.f3 {
                    return Err(unknown(op, escaped));
                }
                let mr = parse_modrm(cur, pfx, w)?;
                let dst = Operand::Reg(reg_ref(mr.reg, w, rexp));
                Ok(mk(Mnemonic::Popcnt, vec![dst, mr.rm], w))
            }
            Form::BtGrp => {
                let mr = parse_modrm(cur, pfx, w)?;
                let m = match mr.reg & 7 {
                    4 => Mnemonic::Bt,
                    5 => Mnemonic::Bts,
                    6 => Mnemonic::Btr,
                    7 => Mnemonic::Btc,
                    e => return Err(DecodeError::UnknownExtension { opcode: op, ext: e }),
                };
                let imm = cur.imm(Width::B1)?;
                Ok(mk(m, vec![mr.rm, Operand::Imm(imm & 0xff)], w))
            }
            Form::BsfTzcnt => {
                let mr = parse_modrm(cur, pfx, w)?;
                let dst = Operand::Reg(reg_ref(mr.reg, w, rexp));
                let m = if pfx.f3 { Mnemonic::Tzcnt } else { Mnemonic::Bsf };
                Ok(mk(m, vec![dst, mr.rm], w))
            }
            Form::Bswap => {
                let r = (op & 7) | rexb;
                let bw = if pfx.rex.w { Width::B8 } else { Width::B4 };
                Ok(mk(Mnemonic::Bswap, vec![Operand::Reg(reg_ref(r, bw, rexp))], bw))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(bytes: &[u8]) -> Instr {
        decode(bytes, 0x1000).expect("decodes")
    }

    #[test]
    fn mov_reg_reg() {
        let i = d(&[0x48, 0x89, 0xe5]);
        assert_eq!(i.mnemonic, Mnemonic::Mov);
        assert_eq!(i.len, 3);
        assert_eq!(i.operands, vec![Operand::reg64(Reg::Rbp), Operand::reg64(Reg::Rsp)]);
    }

    #[test]
    fn mov_r32_clears_width() {
        // 89 d8 = mov eax, ebx
        let i = d(&[0x89, 0xd8]);
        assert_eq!(i.width, Width::B4);
        assert_eq!(i.operands[0], Operand::reg(Reg::Rax, Width::B4));
    }

    #[test]
    fn rex_extended_regs() {
        // 4d 89 c8 = mov r8, r9
        let i = d(&[0x4d, 0x89, 0xc8]);
        assert_eq!(i.operands, vec![Operand::reg64(Reg::R8), Operand::reg64(Reg::R9)]);
    }

    #[test]
    fn high_byte_regs_without_rex() {
        // 88 e0 = mov al, ah
        let i = d(&[0x88, 0xe0]);
        assert_eq!(i.operands[0], Operand::reg(Reg::Rax, Width::B1));
        assert_eq!(i.operands[1], Operand::Reg(RegRef::high(Reg::Rax)));
    }

    #[test]
    fn spl_with_rex() {
        // 40 88 e0 = mov al, spl
        let i = d(&[0x40, 0x88, 0xe0]);
        assert_eq!(i.operands[1], Operand::reg(Reg::Rsp, Width::B1));
    }

    #[test]
    fn sib_with_scale() {
        // 8b 04 8d 00 100000 = mov eax, [rcx*4 + 0x1000]
        let i = d(&[0x8b, 0x04, 0x8d, 0x00, 0x10, 0x00, 0x00]);
        match &i.operands[1] {
            Operand::Mem(m) => {
                assert_eq!(m.base, None);
                assert_eq!(m.index, Some(Reg::Rcx));
                assert_eq!(m.scale, 4);
                assert_eq!(m.disp, 0x1000);
            }
            other => panic!("expected mem, got {other:?}"),
        }
    }

    #[test]
    fn rip_relative() {
        // 48 8b 05 10 00 00 00 = mov rax, [rip+0x10]
        let i = d(&[0x48, 0x8b, 0x05, 0x10, 0x00, 0x00, 0x00]);
        match &i.operands[1] {
            Operand::Mem(m) => {
                assert!(m.rip_relative);
                assert_eq!(m.disp, 0x10);
            }
            other => panic!("expected mem, got {other:?}"),
        }
    }

    #[test]
    fn jcc_target_resolution() {
        // at 0x1000: 74 05 = je 0x1007
        let i = d(&[0x74, 0x05]);
        assert_eq!(i.mnemonic, Mnemonic::Jcc(Cond::E));
        assert_eq!(i.direct_target(), Some(0x1007));
        // backward: eb fe = jmp self
        let j = d(&[0xeb, 0xfe]);
        assert_eq!(j.direct_target(), Some(0x1000));
    }

    #[test]
    fn call_rel32() {
        // e8 fb 00 00 00 at 0x1000 -> call 0x1100
        let i = d(&[0xe8, 0xfb, 0x00, 0x00, 0x00]);
        assert_eq!(i.mnemonic, Mnemonic::Call);
        assert_eq!(i.direct_target(), Some(0x1100));
    }

    #[test]
    fn indirect_jmp_through_mem() {
        // ff 27 = jmp qword [rdi]  (the §2 example's final instruction)
        let i = d(&[0xff, 0x27]);
        assert_eq!(i.mnemonic, Mnemonic::Jmp);
        assert!(i.is_indirect_branch());
        match &i.operands[0] {
            Operand::Mem(m) => assert_eq!(m.size, Width::B8),
            other => panic!("expected mem, got {other:?}"),
        }
    }

    #[test]
    fn movabs() {
        let i = d(&[0x48, 0xb8, 1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(i.mnemonic, Mnemonic::Movabs);
        assert_eq!(i.operands[1], Operand::Imm(0x0807060504030201));
        assert_eq!(i.len, 10);
    }

    #[test]
    fn group1_imm8_sext() {
        // 48 83 ec 28 = sub rsp, 0x28
        let i = d(&[0x48, 0x83, 0xec, 0x28]);
        assert_eq!(i.mnemonic, Mnemonic::Sub);
        assert_eq!(i.operands, vec![Operand::reg64(Reg::Rsp), Operand::Imm(0x28)]);
        // 48 83 c0 ff = add rax, -1
        let j = d(&[0x48, 0x83, 0xc0, 0xff]);
        assert_eq!(j.operands[1], Operand::Imm(-1));
    }

    #[test]
    fn movzx_widths() {
        // 0f b6 c0 = movzx eax, al
        let i = d(&[0x0f, 0xb6, 0xc0]);
        assert_eq!(i.mnemonic, Mnemonic::Movzx);
        assert_eq!(i.operands[0], Operand::reg(Reg::Rax, Width::B4));
        assert_eq!(i.operands[1], Operand::reg(Reg::Rax, Width::B1));
    }

    #[test]
    fn endbr64() {
        let i = d(&[0xf3, 0x0f, 0x1e, 0xfa]);
        assert_eq!(i.mnemonic, Mnemonic::Endbr64);
        assert_eq!(i.len, 4);
    }

    #[test]
    fn rep_stosq() {
        let i = d(&[0xf3, 0x48, 0xab]);
        assert_eq!(i.mnemonic, Mnemonic::Stos);
        assert_eq!(i.width, Width::B8);
        assert_eq!(i.rep, Some(RepPrefix::Rep));
    }

    #[test]
    fn ret_is_c3() {
        let i = d(&[0xc3]);
        assert_eq!(i.mnemonic, Mnemonic::Ret);
        assert_eq!(i.len, 1);
    }

    #[test]
    fn shift_group() {
        // 48 c1 e0 04 = shl rax, 4
        let i = d(&[0x48, 0xc1, 0xe0, 0x04]);
        assert_eq!(i.mnemonic, Mnemonic::Shl);
        assert_eq!(i.operands[1], Operand::Imm(4));
        // 48 d3 f8 = sar rax, cl
        let j = d(&[0x48, 0xd3, 0xf8]);
        assert_eq!(j.mnemonic, Mnemonic::Sar);
        assert_eq!(j.operands[1], Operand::reg(Reg::Rcx, Width::B1));
    }

    #[test]
    fn leave_and_multibyte_nop() {
        assert_eq!(d(&[0xc9]).mnemonic, Mnemonic::Leave);
        let nop = d(&[0x0f, 0x1f, 0x44, 0x00, 0x00]);
        assert_eq!(nop.mnemonic, Mnemonic::Nop);
        assert_eq!(nop.len, 5);
    }

    #[test]
    fn truncated_and_unknown() {
        assert_eq!(decode(&[0x48], 0), Err(DecodeError::Truncated));
        assert!(matches!(decode(&[0x0f, 0xff], 0), Err(DecodeError::UnknownOpcode { .. })));
        assert_eq!(decode(&[0x67, 0x8b, 0x00], 0), Err(DecodeError::UnsupportedPrefix(0x67)));
    }

    #[test]
    fn mov_mem_imm_sizes() {
        // c7 06 01 00 00 00 = mov dword [rsi], 1   (the §2 example's 4th instr)
        let i = d(&[0xc7, 0x06, 0x01, 0x00, 0x00, 0x00]);
        assert_eq!(i.mnemonic, Mnemonic::Mov);
        assert_eq!(i.width, Width::B4);
        match &i.operands[0] {
            Operand::Mem(m) => {
                assert_eq!(m.base, Some(Reg::Rsi));
                assert_eq!(m.size, Width::B4);
            }
            other => panic!("expected mem, got {other:?}"),
        }
        assert_eq!(i.operands[1], Operand::Imm(1));
    }

    #[test]
    fn group3_div() {
        // 48 f7 f1 = div rcx
        let i = d(&[0x48, 0xf7, 0xf1]);
        assert_eq!(i.mnemonic, Mnemonic::Div);
        assert_eq!(i.operands, vec![Operand::reg64(Reg::Rcx)]);
    }

    #[test]
    fn rbp_base_needs_disp() {
        // 8b 45 00 = mov eax, [rbp+0]
        let i = d(&[0x8b, 0x45, 0x00]);
        match &i.operands[1] {
            Operand::Mem(m) => {
                assert_eq!(m.base, Some(Reg::Rbp));
                assert_eq!(m.disp, 0);
            }
            other => panic!("expected mem, got {other:?}"),
        }
    }

    #[test]
    fn r12_base_uses_sib() {
        // 49 8b 04 24 = mov rax, [r12]
        let i = d(&[0x49, 0x8b, 0x04, 0x24]);
        match &i.operands[1] {
            Operand::Mem(m) => {
                assert_eq!(m.base, Some(Reg::R12));
                assert_eq!(m.index, None);
            }
            other => panic!("expected mem, got {other:?}"),
        }
    }

    #[test]
    fn r13_base_mod0_is_disp() {
        // 49 8b 45 00 = mov rax, [r13+0]
        let i = d(&[0x49, 0x8b, 0x45, 0x00]);
        match &i.operands[1] {
            Operand::Mem(m) => assert_eq!(m.base, Some(Reg::R13)),
            other => panic!("expected mem, got {other:?}"),
        }
    }

    /// Reject keys are stable histogram buckets: identity bytes in,
    /// operand detail out.
    #[test]
    fn reject_keys_bucket_by_identity() {
        assert_eq!(DecodeError::Truncated.reject_key(), "truncated");
        assert_eq!(DecodeError::TooLong.reject_key(), "too-long");
        assert_eq!(DecodeError::UnknownOpcode { opcode: vec![0x0f, 0x05] }.reject_key(), "opcode:0f05");
        assert_eq!(DecodeError::UnknownExtension { opcode: 0xff, ext: 7 }.reject_key(), "ext:ff/7");
        assert_eq!(DecodeError::UnsupportedPrefix(0x67).reject_key(), "prefix:67");

        // The keys the decoder actually produces for real byte
        // sequences: an unimplemented 0f-escape and the reserved /7
        // of group 5.
        assert_eq!(decode(&[0x0f, 0xff], 0).unwrap_err().reject_key(), "opcode:0fff");
        assert_eq!(decode(&[0x67, 0x8b, 0x00], 0).unwrap_err().reject_key(), "prefix:67");
        assert_eq!(decode(&[0xff, 0xf8], 0).unwrap_err().reject_key(), "ext:ff/7");
        assert_eq!(decode(&[0x48], 0).unwrap_err().reject_key(), "truncated");
    }
}
