//! x86-64 instruction encoder.
//!
//! The inverse of [`decode`](crate::decode): used by `hgl-asm` to
//! synthesize ELF test binaries, and round-trip-tested against the
//! decoder. Branches always use their rel32 forms, so encoded lengths
//! are deterministic given the instruction alone (two-pass layout in
//! the assembler needs no relaxation).

use crate::instr::RepPrefix;
use crate::{Instr, MemOperand, Mnemonic, Operand, Reg, RegRef, Width};
use std::fmt;

/// Errors produced by [`encode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// The operand combination has no encoding in the supported subset.
    BadOperands(&'static str),
    /// An immediate does not fit the encodable range.
    ImmediateOutOfRange,
    /// A branch displacement does not fit in rel32.
    BranchOutOfRange,
    /// A high-byte register (`ah`…`bh`) was combined with an operand
    /// that requires a REX prefix.
    RexConflict,
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::BadOperands(ctx) => write!(f, "unencodable operand combination: {ctx}"),
            EncodeError::ImmediateOutOfRange => write!(f, "immediate out of range"),
            EncodeError::BranchOutOfRange => write!(f, "branch displacement exceeds rel32"),
            EncodeError::RexConflict => write!(f, "high-byte register requires no REX prefix"),
        }
    }
}

impl std::error::Error for EncodeError {}

#[derive(Default)]
struct Enc {
    rep: Option<RepPrefix>,
    f3: bool,
    opsize: bool,
    rex_w: bool,
    rex_r: bool,
    rex_x: bool,
    rex_b: bool,
    /// Low-byte register 4–7 used (spl/bpl/sil/dil): REX required.
    force_rex: bool,
    /// High-byte register used: REX forbidden.
    forbid_rex: bool,
    opcode: Vec<u8>,
    modrm: Option<u8>,
    sib: Option<u8>,
    disp: Vec<u8>,
    imm: Vec<u8>,
}

impl Enc {
    fn width(&mut self, w: Width) {
        match w {
            Width::B2 => self.opsize = true,
            Width::B8 => self.rex_w = true,
            _ => {}
        }
    }

    /// Register number for the ModRM `reg` field (or opcode+r), noting
    /// REX requirements.
    fn reg_bits(&mut self, r: RegRef) -> u8 {
        if r.high8 {
            self.forbid_rex = true;
            return r.reg.number() + 4;
        }
        if r.width == Width::B1 && (4..8).contains(&r.reg.number()) {
            self.force_rex = true;
        }
        r.reg.number()
    }

    fn set_rm(&mut self, rm: &Operand, reg_field: u8) -> Result<(), EncodeError> {
        if reg_field >= 8 {
            self.rex_r = true;
        }
        let reg_field = reg_field & 7;
        match rm {
            Operand::Reg(r) => {
                let n = self.reg_bits(*r);
                if n >= 8 {
                    self.rex_b = true;
                }
                self.modrm = Some(0xc0 | reg_field << 3 | (n & 7));
                Ok(())
            }
            Operand::Mem(m) => self.set_mem(m, reg_field),
            Operand::Imm(_) => Err(EncodeError::BadOperands("immediate in r/m position")),
        }
    }

    fn set_mem(&mut self, m: &MemOperand, reg_field: u8) -> Result<(), EncodeError> {
        if m.rip_relative {
            self.modrm = Some(reg_field << 3 | 5);
            let d = i32::try_from(m.disp).map_err(|_| EncodeError::ImmediateOutOfRange)?;
            self.disp = d.to_le_bytes().to_vec();
            return Ok(());
        }
        let disp32 = || -> Result<Vec<u8>, EncodeError> {
            let d = i32::try_from(m.disp).map_err(|_| EncodeError::ImmediateOutOfRange)?;
            Ok(d.to_le_bytes().to_vec())
        };
        match (m.base, m.index) {
            (None, None) => {
                // [disp32] — SIB form with no base, no index.
                self.modrm = Some(reg_field << 3 | 4);
                self.sib = Some(0x25);
                self.disp = disp32()?;
                Ok(())
            }
            (base, Some(idx)) => {
                if idx == Reg::Rsp {
                    return Err(EncodeError::BadOperands("rsp as index"));
                }
                let scale_bits = match m.scale {
                    1 => 0u8,
                    2 => 1,
                    4 => 2,
                    8 => 3,
                    _ => return Err(EncodeError::BadOperands("scale")),
                };
                let idx_n = idx.number();
                if idx_n >= 8 {
                    self.rex_x = true;
                }
                match base {
                    None => {
                        self.modrm = Some(reg_field << 3 | 4);
                        self.sib = Some(scale_bits << 6 | (idx_n & 7) << 3 | 5);
                        self.disp = disp32()?;
                    }
                    Some(b) => {
                        let b_n = b.number();
                        if b_n >= 8 {
                            self.rex_b = true;
                        }
                        let (md, disp) = self.disp_mode(m.disp, b_n)?;
                        self.modrm = Some(md << 6 | reg_field << 3 | 4);
                        self.sib = Some(scale_bits << 6 | (idx_n & 7) << 3 | (b_n & 7));
                        self.disp = disp;
                    }
                }
                Ok(())
            }
            (Some(b), None) => {
                let b_n = b.number();
                if b_n >= 8 {
                    self.rex_b = true;
                }
                if b_n & 7 == 4 {
                    // rsp/r12 base needs a SIB byte.
                    let (md, disp) = self.disp_mode(m.disp, b_n)?;
                    self.modrm = Some(md << 6 | reg_field << 3 | 4);
                    self.sib = Some(0x20 | (b_n & 7));
                    self.disp = disp;
                } else {
                    let (md, disp) = self.disp_mode(m.disp, b_n)?;
                    self.modrm = Some(md << 6 | reg_field << 3 | (b_n & 7));
                    self.disp = disp;
                }
                Ok(())
            }
        }
    }

    /// Choose the shortest mod/displacement encoding for a based access.
    fn disp_mode(&self, disp: i64, base_n: u8) -> Result<(u8, Vec<u8>), EncodeError> {
        if disp == 0 && base_n & 7 != 5 {
            Ok((0, vec![]))
        } else if let Ok(d8) = i8::try_from(disp) {
            Ok((1, vec![d8 as u8]))
        } else {
            let d = i32::try_from(disp).map_err(|_| EncodeError::ImmediateOutOfRange)?;
            Ok((2, d.to_le_bytes().to_vec()))
        }
    }

    fn finish(self) -> Result<Vec<u8>, EncodeError> {
        let mut out = Vec::with_capacity(15);
        match self.rep {
            Some(RepPrefix::Rep) => out.push(0xf3),
            Some(RepPrefix::Repne) => out.push(0xf2),
            None => {}
        }
        if self.f3 {
            out.push(0xf3);
        }
        if self.opsize {
            out.push(0x66);
        }
        let rex_bits = (self.rex_w as u8) << 3 | (self.rex_r as u8) << 2 | (self.rex_x as u8) << 1 | self.rex_b as u8;
        let need_rex = rex_bits != 0 || self.force_rex;
        if need_rex {
            if self.forbid_rex {
                return Err(EncodeError::RexConflict);
            }
            out.push(0x40 | rex_bits);
        }
        out.extend_from_slice(&self.opcode);
        if let Some(m) = self.modrm {
            out.push(m);
        }
        if let Some(s) = self.sib {
            out.push(s);
        }
        out.extend_from_slice(&self.disp);
        out.extend_from_slice(&self.imm);
        Ok(out)
    }
}

fn expect_reg(op: &Operand, ctx: &'static str) -> Result<RegRef, EncodeError> {
    match op {
        Operand::Reg(r) => Ok(*r),
        _ => Err(EncodeError::BadOperands(ctx)),
    }
}

fn expect_imm(op: &Operand, ctx: &'static str) -> Result<i64, EncodeError> {
    match op {
        Operand::Imm(i) => Ok(*i),
        _ => Err(EncodeError::BadOperands(ctx)),
    }
}

fn imm_bytes(v: i64, w: Width) -> Result<Vec<u8>, EncodeError> {
    Ok(match w {
        Width::B1 => vec![v as u8],
        Width::B2 => (v as i16).to_le_bytes().to_vec(),
        Width::B4 | Width::B8 => i32::try_from(v)
            .map(|d| d.to_le_bytes().to_vec())
            .or_else(|_| {
                // mov r32, imm32 zero-extends: allow 0..=u32::MAX too.
                if w == Width::B4 && (0..=u32::MAX as i64).contains(&v) {
                    Ok((v as u32).to_le_bytes().to_vec())
                } else {
                    Err(EncodeError::ImmediateOutOfRange)
                }
            })?,
    })
}

/// Group-1 ALU base opcodes (the `op << 3` row of the one-byte map).
fn group1_index(m: Mnemonic) -> Option<u8> {
    Some(match m {
        Mnemonic::Add => 0,
        Mnemonic::Or => 1,
        Mnemonic::Adc => 2,
        Mnemonic::Sbb => 3,
        Mnemonic::And => 4,
        Mnemonic::Sub => 5,
        Mnemonic::Xor => 6,
        Mnemonic::Cmp => 7,
        _ => return None,
    })
}

fn shift_index(m: Mnemonic) -> Option<u8> {
    Some(match m {
        Mnemonic::Rol => 0,
        Mnemonic::Ror => 1,
        Mnemonic::Rcl => 2,
        Mnemonic::Rcr => 3,
        Mnemonic::Shl => 4,
        Mnemonic::Shr => 5,
        Mnemonic::Sar => 7,
        _ => return None,
    })
}

/// Encode `instr` (whose `addr` must be set for direct branches, since
/// targets are stored absolute).
///
/// # Errors
///
/// Returns an [`EncodeError`] if the operand combination is not
/// encodable, an immediate or branch displacement is out of range, or a
/// high-byte register conflicts with a REX prefix.
///
/// ```
/// use hgl_x86::{encode, decode, Instr, Mnemonic, Operand, Reg, Width};
/// let mut mov = Instr::new(
///     Mnemonic::Mov,
///     vec![Operand::reg64(Reg::Rbp), Operand::reg64(Reg::Rsp)],
///     Width::B8,
/// );
/// let bytes = encode(&mov)?;
/// mov.len = bytes.len() as u8;
/// assert_eq!(decode(&bytes, 0)?, mov);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn encode(instr: &Instr) -> Result<Vec<u8>, EncodeError> {
    let mut e = Enc { rep: instr.rep, ..Enc::default() };
    let ops = &instr.operands;
    let w = instr.width;

    // Length of everything already queued plus `extra` upcoming bytes,
    // for rel32 computation. REX presence must be decided before this
    // is called, so branches (no register operands needing REX) are safe.
    let rel32 = |e: &Enc, instr: &Instr, opcode_len: usize| -> Result<Vec<u8>, EncodeError> {
        let target = expect_imm(&instr.operands[0], "branch target")? as u64;
        let len = opcode_len + 4 + e.opsize as usize;
        let next = instr.addr.wrapping_add(len as u64);
        let rel = target.wrapping_sub(next) as i64;
        let r32 = i32::try_from((rel << 32) >> 32).map_err(|_| EncodeError::BranchOutOfRange)?;
        if (r32 as i64 as u64).wrapping_add(next) != target {
            return Err(EncodeError::BranchOutOfRange);
        }
        Ok(r32.to_le_bytes().to_vec())
    };

    match instr.mnemonic {
        m if group1_index(m).is_some() => {
            let base = group1_index(m).unwrap() << 3;
            e.width(w);
            match (&ops[0], &ops[1]) {
                (rm, Operand::Reg(src)) if !matches!(rm, Operand::Imm(_)) => {
                    let reg = e.reg_bits(*src);
                    e.opcode = vec![base | if w == Width::B1 { 0x00 } else { 0x01 }];
                    e.set_rm(rm, reg)?;
                }
                (Operand::Reg(dst), rm @ Operand::Mem(_)) => {
                    let reg = e.reg_bits(*dst);
                    e.opcode = vec![base | if w == Width::B1 { 0x02 } else { 0x03 }];
                    e.set_rm(rm, reg)?;
                }
                (rm, Operand::Imm(v)) => {
                    if w == Width::B1 {
                        e.opcode = vec![0x80];
                        e.set_rm(rm, base >> 3)?;
                        e.imm = imm_bytes(*v, Width::B1)?;
                    } else if i8::try_from(*v).is_ok() {
                        e.opcode = vec![0x83];
                        e.set_rm(rm, base >> 3)?;
                        e.imm = vec![*v as u8];
                    } else {
                        e.opcode = vec![0x81];
                        e.set_rm(rm, base >> 3)?;
                        e.imm = imm_bytes(*v, w)?;
                    }
                }
                _ => return Err(EncodeError::BadOperands("group1")),
            }
        }
        Mnemonic::Mov => {
            e.width(w);
            match (&ops[0], &ops[1]) {
                (rm, Operand::Reg(src)) if !matches!(rm, Operand::Imm(_)) => {
                    let reg = e.reg_bits(*src);
                    e.opcode = vec![if w == Width::B1 { 0x88 } else { 0x89 }];
                    e.set_rm(rm, reg)?;
                }
                (Operand::Reg(dst), rm @ Operand::Mem(_)) => {
                    let reg = e.reg_bits(*dst);
                    e.opcode = vec![if w == Width::B1 { 0x8a } else { 0x8b }];
                    e.set_rm(rm, reg)?;
                }
                (Operand::Reg(dst), Operand::Imm(v)) if w == Width::B4 || w == Width::B2 || w == Width::B1 => {
                    // B0+r / B8+r short forms.
                    let n = e.reg_bits(*dst);
                    if n >= 8 {
                        e.rex_b = true;
                    }
                    e.opcode = vec![if w == Width::B1 { 0xb0 } else { 0xb8 } + (n & 7)];
                    e.imm = imm_bytes(*v, w)?;
                }
                (rm, Operand::Imm(v)) => {
                    e.opcode = vec![if w == Width::B1 { 0xc6 } else { 0xc7 }];
                    e.set_rm(rm, 0)?;
                    e.imm = imm_bytes(*v, w)?;
                }
                _ => return Err(EncodeError::BadOperands("mov")),
            }
        }
        Mnemonic::Movabs => {
            let dst = expect_reg(&ops[0], "movabs dest")?;
            let v = expect_imm(&ops[1], "movabs imm")?;
            e.rex_w = true;
            let n = dst.reg.number();
            if n >= 8 {
                e.rex_b = true;
            }
            e.opcode = vec![0xb8 + (n & 7)];
            e.imm = v.to_le_bytes().to_vec();
        }
        Mnemonic::Movzx | Mnemonic::Movsx => {
            let dst = expect_reg(&ops[0], "movzx/movsx dest")?;
            let srcw = ops[1].width().ok_or(EncodeError::BadOperands("movzx src"))?;
            e.width(w);
            let reg = e.reg_bits(dst);
            let base = if instr.mnemonic == Mnemonic::Movzx { 0xb6 } else { 0xbe };
            e.opcode = vec![0x0f, base + u8::from(srcw == Width::B2)];
            e.set_rm(&ops[1], reg)?;
        }
        Mnemonic::Movsxd => {
            let dst = expect_reg(&ops[0], "movsxd dest")?;
            e.rex_w = true;
            let reg = e.reg_bits(dst);
            e.opcode = vec![0x63];
            e.set_rm(&ops[1], reg)?;
        }
        Mnemonic::Lea => {
            let dst = expect_reg(&ops[0], "lea dest")?;
            e.width(w);
            let reg = e.reg_bits(dst);
            e.opcode = vec![0x8d];
            e.set_rm(&ops[1], reg)?;
        }
        Mnemonic::Xchg => {
            let src = expect_reg(&ops[1], "xchg src")?;
            e.width(w);
            let reg = e.reg_bits(src);
            e.opcode = vec![if w == Width::B1 { 0x86 } else { 0x87 }];
            e.set_rm(&ops[0], reg)?;
        }
        Mnemonic::Cmovcc(c) => {
            let dst = expect_reg(&ops[0], "cmov dest")?;
            e.width(w);
            let reg = e.reg_bits(dst);
            e.opcode = vec![0x0f, 0x40 | c.number()];
            e.set_rm(&ops[1], reg)?;
        }
        Mnemonic::Setcc(c) => {
            e.opcode = vec![0x0f, 0x90 | c.number()];
            e.set_rm(&ops[0], 0)?;
        }
        Mnemonic::Push => match &ops[0] {
            Operand::Reg(r) => {
                let n = r.reg.number();
                if n >= 8 {
                    e.rex_b = true;
                }
                e.opcode = vec![0x50 + (n & 7)];
            }
            Operand::Imm(v) => {
                if let Ok(v8) = i8::try_from(*v) {
                    e.opcode = vec![0x6a];
                    e.imm = vec![v8 as u8];
                } else {
                    e.opcode = vec![0x68];
                    e.imm = imm_bytes(*v, Width::B4)?;
                }
            }
            rm @ Operand::Mem(_) => {
                e.opcode = vec![0xff];
                e.set_rm(rm, 6)?;
            }
        },
        Mnemonic::Pop => match &ops[0] {
            Operand::Reg(r) => {
                let n = r.reg.number();
                if n >= 8 {
                    e.rex_b = true;
                }
                e.opcode = vec![0x58 + (n & 7)];
            }
            rm @ Operand::Mem(_) => {
                e.opcode = vec![0x8f];
                e.set_rm(rm, 0)?;
            }
            Operand::Imm(_) => return Err(EncodeError::BadOperands("pop imm")),
        },
        Mnemonic::Inc | Mnemonic::Dec => {
            e.width(w);
            e.opcode = vec![if w == Width::B1 { 0xfe } else { 0xff }];
            e.set_rm(&ops[0], u8::from(instr.mnemonic == Mnemonic::Dec))?;
        }
        Mnemonic::Not | Mnemonic::Neg | Mnemonic::Mul | Mnemonic::Div | Mnemonic::Idiv => {
            e.width(w);
            e.opcode = vec![if w == Width::B1 { 0xf6 } else { 0xf7 }];
            let ext = match instr.mnemonic {
                Mnemonic::Not => 2,
                Mnemonic::Neg => 3,
                Mnemonic::Mul => 4,
                Mnemonic::Div => 6,
                _ => 7,
            };
            e.set_rm(&ops[0], ext)?;
        }
        Mnemonic::Imul => {
            e.width(w);
            match ops.len() {
                1 => {
                    e.opcode = vec![if w == Width::B1 { 0xf6 } else { 0xf7 }];
                    e.set_rm(&ops[0], 5)?;
                }
                2 => {
                    let dst = expect_reg(&ops[0], "imul dest")?;
                    let reg = e.reg_bits(dst);
                    e.opcode = vec![0x0f, 0xaf];
                    e.set_rm(&ops[1], reg)?;
                }
                _ => {
                    let dst = expect_reg(&ops[0], "imul dest")?;
                    let v = expect_imm(&ops[2], "imul imm")?;
                    let reg = e.reg_bits(dst);
                    if let Ok(v8) = i8::try_from(v) {
                        e.opcode = vec![0x6b];
                        e.set_rm(&ops[1], reg)?;
                        e.imm = vec![v8 as u8];
                    } else {
                        e.opcode = vec![0x69];
                        e.set_rm(&ops[1], reg)?;
                        e.imm = imm_bytes(v, w)?;
                    }
                }
            }
        }
        Mnemonic::Test => {
            e.width(w);
            match (&ops[0], &ops[1]) {
                (rm, Operand::Reg(src)) => {
                    let reg = e.reg_bits(*src);
                    e.opcode = vec![if w == Width::B1 { 0x84 } else { 0x85 }];
                    e.set_rm(rm, reg)?;
                }
                (rm, Operand::Imm(v)) => {
                    e.opcode = vec![if w == Width::B1 { 0xf6 } else { 0xf7 }];
                    e.set_rm(rm, 0)?;
                    e.imm = imm_bytes(*v, w)?;
                }
                _ => return Err(EncodeError::BadOperands("test")),
            }
        }
        m if shift_index(m).is_some() => {
            let ext = shift_index(m).unwrap();
            e.width(w);
            match &ops[1] {
                Operand::Imm(1) => {
                    e.opcode = vec![if w == Width::B1 { 0xd0 } else { 0xd1 }];
                    e.set_rm(&ops[0], ext)?;
                }
                Operand::Imm(v) => {
                    e.opcode = vec![if w == Width::B1 { 0xc0 } else { 0xc1 }];
                    e.set_rm(&ops[0], ext)?;
                    e.imm = vec![*v as u8];
                }
                Operand::Reg(r) if r.reg == Reg::Rcx && r.width == Width::B1 => {
                    e.opcode = vec![if w == Width::B1 { 0xd2 } else { 0xd3 }];
                    e.set_rm(&ops[0], ext)?;
                }
                _ => return Err(EncodeError::BadOperands("shift amount")),
            }
        }
        Mnemonic::Shld | Mnemonic::Shrd => {
            let src = expect_reg(&ops[1], "shld src")?;
            e.width(w);
            let reg = e.reg_bits(src);
            let base = if instr.mnemonic == Mnemonic::Shld { 0xa4 } else { 0xac };
            match &ops[2] {
                Operand::Imm(v) => {
                    e.opcode = vec![0x0f, base];
                    e.set_rm(&ops[0], reg)?;
                    e.imm = vec![*v as u8];
                }
                Operand::Reg(r) if r.reg == Reg::Rcx => {
                    e.opcode = vec![0x0f, base + 1];
                    e.set_rm(&ops[0], reg)?;
                }
                _ => return Err(EncodeError::BadOperands("shld amount")),
            }
        }
        Mnemonic::Bt | Mnemonic::Bts | Mnemonic::Btr | Mnemonic::Btc => {
            e.width(w);
            let (reg_op, ext) = match instr.mnemonic {
                Mnemonic::Bt => (0xa3, 4),
                Mnemonic::Bts => (0xab, 5),
                Mnemonic::Btr => (0xb3, 6),
                _ => (0xbb, 7),
            };
            match &ops[1] {
                Operand::Reg(src) => {
                    let reg = e.reg_bits(*src);
                    e.opcode = vec![0x0f, reg_op];
                    e.set_rm(&ops[0], reg)?;
                }
                Operand::Imm(v) => {
                    e.opcode = vec![0x0f, 0xba];
                    e.set_rm(&ops[0], ext)?;
                    e.imm = vec![*v as u8];
                }
                _ => return Err(EncodeError::BadOperands("bt source")),
            }
        }
        Mnemonic::Bsf | Mnemonic::Bsr | Mnemonic::Tzcnt | Mnemonic::Popcnt => {
            let dst = expect_reg(&ops[0], "bitscan dest")?;
            e.width(w);
            let reg = e.reg_bits(dst);
            match instr.mnemonic {
                Mnemonic::Bsf => e.opcode = vec![0x0f, 0xbc],
                Mnemonic::Bsr => e.opcode = vec![0x0f, 0xbd],
                Mnemonic::Tzcnt => {
                    e.f3 = true;
                    e.opcode = vec![0x0f, 0xbc];
                }
                _ => {
                    e.f3 = true;
                    e.opcode = vec![0x0f, 0xb8];
                }
            }
            e.set_rm(&ops[1], reg)?;
        }
        Mnemonic::Cbw | Mnemonic::Cwde | Mnemonic::Cdqe => {
            e.width(match instr.mnemonic {
                Mnemonic::Cbw => Width::B2,
                Mnemonic::Cdqe => Width::B8,
                _ => Width::B4,
            });
            e.opcode = vec![0x98];
        }
        Mnemonic::Cwd | Mnemonic::Cdq | Mnemonic::Cqo => {
            e.width(match instr.mnemonic {
                Mnemonic::Cwd => Width::B2,
                Mnemonic::Cqo => Width::B8,
                _ => Width::B4,
            });
            e.opcode = vec![0x99];
        }
        Mnemonic::Jmp => match &ops[0] {
            Operand::Imm(_) => {
                e.opcode = vec![0xe9];
                e.imm = rel32(&e, instr, 1)?;
            }
            rm => {
                e.opcode = vec![0xff];
                e.set_rm(rm, 4)?;
            }
        },
        Mnemonic::Jcc(c) => {
            e.opcode = vec![0x0f, 0x80 | c.number()];
            e.imm = rel32(&e, instr, 2)?;
        }
        Mnemonic::Jrcxz | Mnemonic::Loop | Mnemonic::Loope | Mnemonic::Loopne => {
            // rel8-only forms.
            let target = expect_imm(&instr.operands[0], "loop target")? as u64;
            let next = instr.addr.wrapping_add(2);
            let rel = target.wrapping_sub(next) as i64;
            let r8 = i8::try_from((rel << 56) >> 56).map_err(|_| EncodeError::BranchOutOfRange)?;
            if (r8 as i64 as u64).wrapping_add(next) != target {
                return Err(EncodeError::BranchOutOfRange);
            }
            e.opcode = vec![match instr.mnemonic {
                Mnemonic::Loopne => 0xe0,
                Mnemonic::Loope => 0xe1,
                Mnemonic::Loop => 0xe2,
                _ => 0xe3,
            }];
            e.imm = vec![r8 as u8];
        }
        Mnemonic::Call => match &ops[0] {
            Operand::Imm(_) => {
                e.opcode = vec![0xe8];
                e.imm = rel32(&e, instr, 1)?;
            }
            rm => {
                e.opcode = vec![0xff];
                e.set_rm(rm, 2)?;
            }
        },
        Mnemonic::Ret => {
            if let Some(Operand::Imm(v)) = ops.first() {
                e.opcode = vec![0xc2];
                e.imm = (*v as u16).to_le_bytes().to_vec();
            } else {
                e.opcode = vec![0xc3];
            }
        }
        Mnemonic::Leave => e.opcode = vec![0xc9],
        Mnemonic::Nop => e.opcode = vec![0x90],
        Mnemonic::Endbr64 => {
            e.f3 = true;
            e.opcode = vec![0x0f, 0x1e, 0xfa];
        }
        Mnemonic::Ud2 => e.opcode = vec![0x0f, 0x0b],
        Mnemonic::Int3 => e.opcode = vec![0xcc],
        Mnemonic::Hlt => e.opcode = vec![0xf4],
        Mnemonic::Syscall => e.opcode = vec![0x0f, 0x05],
        Mnemonic::Cpuid => e.opcode = vec![0x0f, 0xa2],
        Mnemonic::Rdtsc => e.opcode = vec![0x0f, 0x31],
        Mnemonic::Stc => e.opcode = vec![0xf9],
        Mnemonic::Clc => e.opcode = vec![0xf8],
        Mnemonic::Cmc => e.opcode = vec![0xf5],
        Mnemonic::Std => e.opcode = vec![0xfd],
        Mnemonic::Cld => e.opcode = vec![0xfc],
        Mnemonic::Movs | Mnemonic::Stos | Mnemonic::Lods | Mnemonic::Scas | Mnemonic::Cmps => {
            let base = match instr.mnemonic {
                Mnemonic::Movs => 0xa4,
                Mnemonic::Cmps => 0xa6,
                Mnemonic::Stos => 0xaa,
                Mnemonic::Lods => 0xac,
                _ => 0xae,
            };
            if w == Width::B1 {
                e.opcode = vec![base];
            } else {
                e.width(w);
                e.opcode = vec![base + 1];
            }
        }
        Mnemonic::Bswap => {
            let r = expect_reg(&ops[0], "bswap reg")?;
            e.width(instr.width);
            let n = r.reg.number();
            if n >= 8 {
                e.rex_b = true;
            }
            e.opcode = vec![0x0f, 0xc8 + (n & 7)];
        }
        Mnemonic::Cmpxchg | Mnemonic::Xadd => {
            let src = expect_reg(&ops[1], "cmpxchg/xadd src")?;
            e.width(w);
            let reg = e.reg_bits(src);
            let base = if instr.mnemonic == Mnemonic::Cmpxchg { 0xb0 } else { 0xc0 };
            e.opcode = vec![0x0f, base + u8::from(w != Width::B1)];
            e.set_rm(&ops[0], reg)?;
        }
        _ => return Err(EncodeError::BadOperands("unsupported mnemonic")),
    }

    e.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode;

    fn roundtrip(instr: &Instr) {
        let bytes = encode(instr).expect("encodes");
        let mut expected = instr.clone();
        expected.len = bytes.len() as u8;
        let decoded = decode(&bytes, instr.addr).expect("decodes");
        assert_eq!(decoded, expected, "bytes {bytes:02x?}");
    }

    #[test]
    fn mov_forms() {
        roundtrip(&Instr::new(
            Mnemonic::Mov,
            vec![Operand::reg64(Reg::Rbp), Operand::reg64(Reg::Rsp)],
            Width::B8,
        ));
        roundtrip(&Instr::new(
            Mnemonic::Mov,
            vec![
                Operand::Mem(MemOperand::base_disp(Reg::Rdi, -8, Width::B4)),
                Operand::Imm(7),
            ],
            Width::B4,
        ));
        roundtrip(&Instr::new(
            Mnemonic::Mov,
            vec![Operand::reg(Reg::R10, Width::B4), Operand::Imm(0x1234)],
            Width::B4,
        ));
    }

    #[test]
    fn movabs_roundtrip() {
        roundtrip(&Instr::new(
            Mnemonic::Movabs,
            vec![Operand::reg64(Reg::R15), Operand::Imm(0x1122334455667788u64 as i64)],
            Width::B8,
        ));
    }

    #[test]
    fn stack_ops() {
        for r in Reg::ALL {
            roundtrip(&Instr::new(Mnemonic::Push, vec![Operand::reg64(r)], Width::B8));
            roundtrip(&Instr::new(Mnemonic::Pop, vec![Operand::reg64(r)], Width::B8));
        }
        roundtrip(&Instr::new(Mnemonic::Push, vec![Operand::Imm(5)], Width::B8));
        roundtrip(&Instr::new(Mnemonic::Push, vec![Operand::Imm(0x1000)], Width::B8));
    }

    #[test]
    fn branches() {
        let mut jmp = Instr::new(Mnemonic::Jmp, vec![Operand::Imm(0x2000)], Width::B8);
        jmp.addr = 0x1000;
        roundtrip(&jmp);
        let mut je = Instr::new(Mnemonic::Jcc(crate::Cond::E), vec![Operand::Imm(0x900)], Width::B8);
        je.addr = 0x1000;
        roundtrip(&je);
        let mut call = Instr::new(Mnemonic::Call, vec![Operand::Imm(0x5000)], Width::B8);
        call.addr = 0x1000;
        roundtrip(&call);
    }

    #[test]
    fn indirect_branches() {
        roundtrip(&Instr::new(Mnemonic::Jmp, vec![Operand::reg64(Reg::Rax)], Width::B8));
        roundtrip(&Instr::new(
            Mnemonic::Jmp,
            vec![Operand::Mem(MemOperand::base_disp(Reg::Rdi, 0, Width::B8))],
            Width::B8,
        ));
        roundtrip(&Instr::new(
            Mnemonic::Call,
            vec![Operand::Mem(MemOperand::sib(Some(Reg::Rax), Reg::Rcx, 8, 0x40, Width::B8))],
            Width::B8,
        ));
    }

    #[test]
    fn group1_all_widths() {
        for (m, v) in [
            (Mnemonic::Add, 0x12i64),
            (Mnemonic::Sub, -0x200),
            (Mnemonic::And, 0xff),
            (Mnemonic::Cmp, 0xc3),
        ] {
            for w in [Width::B2, Width::B4, Width::B8] {
                roundtrip(&Instr::new(m, vec![Operand::reg(Reg::Rdx, w), Operand::Imm(v)], w));
            }
        }
    }

    #[test]
    fn sib_addressing() {
        roundtrip(&Instr::new(
            Mnemonic::Mov,
            vec![
                Operand::reg(Reg::Rax, Width::B4),
                Operand::Mem(MemOperand::sib(None, Reg::Rax, 4, 0x1000, Width::B4)),
            ],
            Width::B4,
        ));
        roundtrip(&Instr::new(
            Mnemonic::Lea,
            vec![
                Operand::reg64(Reg::Rbx),
                Operand::Mem(MemOperand::sib(Some(Reg::R12), Reg::R13, 2, -4, Width::B8)),
            ],
            Width::B8,
        ));
    }

    #[test]
    fn rip_relative_roundtrip() {
        roundtrip(&Instr::new(
            Mnemonic::Mov,
            vec![Operand::reg64(Reg::Rax), Operand::Mem(MemOperand::rip_rel(0x123, Width::B8))],
            Width::B8,
        ));
    }

    #[test]
    fn rex_conflict_detected() {
        // mov ah, r8b is unencodable.
        let i = Instr::new(
            Mnemonic::Mov,
            vec![Operand::Reg(RegRef::high(Reg::Rax)), Operand::reg(Reg::R8, Width::B1)],
            Width::B1,
        );
        assert_eq!(encode(&i), Err(EncodeError::RexConflict));
    }

    #[test]
    fn string_ops_with_rep() {
        let mut stos = Instr::new(Mnemonic::Stos, vec![], Width::B8);
        stos.rep = Some(RepPrefix::Rep);
        roundtrip(&stos);
        let movsb = Instr::new(Mnemonic::Movs, vec![], Width::B1);
        roundtrip(&movsb);
    }

    #[test]
    fn setcc_and_cmov() {
        roundtrip(&Instr::new(
            Mnemonic::Setcc(crate::Cond::A),
            vec![Operand::reg(Reg::Rdx, Width::B1)],
            Width::B1,
        ));
        roundtrip(&Instr::new(
            Mnemonic::Cmovcc(crate::Cond::L),
            vec![Operand::reg64(Reg::Rax), Operand::reg64(Reg::Rbx)],
            Width::B8,
        ));
    }

    #[test]
    fn leave_ret_nop() {
        roundtrip(&Instr::new(Mnemonic::Leave, vec![], Width::B8));
        roundtrip(&Instr::new(Mnemonic::Ret, vec![], Width::B8));
        roundtrip(&Instr::new(Mnemonic::Ret, vec![Operand::Imm(16)], Width::B8));
        roundtrip(&Instr::new(Mnemonic::Nop, vec![], Width::B8));
        roundtrip(&Instr::new(Mnemonic::Endbr64, vec![], Width::B8));
    }

    #[test]
    fn shifts() {
        roundtrip(&Instr::new(
            Mnemonic::Shl,
            vec![Operand::reg64(Reg::Rax), Operand::Imm(4)],
            Width::B8,
        ));
        roundtrip(&Instr::new(
            Mnemonic::Sar,
            vec![Operand::reg64(Reg::Rax), Operand::Imm(1)],
            Width::B8,
        ));
        roundtrip(&Instr::new(
            Mnemonic::Shr,
            vec![Operand::reg64(Reg::Rax), Operand::reg(Reg::Rcx, Width::B1)],
            Width::B8,
        ));
    }

    #[test]
    fn wide_mul_div() {
        roundtrip(&Instr::new(Mnemonic::Div, vec![Operand::reg64(Reg::Rcx)], Width::B8));
        roundtrip(&Instr::new(Mnemonic::Imul, vec![Operand::reg64(Reg::Rsi)], Width::B8));
        roundtrip(&Instr::new(
            Mnemonic::Imul,
            vec![Operand::reg64(Reg::Rax), Operand::reg64(Reg::Rbx)],
            Width::B8,
        ));
        roundtrip(&Instr::new(
            Mnemonic::Imul,
            vec![Operand::reg64(Reg::Rax), Operand::reg64(Reg::Rbx), Operand::Imm(100)],
            Width::B8,
        ));
        roundtrip(&Instr::new(Mnemonic::Cqo, vec![], Width::B8));
    }
}
