//! Intel-syntax pretty printing.

use crate::instr::RepPrefix;
use crate::{Instr, MemOperand, Mnemonic, Operand, Width};
use std::fmt;

impl fmt::Display for MemOperand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ptr [", self.size)?;
        let mut first = true;
        if self.rip_relative {
            write!(f, "rip")?;
            first = false;
        }
        if let Some(b) = self.base {
            write!(f, "{b}")?;
            first = false;
        }
        if let Some(i) = self.index {
            if !first {
                write!(f, " + ")?;
            }
            write!(f, "{i}")?;
            if self.scale != 1 {
                write!(f, "*{}", self.scale)?;
            }
            first = false;
        }
        if self.disp != 0 || first {
            if first {
                write!(f, "{:#x}", self.disp)?;
            } else if self.disp < 0 {
                write!(f, " - {:#x}", -self.disp)?;
            } else {
                write!(f, " + {:#x}", self.disp)?;
            }
        }
        write!(f, "]")
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(i) => {
                if *i < 0 {
                    write!(f, "-{:#x}", -i)
                } else {
                    write!(f, "{i:#x}")
                }
            }
            Operand::Mem(m) => write!(f, "{m}"),
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(rep) = self.rep {
            match rep {
                RepPrefix::Rep => write!(f, "rep ")?,
                RepPrefix::Repne => write!(f, "repne ")?,
            }
        }
        write!(f, "{}", self.mnemonic)?;
        // String ops carry their width as a suffix (movsb, stosq, …).
        if matches!(
            self.mnemonic,
            Mnemonic::Movs | Mnemonic::Stos | Mnemonic::Lods | Mnemonic::Scas | Mnemonic::Cmps
        ) {
            let suffix = match self.width {
                Width::B1 => "b",
                Width::B2 => "w",
                Width::B4 => "d",
                Width::B8 => "q",
            };
            write!(f, "{suffix}")?;
        }
        for (i, op) in self.operands.iter().enumerate() {
            if i == 0 {
                write!(f, " ")?;
            } else {
                write!(f, ", ")?;
            }
            write!(f, "{op}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::decode;

    fn disp(bytes: &[u8]) -> String {
        decode(bytes, 0x1000).expect("decodes").to_string()
    }

    #[test]
    fn display_forms() {
        assert_eq!(disp(&[0x48, 0x89, 0xe5]), "mov rbp, rsp");
        assert_eq!(disp(&[0x48, 0x83, 0xec, 0x28]), "sub rsp, 0x28");
        assert_eq!(disp(&[0xc3]), "ret");
        assert_eq!(disp(&[0xff, 0x27]), "jmp qword ptr [rdi]");
        assert_eq!(disp(&[0x74, 0x05]), "je 0x1007");
        assert_eq!(
            disp(&[0x8b, 0x04, 0x8d, 0x00, 0x10, 0x00, 0x00]),
            "mov eax, dword ptr [rcx*4 + 0x1000]"
        );
        assert_eq!(disp(&[0xf3, 0x48, 0xab]), "rep stosq");
        assert_eq!(disp(&[0x48, 0x8b, 0x45, 0xf8]), "mov rax, qword ptr [rbp - 0x8]");
    }
}
