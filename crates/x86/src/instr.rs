//! The decoded-instruction representation.

use crate::{Cond, MemOperand, Mnemonic, Operand, Width};

/// A `rep`-family prefix on a string instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RepPrefix {
    /// `rep` / `repe` (F3).
    Rep,
    /// `repne` (F2).
    Repne,
}

/// A decoded x86-64 instruction.
///
/// Relative branch displacements are resolved at decode time: the
/// immediate operand of a `jmp`/`jcc`/`call` holds the *absolute*
/// target address. The encoder converts back to relative form.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Instr {
    /// Virtual address of the first byte.
    pub addr: u64,
    /// Encoded length in bytes.
    pub len: u8,
    /// Mnemonic (with condition code where applicable).
    pub mnemonic: Mnemonic,
    /// Operands, destination first.
    pub operands: Vec<Operand>,
    /// Operation width: destination width, element width for string
    /// instructions, or [`Width::B8`] for width-less instructions.
    pub width: Width,
    /// `rep`/`repne` prefix, for string instructions.
    pub rep: Option<RepPrefix>,
}

impl Instr {
    /// Construct an instruction with no address/length assigned yet
    /// (used by the assembler before layout).
    pub fn new(mnemonic: Mnemonic, operands: Vec<Operand>, width: Width) -> Instr {
        Instr { addr: 0, len: 0, mnemonic, operands, width, rep: None }
    }

    /// Address of the instruction following this one.
    pub fn next_addr(&self) -> u64 {
        self.addr.wrapping_add(self.len as u64)
    }

    /// For a direct `jmp`/`jcc`/`call`, the absolute target address.
    pub fn direct_target(&self) -> Option<u64> {
        match self.mnemonic {
            Mnemonic::Jmp | Mnemonic::Jcc(_) | Mnemonic::Call => match self.operands.first() {
                Some(Operand::Imm(t)) => Some(*t as u64),
                _ => None,
            },
            _ => None,
        }
    }

    /// The condition code, for `jcc`/`setcc`/`cmovcc`.
    pub fn cond(&self) -> Option<Cond> {
        match self.mnemonic {
            Mnemonic::Jcc(c) | Mnemonic::Setcc(c) | Mnemonic::Cmovcc(c) => Some(c),
            _ => None,
        }
    }

    /// True for indirect control transfers (`jmp r/m`, `call r/m`).
    pub fn is_indirect_branch(&self) -> bool {
        matches!(self.mnemonic, Mnemonic::Jmp | Mnemonic::Call)
            && !matches!(self.operands.first(), Some(Operand::Imm(_)))
    }

    /// Explicit memory operands of this instruction.
    pub fn mem_operands(&self) -> impl Iterator<Item = &MemOperand> {
        self.operands.iter().filter_map(|op| match op {
            Operand::Mem(m) => Some(m),
            _ => None,
        })
    }

    /// True if this instruction implicitly reads or writes the stack
    /// through `rsp` (push/pop/call/ret/leave).
    pub fn touches_stack_implicitly(&self) -> bool {
        matches!(
            self.mnemonic,
            Mnemonic::Push | Mnemonic::Pop | Mnemonic::Call | Mnemonic::Ret | Mnemonic::Leave
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Reg, RegRef};

    fn jmp_to(target: u64) -> Instr {
        let mut i = Instr::new(Mnemonic::Jmp, vec![Operand::Imm(target as i64)], Width::B8);
        i.addr = 0x100;
        i.len = 5;
        i
    }

    #[test]
    fn direct_target() {
        assert_eq!(jmp_to(0x200).direct_target(), Some(0x200));
        let indirect = Instr::new(Mnemonic::Jmp, vec![Operand::reg64(Reg::Rax)], Width::B8);
        assert_eq!(indirect.direct_target(), None);
        assert!(indirect.is_indirect_branch());
        assert!(!jmp_to(0x200).is_indirect_branch());
    }

    #[test]
    fn next_addr_wraps() {
        let mut i = jmp_to(0);
        i.addr = u64::MAX;
        i.len = 1;
        assert_eq!(i.next_addr(), 0);
    }

    #[test]
    fn mem_operand_iteration() {
        let i = Instr::new(
            Mnemonic::Mov,
            vec![
                Operand::Mem(MemOperand::base_disp(Reg::Rdi, 0, Width::B8)),
                Operand::Reg(RegRef::full(Reg::Rax)),
            ],
            Width::B8,
        );
        assert_eq!(i.mem_operands().count(), 1);
    }
}
