//! # hgl-x86: x86-64 instruction-set model
//!
//! A from-scratch model of the x86-64 instruction subset used by the
//! Hoare-Graph lifter: register and flag definitions, an [`Instr`]
//! representation, a byte [`decode`]r (the paper's `fetch` function,
//! Definition 3.1), an [`encode`]r (used by `hgl-asm` to synthesize test
//! binaries), and an Intel-syntax pretty printer.
//!
//! The supported instruction families mirror §5.2 of the paper: moves
//! (including conditional moves and sign/zero extension), arithmetic,
//! logical and bit-vector operations, shifts, multiplication/division,
//! stack operations, (conditional) jumps, `call`/`ret`, string operations
//! with `rep` prefixes, and miscellaneous control instructions — roughly
//! 130 mnemonic/condition combinations.
//!
//! Decoding and encoding are mutually inverse and are exercised by
//! round-trip property tests: for every encodable instruction `i`,
//! `decode(encode(i)) == i`.
//!
//! ```
//! use hgl_x86::{decode, Mnemonic};
//!
//! // 48 89 e5  =  mov rbp, rsp
//! let instr = decode(&[0x48, 0x89, 0xe5], 0x1000)?;
//! assert_eq!(instr.mnemonic, Mnemonic::Mov);
//! assert_eq!(instr.to_string(), "mov rbp, rsp");
//! # Ok::<(), hgl_x86::DecodeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cond;
mod decode;
mod encode;
mod fmt;
mod instr;
mod mnemonic;
mod operand;
mod reg;

/// The crate version, folded into configuration fingerprints: a change
/// to decode semantics must invalidate persisted artifacts.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

pub use cond::Cond;
pub use decode::{decode, DecodeError};
#[cfg(any(test, feature = "reference-decoder"))]
pub use decode::decode_reference;
pub use encode::{encode, EncodeError};
pub use instr::{Instr, RepPrefix};
pub use mnemonic::Mnemonic;
pub use operand::{MemOperand, Operand};
pub use reg::{Flag, Reg, RegRef, Width};
