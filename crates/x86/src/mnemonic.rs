//! Instruction mnemonics.

use crate::Cond;
use std::fmt;

/// An instruction mnemonic.
///
/// Condition-code families (`jcc`, `setcc`, `cmovcc`) carry their
/// [`Cond`] payload, so e.g. `je` is `Mnemonic::Jcc(Cond::E)`. Counting
/// each condition variant separately, the model covers ≈130 concrete
/// mnemonics — the same order of magnitude as the formal model in §5.2
/// of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum Mnemonic {
    // Data movement
    Mov,
    Movabs,
    Movzx,
    Movsx,
    Movsxd,
    Lea,
    Xchg,
    Cmovcc(Cond),
    Setcc(Cond),
    Push,
    Pop,
    // Integer arithmetic
    Add,
    Adc,
    Sub,
    Sbb,
    Cmp,
    Inc,
    Dec,
    Neg,
    Mul,
    Imul,
    Div,
    Idiv,
    // Logic / bit manipulation
    And,
    Or,
    Xor,
    Not,
    Test,
    Shl,
    Shr,
    Sar,
    Rol,
    Ror,
    Rcl,
    Rcr,
    Shld,
    Shrd,
    Bt,
    Bts,
    Btr,
    Btc,
    Bsf,
    Bsr,
    Tzcnt,
    Popcnt,
    Bswap,
    // Width conversion
    Cbw,
    Cwde,
    Cdqe,
    Cwd,
    Cdq,
    Cqo,
    // Control flow
    Jmp,
    Jcc(Cond),
    Jrcxz,
    Loop,
    Loope,
    Loopne,
    Call,
    Ret,
    Leave,
    // String operations (width is carried by the operand-size suffix)
    Movs,
    Stos,
    Lods,
    Scas,
    Cmps,
    // Flag manipulation
    Stc,
    Clc,
    Cmc,
    Std,
    Cld,
    // Misc / system
    Nop,
    Endbr64,
    Ud2,
    Int3,
    Hlt,
    Syscall,
    Cpuid,
    Rdtsc,
    Cmpxchg,
    Xadd,
}

impl Mnemonic {
    /// True for instructions that transfer control (jumps, calls,
    /// returns, and the halting instructions).
    pub fn is_control_flow(self) -> bool {
        matches!(
            self,
            Mnemonic::Jmp
                | Mnemonic::Jcc(_)
                | Mnemonic::Jrcxz
                | Mnemonic::Loop
                | Mnemonic::Loope
                | Mnemonic::Loopne
                | Mnemonic::Call
                | Mnemonic::Ret
                | Mnemonic::Ud2
                | Mnemonic::Int3
                | Mnemonic::Hlt
        )
    }

    /// True if execution never falls through to the next instruction.
    pub fn is_terminator(self) -> bool {
        matches!(self, Mnemonic::Jmp | Mnemonic::Ret | Mnemonic::Ud2 | Mnemonic::Int3 | Mnemonic::Hlt)
    }

    /// Intel-syntax name, without operand-size suffixes.
    pub fn name(self) -> String {
        match self {
            Mnemonic::Cmovcc(c) => format!("cmov{c}"),
            Mnemonic::Setcc(c) => format!("set{c}"),
            Mnemonic::Jcc(c) => format!("j{c}"),
            other => {
                let s = match other {
                    Mnemonic::Mov => "mov",
                    Mnemonic::Movabs => "movabs",
                    Mnemonic::Movzx => "movzx",
                    Mnemonic::Movsx => "movsx",
                    Mnemonic::Movsxd => "movsxd",
                    Mnemonic::Lea => "lea",
                    Mnemonic::Xchg => "xchg",
                    Mnemonic::Push => "push",
                    Mnemonic::Pop => "pop",
                    Mnemonic::Add => "add",
                    Mnemonic::Adc => "adc",
                    Mnemonic::Sub => "sub",
                    Mnemonic::Sbb => "sbb",
                    Mnemonic::Cmp => "cmp",
                    Mnemonic::Inc => "inc",
                    Mnemonic::Dec => "dec",
                    Mnemonic::Neg => "neg",
                    Mnemonic::Mul => "mul",
                    Mnemonic::Imul => "imul",
                    Mnemonic::Div => "div",
                    Mnemonic::Idiv => "idiv",
                    Mnemonic::And => "and",
                    Mnemonic::Or => "or",
                    Mnemonic::Xor => "xor",
                    Mnemonic::Not => "not",
                    Mnemonic::Test => "test",
                    Mnemonic::Shl => "shl",
                    Mnemonic::Shr => "shr",
                    Mnemonic::Sar => "sar",
                    Mnemonic::Rol => "rol",
                    Mnemonic::Ror => "ror",
                    Mnemonic::Rcl => "rcl",
                    Mnemonic::Rcr => "rcr",
                    Mnemonic::Shld => "shld",
                    Mnemonic::Shrd => "shrd",
                    Mnemonic::Bt => "bt",
                    Mnemonic::Bts => "bts",
                    Mnemonic::Btr => "btr",
                    Mnemonic::Btc => "btc",
                    Mnemonic::Bsf => "bsf",
                    Mnemonic::Bsr => "bsr",
                    Mnemonic::Tzcnt => "tzcnt",
                    Mnemonic::Popcnt => "popcnt",
                    Mnemonic::Bswap => "bswap",
                    Mnemonic::Cbw => "cbw",
                    Mnemonic::Cwde => "cwde",
                    Mnemonic::Cdqe => "cdqe",
                    Mnemonic::Cwd => "cwd",
                    Mnemonic::Cdq => "cdq",
                    Mnemonic::Cqo => "cqo",
                    Mnemonic::Jmp => "jmp",
                    Mnemonic::Jrcxz => "jrcxz",
                    Mnemonic::Loop => "loop",
                    Mnemonic::Loope => "loope",
                    Mnemonic::Loopne => "loopne",
                    Mnemonic::Call => "call",
                    Mnemonic::Ret => "ret",
                    Mnemonic::Leave => "leave",
                    Mnemonic::Movs => "movs",
                    Mnemonic::Stos => "stos",
                    Mnemonic::Lods => "lods",
                    Mnemonic::Scas => "scas",
                    Mnemonic::Cmps => "cmps",
                    Mnemonic::Stc => "stc",
                    Mnemonic::Clc => "clc",
                    Mnemonic::Cmc => "cmc",
                    Mnemonic::Std => "std",
                    Mnemonic::Cld => "cld",
                    Mnemonic::Nop => "nop",
                    Mnemonic::Endbr64 => "endbr64",
                    Mnemonic::Ud2 => "ud2",
                    Mnemonic::Int3 => "int3",
                    Mnemonic::Hlt => "hlt",
                    Mnemonic::Syscall => "syscall",
                    Mnemonic::Cpuid => "cpuid",
                    Mnemonic::Rdtsc => "rdtsc",
                    Mnemonic::Cmpxchg => "cmpxchg",
                    Mnemonic::Xadd => "xadd",
                    Mnemonic::Cmovcc(_) | Mnemonic::Setcc(_) | Mnemonic::Jcc(_) => unreachable!(),
                };
                s.to_string()
            }
        }
    }
}

impl fmt::Display for Mnemonic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names() {
        assert_eq!(Mnemonic::Jcc(Cond::Ne).name(), "jne");
        assert_eq!(Mnemonic::Setcc(Cond::A).name(), "seta");
        assert_eq!(Mnemonic::Cmovcc(Cond::L).name(), "cmovl");
        assert_eq!(Mnemonic::Endbr64.name(), "endbr64");
    }

    #[test]
    fn control_flow_classification() {
        assert!(Mnemonic::Jmp.is_control_flow());
        assert!(Mnemonic::Jmp.is_terminator());
        assert!(Mnemonic::Jcc(Cond::E).is_control_flow());
        assert!(!Mnemonic::Jcc(Cond::E).is_terminator());
        assert!(Mnemonic::Call.is_control_flow());
        assert!(!Mnemonic::Call.is_terminator());
        assert!(Mnemonic::Ret.is_terminator());
        assert!(!Mnemonic::Mov.is_control_flow());
    }
}
