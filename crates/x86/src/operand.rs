//! Instruction operands.

use crate::{Reg, RegRef, Width};

/// A memory operand: `[base + index*scale + disp]` of a given access
/// size, or a RIP-relative reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemOperand {
    /// Base register, if any.
    pub base: Option<Reg>,
    /// Index register, if any (never `rsp`).
    pub index: Option<Reg>,
    /// Scale applied to the index register: 1, 2, 4 or 8.
    pub scale: u8,
    /// Signed displacement.
    pub disp: i64,
    /// Access size in bytes.
    pub size: Width,
    /// RIP-relative addressing (`[rip + disp]`); `base`/`index` are then
    /// `None` and the effective address is `next_instruction + disp`.
    pub rip_relative: bool,
}

impl MemOperand {
    /// `[base + disp]` with access size `size`.
    pub fn base_disp(base: Reg, disp: i64, size: Width) -> MemOperand {
        MemOperand { base: Some(base), index: None, scale: 1, disp, size, rip_relative: false }
    }

    /// `[base + index*scale + disp]` with access size `size`.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not 1, 2, 4 or 8, or if `index` is `rsp`
    /// (unencodable on x86-64).
    pub fn sib(base: Option<Reg>, index: Reg, scale: u8, disp: i64, size: Width) -> MemOperand {
        assert!(matches!(scale, 1 | 2 | 4 | 8), "invalid scale {scale}");
        assert!(index != Reg::Rsp, "rsp cannot be an index register");
        MemOperand { base, index: Some(index), scale, disp, size, rip_relative: false }
    }

    /// Absolute address `[disp]` with access size `size`.
    pub fn absolute(disp: i64, size: Width) -> MemOperand {
        MemOperand { base: None, index: None, scale: 1, disp, size, rip_relative: false }
    }

    /// `[rip + disp]` with access size `size`.
    pub fn rip_rel(disp: i64, size: Width) -> MemOperand {
        MemOperand { base: None, index: None, scale: 1, disp, size, rip_relative: true }
    }

    /// The effective address if it is a compile-time constant (no base
    /// or index register and not RIP-relative).
    pub fn constant_address(&self) -> Option<u64> {
        if self.base.is_none() && self.index.is_none() && !self.rip_relative {
            Some(self.disp as u64)
        } else {
            None
        }
    }
}

/// An instruction operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A register view.
    Reg(RegRef),
    /// An immediate, already sign-extended to 64 bits.
    Imm(i64),
    /// A memory reference.
    Mem(MemOperand),
}

impl Operand {
    /// Convenience constructor for a full-width register operand.
    pub fn reg64(reg: Reg) -> Operand {
        Operand::Reg(RegRef::full(reg))
    }

    /// Convenience constructor for a register operand at `width`.
    pub fn reg(reg: Reg, width: Width) -> Operand {
        Operand::Reg(RegRef::new(reg, width))
    }

    /// The operand's data width, if it has an intrinsic one (registers
    /// and memory references do; immediates take the instruction's).
    pub fn width(&self) -> Option<Width> {
        match self {
            Operand::Reg(r) => Some(r.width),
            Operand::Mem(m) => Some(m.size),
            Operand::Imm(_) => None,
        }
    }

    /// True if this operand is a memory reference.
    pub fn is_mem(&self) -> bool {
        matches!(self, Operand::Mem(_))
    }
}

impl From<RegRef> for Operand {
    fn from(r: RegRef) -> Operand {
        Operand::Reg(r)
    }
}

impl From<MemOperand> for Operand {
    fn from(m: MemOperand) -> Operand {
        Operand::Mem(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_address() {
        assert_eq!(MemOperand::absolute(0x601000, Width::B8).constant_address(), Some(0x601000));
        assert_eq!(MemOperand::base_disp(Reg::Rax, 8, Width::B8).constant_address(), None);
        assert_eq!(MemOperand::rip_rel(0x10, Width::B4).constant_address(), None);
    }

    #[test]
    #[should_panic(expected = "rsp cannot")]
    fn rsp_index_rejected() {
        let _ = MemOperand::sib(None, Reg::Rsp, 2, 0, Width::B8);
    }

    #[test]
    #[should_panic(expected = "invalid scale")]
    fn bad_scale_rejected() {
        let _ = MemOperand::sib(Some(Reg::Rax), Reg::Rcx, 3, 0, Width::B8);
    }

    #[test]
    fn operand_width() {
        assert_eq!(Operand::reg(Reg::Rax, Width::B4).width(), Some(Width::B4));
        assert_eq!(Operand::Imm(5).width(), None);
        assert_eq!(Operand::Mem(MemOperand::absolute(0, Width::B2)).width(), Some(Width::B2));
    }
}
