//! Register, flag and operand-width definitions.

use std::fmt;

/// Operand width in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Width {
    /// 8-bit operand.
    B1,
    /// 16-bit operand.
    B2,
    /// 32-bit operand.
    B4,
    /// 64-bit operand.
    B8,
}

impl Width {
    /// Number of bytes of this width.
    pub const fn bytes(self) -> u8 {
        match self {
            Width::B1 => 1,
            Width::B2 => 2,
            Width::B4 => 4,
            Width::B8 => 8,
        }
    }

    /// Number of bits of this width.
    pub const fn bits(self) -> u32 {
        self.bytes() as u32 * 8
    }

    /// Construct from a byte count, if it names an operand width.
    /// Byte counts reachable from untrusted input (decoded operands,
    /// memory-region sizes) must use this instead of [`Width::from_bytes`].
    pub const fn try_from_bytes(bytes: u8) -> Option<Width> {
        match bytes {
            1 => Some(Width::B1),
            2 => Some(Width::B2),
            4 => Some(Width::B4),
            8 => Some(Width::B8),
            _ => None,
        }
    }

    /// Construct from a byte count.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not 1, 2, 4 or 8. For untrusted byte
    /// counts, use [`Width::try_from_bytes`].
    pub fn from_bytes(bytes: u8) -> Width {
        match Width::try_from_bytes(bytes) {
            Some(w) => w,
            None => panic!("invalid operand width: {bytes} bytes"),
        }
    }

    /// Mask selecting the low `bits()` bits of a 64-bit value.
    pub const fn mask(self) -> u64 {
        match self {
            Width::B1 => 0xff,
            Width::B2 => 0xffff,
            Width::B4 => 0xffff_ffff,
            Width::B8 => u64::MAX,
        }
    }

    /// Truncate a 64-bit value to this width (zero-extended in the return).
    pub const fn trunc(self, v: u64) -> u64 {
        v & self.mask()
    }

    /// Sign-extend the low `bits()` bits of `v` to 64 bits.
    pub const fn sext(self, v: u64) -> u64 {
        match self {
            Width::B1 => v as u8 as i8 as i64 as u64,
            Width::B2 => v as u16 as i16 as i64 as u64,
            Width::B4 => v as u32 as i32 as i64 as u64,
            Width::B8 => v,
        }
    }

    /// The sign bit of a value of this width.
    pub const fn sign_bit(self, v: u64) -> bool {
        (v >> (self.bits() - 1)) & 1 == 1
    }
}

impl fmt::Display for Width {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Width::B1 => "byte",
            Width::B2 => "word",
            Width::B4 => "dword",
            Width::B8 => "qword",
        };
        f.write_str(s)
    }
}

/// A full 64-bit general-purpose register.
///
/// Sub-register views (`eax`, `ax`, `al`, `ah`, …) are expressed with
/// [`RegRef`], which pairs a `Reg` with a [`Width`] and a high-byte flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum Reg {
    Rax,
    Rcx,
    Rdx,
    Rbx,
    Rsp,
    Rbp,
    Rsi,
    Rdi,
    R8,
    R9,
    R10,
    R11,
    R12,
    R13,
    R14,
    R15,
}

impl Reg {
    /// All sixteen general-purpose registers, in encoding order.
    pub const ALL: [Reg; 16] = [
        Reg::Rax,
        Reg::Rcx,
        Reg::Rdx,
        Reg::Rbx,
        Reg::Rsp,
        Reg::Rbp,
        Reg::Rsi,
        Reg::Rdi,
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
        Reg::R12,
        Reg::R13,
        Reg::R14,
        Reg::R15,
    ];

    /// Hardware encoding number (0–15).
    pub const fn number(self) -> u8 {
        self as u8
    }

    /// Inverse of [`Reg::number`].
    ///
    /// # Panics
    ///
    /// Panics if `n > 15`.
    pub fn from_number(n: u8) -> Reg {
        Reg::ALL[n as usize]
    }

    /// Registers that the System V AMD64 calling convention requires a
    /// callee to preserve (`rsp` is handled separately by the lifter).
    pub const CALLEE_SAVED: [Reg; 6] = [Reg::Rbx, Reg::Rbp, Reg::R12, Reg::R13, Reg::R14, Reg::R15];

    /// True if the System V AMD64 convention marks this register
    /// non-volatile (callee-saved).
    pub fn is_callee_saved(self) -> bool {
        Reg::CALLEE_SAVED.contains(&self)
    }

    /// The 64-bit register name (`rax`, …, `r15`).
    pub const fn name64(self) -> &'static str {
        match self {
            Reg::Rax => "rax",
            Reg::Rcx => "rcx",
            Reg::Rdx => "rdx",
            Reg::Rbx => "rbx",
            Reg::Rsp => "rsp",
            Reg::Rbp => "rbp",
            Reg::Rsi => "rsi",
            Reg::Rdi => "rdi",
            Reg::R8 => "r8",
            Reg::R9 => "r9",
            Reg::R10 => "r10",
            Reg::R11 => "r11",
            Reg::R12 => "r12",
            Reg::R13 => "r13",
            Reg::R14 => "r14",
            Reg::R15 => "r15",
        }
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name64())
    }
}

/// A view of a register at a particular width.
///
/// `high8` selects the legacy high-byte registers `ah`/`ch`/`dh`/`bh`
/// (only meaningful when `width == Width::B1` and no REX prefix is in
/// effect).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegRef {
    /// The underlying 64-bit register.
    pub reg: Reg,
    /// Width of the view.
    pub width: Width,
    /// High-byte view (`ah`, `ch`, `dh`, `bh`).
    pub high8: bool,
}

impl RegRef {
    /// A full-width (64-bit) view of `reg`.
    pub const fn full(reg: Reg) -> RegRef {
        RegRef { reg, width: Width::B8, high8: false }
    }

    /// A view of `reg` at `width` (low bits).
    pub const fn new(reg: Reg, width: Width) -> RegRef {
        RegRef { reg, width, high8: false }
    }

    /// The high-byte view of one of the first four legacy registers.
    ///
    /// # Panics
    ///
    /// Panics if `reg` is not `rax`, `rcx`, `rdx` or `rbx`.
    pub fn high(reg: Reg) -> RegRef {
        assert!(
            matches!(reg, Reg::Rax | Reg::Rcx | Reg::Rdx | Reg::Rbx),
            "high-byte view only exists for rax/rcx/rdx/rbx"
        );
        RegRef { reg, width: Width::B1, high8: true }
    }

    /// Assembly name of this register view (`eax`, `r9d`, `ah`, …).
    pub fn name(self) -> String {
        let r = self.reg;
        let n = r.number();
        match self.width {
            Width::B8 => r.name64().to_string(),
            Width::B4 => {
                if n < 8 {
                    format!("e{}", &r.name64()[1..])
                } else {
                    format!("{}d", r.name64())
                }
            }
            Width::B2 => {
                if n < 8 {
                    r.name64()[1..].to_string()
                } else {
                    format!("{}w", r.name64())
                }
            }
            Width::B1 => {
                if self.high8 {
                    match r {
                        Reg::Rax => "ah".into(),
                        Reg::Rcx => "ch".into(),
                        Reg::Rdx => "dh".into(),
                        Reg::Rbx => "bh".into(),
                        _ => unreachable!("high8 checked at construction"),
                    }
                } else if n < 4 {
                    format!("{}l", &r.name64()[1..2])
                } else if n < 8 {
                    format!("{}l", &r.name64()[1..])
                } else {
                    format!("{}b", r.name64())
                }
            }
        }
    }
}

impl fmt::Display for RegRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

/// Status and direction flags modelled by the lifter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Flag {
    /// Carry flag.
    Cf,
    /// Parity flag.
    Pf,
    /// Auxiliary carry flag.
    Af,
    /// Zero flag.
    Zf,
    /// Sign flag.
    Sf,
    /// Overflow flag.
    Of,
    /// Direction flag.
    Df,
}

impl Flag {
    /// All modelled flags.
    pub const ALL: [Flag; 7] = [Flag::Cf, Flag::Pf, Flag::Af, Flag::Zf, Flag::Sf, Flag::Of, Flag::Df];

    /// Short flag name (`cf`, `zf`, …).
    pub const fn name(self) -> &'static str {
        match self {
            Flag::Cf => "cf",
            Flag::Pf => "pf",
            Flag::Af => "af",
            Flag::Zf => "zf",
            Flag::Sf => "sf",
            Flag::Of => "of",
            Flag::Df => "df",
        }
    }
}

impl fmt::Display for Flag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_roundtrip() {
        for w in [Width::B1, Width::B2, Width::B4, Width::B8] {
            assert_eq!(Width::from_bytes(w.bytes()), w);
        }
    }

    #[test]
    fn width_sext() {
        assert_eq!(Width::B1.sext(0x80), 0xffff_ffff_ffff_ff80);
        assert_eq!(Width::B1.sext(0x7f), 0x7f);
        assert_eq!(Width::B4.sext(0x8000_0000), 0xffff_ffff_8000_0000);
        assert_eq!(Width::B8.sext(0x8000_0000), 0x8000_0000);
    }

    #[test]
    fn width_sign_bit() {
        assert!(Width::B1.sign_bit(0x80));
        assert!(!Width::B1.sign_bit(0x7f));
        assert!(Width::B8.sign_bit(u64::MAX));
    }

    #[test]
    fn reg_numbering_roundtrip() {
        for r in Reg::ALL {
            assert_eq!(Reg::from_number(r.number()), r);
        }
    }

    #[test]
    fn reg_names() {
        assert_eq!(RegRef::full(Reg::Rax).name(), "rax");
        assert_eq!(RegRef::new(Reg::Rax, Width::B4).name(), "eax");
        assert_eq!(RegRef::new(Reg::Rax, Width::B2).name(), "ax");
        assert_eq!(RegRef::new(Reg::Rax, Width::B1).name(), "al");
        assert_eq!(RegRef::high(Reg::Rax).name(), "ah");
        assert_eq!(RegRef::new(Reg::R9, Width::B4).name(), "r9d");
        assert_eq!(RegRef::new(Reg::R9, Width::B2).name(), "r9w");
        assert_eq!(RegRef::new(Reg::R9, Width::B1).name(), "r9b");
        assert_eq!(RegRef::new(Reg::Rsp, Width::B1).name(), "spl");
        assert_eq!(RegRef::new(Reg::Rdi, Width::B1).name(), "dil");
    }

    #[test]
    #[should_panic(expected = "high-byte")]
    fn high_byte_of_rsi_panics() {
        let _ = RegRef::high(Reg::Rsi);
    }

    #[test]
    fn callee_saved_set() {
        assert!(Reg::Rbx.is_callee_saved());
        assert!(Reg::Rbp.is_callee_saved());
        assert!(!Reg::Rax.is_callee_saved());
        assert!(!Reg::Rsp.is_callee_saved(), "rsp handled separately");
    }
}
