//! Differential fuzz: the table-driven decoder must agree with the
//! legacy match-ladder decoder (`decode_reference`, compiled in via
//! the `reference-decoder` feature) on **every** input — identical
//! instructions on success and identical structured errors on
//! failure. Together with `roundtrip.rs` this is the proof obligation
//! for swapping the hot decode path: byte-for-byte equivalence, not
//! "mostly the same".

use hgl_x86::{decode, decode_reference, encode, Instr, Mnemonic, Operand, Reg, Width};
use proptest::prelude::*;

const ADDR: u64 = 0x40_1000;

#[track_caller]
fn assert_agree(bytes: &[u8], addr: u64) {
    let table = decode(bytes, addr);
    let ladder = decode_reference(bytes, addr);
    assert_eq!(table, ladder, "decoders disagree on {bytes:02x?} at {addr:#x}");
}

/// Deterministic operand fodder: enough bytes after the opcode for the
/// worst case (ModRM + SIB + disp32 + imm64), with varied bit patterns
/// so different ModRM modes, SIB encodings, and extensions are hit.
const TAILS: &[&[u8]] = &[
    &[0x00; 12],
    &[0xff; 12],
    // mod=00 rm=100 (SIB: scaled index + disp32 base=101 path)
    &[0x04, 0x8d, 0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc, 0xde, 0xf0, 0x11, 0x22],
    // mod=00 rm=101 (RIP-relative) then disp32
    &[0x05, 0x40, 0x30, 0x20, 0x10, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07],
    // mod=01 rm=011 disp8
    &[0x5b, 0x7f, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a],
    // mod=11 (register direct), reg=/2
    &[0xd1, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06],
    // mod=11, reg=/7 (exercises group extensions incl. invalid ones)
    &[0xf8, 0x10, 0x20, 0x30, 0x40, 0x50, 0x60, 0x70, 0x80, 0x90, 0xa0, 0xb0],
    // mod=10 rm=100 (SIB + disp32), index=rsp-none case
    &[0xa4, 0x24, 0x78, 0x56, 0x34, 0x12, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff],
    // endbr64 suffix byte after 0f 1e
    &[0xfa, 0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa],
];

/// Prefix combinations covering every width/REX/rep interaction the
/// decoder distinguishes.
const PREFIXES: &[&[u8]] = &[
    &[],
    &[0x66],
    &[0x48],       // REX.W
    &[0x41],       // REX.B
    &[0x44],       // REX.R
    &[0x42],       // REX.X
    &[0x4f],       // REX.WRXB
    &[0x40],       // bare REX (spl/bpl/sil/dil selection)
    &[0xf3],
    &[0xf2],
    &[0xf3, 0x48],
    &[0x66, 0x44],
    &[0xf0, 0x48], // lock (ignored) + REX.W
    &[0x65, 0x48], // gs segment hint + REX.W
];

/// Exhaustive sweep of the one-byte opcode map: every opcode × every
/// prefix combo × every operand tail, on both decoders.
#[test]
fn exhaustive_primary_opcode_sweep() {
    for prefix in PREFIXES {
        for opcode in 0u16..=0xff {
            for tail in TAILS {
                let mut bytes = prefix.to_vec();
                bytes.push(opcode as u8);
                bytes.extend_from_slice(tail);
                assert_agree(&bytes, ADDR);
            }
        }
    }
}

/// Exhaustive sweep of the 0F-escape map.
#[test]
fn exhaustive_secondary_opcode_sweep() {
    for prefix in PREFIXES {
        for opcode in 0u16..=0xff {
            for tail in TAILS {
                let mut bytes = prefix.to_vec();
                bytes.push(0x0f);
                bytes.push(opcode as u8);
                bytes.extend_from_slice(tail);
                assert_agree(&bytes, ADDR);
            }
        }
    }
}

/// Truncation agreement: every prefix of every sweep stem must produce
/// the same result (usually `Truncated`) from both decoders.
#[test]
fn truncation_sweep() {
    for opcode in 0u16..=0xff {
        let stem =
            [0x48, opcode as u8, 0x04, 0x8d, 0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc, 0xde, 0xf0];
        for n in 0..stem.len() {
            assert_agree(&stem[..n], ADDR);
        }
        let stem0f = [0x0f, opcode as u8, 0x94, 0x24, 0x78, 0x56, 0x34, 0x12, 0xaa, 0xbb];
        for n in 0..stem0f.len() {
            assert_agree(&stem0f[..n], ADDR);
        }
    }
}

/// Encode→decode round-trip stems stay pinned: known instructions must
/// keep both their byte encoding and their decode under the new path.
#[test]
fn roundtrip_stems_pinned() {
    let cases: &[(Instr, &[u8])] = &[
        (
            Instr::new(
                Mnemonic::Mov,
                vec![Operand::reg64(Reg::Rbp), Operand::reg64(Reg::Rsp)],
                Width::B8,
            ),
            &[0x48, 0x89, 0xe5],
        ),
        (
            Instr::new(
                Mnemonic::Sub,
                vec![Operand::reg64(Reg::Rsp), Operand::Imm(0x28)],
                Width::B8,
            ),
            &[0x48, 0x83, 0xec, 0x28],
        ),
        (Instr::new(Mnemonic::Ret, vec![], Width::B8), &[0xc3]),
        (
            Instr::new(
                Mnemonic::Movabs,
                vec![Operand::reg64(Reg::Rax), Operand::Imm(0x0807060504030201)],
                Width::B8,
            ),
            &[0x48, 0xb8, 1, 2, 3, 4, 5, 6, 7, 8],
        ),
        (
            Instr::new(
                Mnemonic::Test,
                vec![Operand::reg(Reg::Rax, Width::B4), Operand::reg(Reg::Rax, Width::B4)],
                Width::B4,
            ),
            &[0x85, 0xc0],
        ),
    ];
    for (instr, want) in cases {
        let enc = encode(instr).expect("encodes");
        assert_eq!(&enc, want, "encoding drifted for {instr}");
        let dec = decode(&enc, ADDR).expect("decodes");
        let mut expect = instr.clone();
        expect.addr = ADDR;
        expect.len = enc.len() as u8;
        assert_eq!(dec, expect, "round-trip drifted for {instr}");
        assert_agree(&enc, ADDR);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8192))]

    /// Random byte soup: the decoders agree everywhere, Ok and Err alike.
    #[test]
    fn random_bytes_agree(
        bytes in proptest::collection::vec(any::<u8>(), 0..20),
        addr in any::<u64>(),
    ) {
        let table = decode(&bytes, addr);
        let ladder = decode_reference(&bytes, addr);
        prop_assert_eq!(table, ladder);
    }

    /// Prefix-heavy soup biases the generator into the corners the
    /// uniform generator rarely reaches (width overrides, REX stacking,
    /// rep on string ops, TooLong).
    #[test]
    fn prefix_heavy_bytes_agree(
        prefixes in proptest::collection::vec(
            prop_oneof![
                Just(0x66u8), Just(0xf2), Just(0xf3), Just(0xf0),
                Just(0x2e), Just(0x65), 0x40u8..0x50,
            ],
            0..18,
        ),
        tail in proptest::collection::vec(any::<u8>(), 0..8,),
        addr in any::<u64>(),
    ) {
        let mut bytes = prefixes;
        bytes.extend(tail);
        let table = decode(&bytes, addr);
        let ladder = decode_reference(&bytes, addr);
        prop_assert_eq!(table, ladder);
    }
}
