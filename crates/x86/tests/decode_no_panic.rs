//! Arbitrary byte soup must never panic the decoder: every input
//! yields `Ok(instr)` or a structured `DecodeError`. This is the
//! front line of the lifter's never-crash contract — reachable code
//! bytes come straight from untrusted binaries.

use hgl_x86::decode;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4096))]

    #[test]
    fn decode_never_panics_on_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..24),
        addr in any::<u64>(),
    ) {
        // Ok or Err both fine; a panic fails the test.
        let _ = decode(&bytes, addr);
    }

    #[test]
    fn decode_never_panics_on_prefix_heavy_bytes(
        prefixes in proptest::collection::vec(
            prop_oneof![
                Just(0x66u8), Just(0x67), Just(0xf2), Just(0xf3),
                0x40u8..0x50, // REX
            ],
            0..8,
        ),
        tail in proptest::collection::vec(any::<u8>(), 0..16),
    ) {
        let mut bytes = prefixes;
        bytes.extend(tail);
        let _ = decode(&bytes, 0x40_1000);
    }
}
