//! Differential encoder-completeness sweep: `encode(decode(bytes)) ==
//! bytes` for every instruction byte the corpus generator can put into
//! an executable segment. Identity recompilation (`hgl-rewrite`)
//! re-encodes each lifted instruction and splices it back at its
//! original address, so the encoder must be *total and canonical* on
//! the generator's emittable set — any instruction that decodes from a
//! corpus binary but re-encodes differently (or not at all) would make
//! the identity rewrite diverge from the original image.
//!
//! Two directions are covered:
//!   1. byte-first — linear-sweep decode whole generated study
//!      binaries, re-encode every instruction, and demand the exact
//!      original bytes back;
//!   2. instruction-first — proptest over the emittable operand
//!      shapes, demanding `encode` is stable under `decode` (the
//!      canonical-form fixpoint `encode(decode(encode(i))) ==
//!      encode(i)`).

use hgl_corpus::xen::gen_study_binary;
use hgl_x86::{decode, encode, Cond, Instr, MemOperand, Mnemonic, Operand, Reg, RegRef, Width};
use proptest::prelude::*;

/// Linear-sweep every executable segment of `bin`: each decoded
/// instruction must re-encode to exactly the bytes it was decoded
/// from.
fn sweep_binary(bin: &hgl_elf::Binary, what: &str) -> usize {
    let mut checked = 0usize;
    for seg in &bin.segments {
        if !bin.is_code(seg.vaddr) {
            continue;
        }
        let mut off = 0usize;
        while off < seg.bytes.len() {
            let addr = seg.vaddr + off as u64;
            let window = &seg.bytes[off..seg.bytes.len().min(off + 15)];
            let instr = match decode(window, addr) {
                Ok(i) => i,
                Err(e) => panic!("{what}: undecodable bytes {window:02x?} at {addr:#x}: {e:?}"),
            };
            let re = encode(&instr)
                .unwrap_or_else(|e| panic!("{what}: `{instr}` at {addr:#x} unencodable: {e}"));
            assert_eq!(
                re,
                &window[..instr.len as usize],
                "{what}: `{instr}` at {addr:#x} re-encodes differently",
            );
            checked += 1;
            off += instr.len as usize;
        }
    }
    checked
}

/// Byte-first sweep over a spread of study binaries (every generator
/// profile: plain, jump-table, callback-heavy, mixed; binaries and
/// libraries).
#[test]
fn corpus_binaries_reencode_byte_identically() {
    let mut total = 0usize;
    for i in 0..12u64 {
        let bin = gen_study_binary(0x9e37_79b9_7f4a_7c15 ^ (i * 0x3779), i % 3 == 2);
        total += sweep_binary(&bin, &format!("study binary #{i}"));
    }
    assert!(total > 1_500, "sweep too small to be meaningful: {total} instructions");
}

/// The generator's failure fixtures also feed the rewrite pipeline's
/// guard-efficacy path; their text must re-encode identically too.
#[test]
fn failure_fixtures_reencode_byte_identically() {
    use hgl_corpus::failures;
    for (name, bin) in [
        ("ret2win", failures::ret2win()),
        ("stack_probe", failures::stack_probe()),
        ("nonstandard_rsp", failures::nonstandard_rsp()),
        ("callee_saved_clobber", failures::callee_saved_clobber()),
        ("ret_slot_overwrite", failures::ret_slot_overwrite()),
        ("induced_overflow", failures::induced_overflow()),
        ("vsa_unbounded_indirect", failures::vsa_unbounded_indirect()),
        ("corrupted_return", failures::corrupted_return()),
    ] {
        let n = sweep_binary(&bin, name);
        assert!(n > 0, "{name}: empty text");
    }
}

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(Reg::from_number)
}

/// Memory operands in the shapes the generator emits: plain base+disp
/// (stack slots, param writes), SIB with scaled index (lea, jump-table
/// loads), and RIP-relative / absolute data references.
fn arb_gen_mem(size: Width) -> impl Strategy<Value = MemOperand> {
    let disp = prop_oneof![
        Just(0i64),
        Just(-1i64),
        Just(-128i64),
        Just(-129i64),
        Just(127i64),
        Just(128i64),
        -0x200i64..0x200,
        Just(0x60_1000i64),
    ];
    (arb_reg(), arb_reg().prop_filter("index != rsp", |r| *r != Reg::Rsp), disp, 0u8..6).prop_map(
        move |(base, index, disp, shape)| match shape {
            0 => MemOperand::base_disp(base, disp, size),
            1 => MemOperand::sib(Some(base), index, 8, disp, size),
            2 => MemOperand::sib(Some(base), index, 1, disp, size),
            3 => MemOperand::sib(None, index, 4, disp, size),
            4 => MemOperand::absolute(disp, size),
            _ => MemOperand::rip_rel(disp, size),
        },
    )
}

/// Instructions drawn from the generator's emittable set — the same
/// mnemonic stems `hgl_corpus::gen::emittable_mnemonics()` pins, over
/// the operand shapes the generator and the shadow-stack instrumenter
/// produce.
fn arb_emittable() -> impl Strategy<Value = Instr> {
    let w48 = prop_oneof![Just(Width::B4), Just(Width::B8)];
    let group1 = (
        prop_oneof![
            Just(Mnemonic::Add),
            Just(Mnemonic::Sub),
            Just(Mnemonic::Xor),
            Just(Mnemonic::Cmp),
        ],
        w48.clone(),
    )
        .prop_flat_map(|(m, w)| {
            prop_oneof![
                (arb_reg(), arb_reg()).prop_map(move |(a, b)| Instr::new(
                    m,
                    vec![Operand::reg(a, w), Operand::reg(b, w)],
                    w
                )),
                (arb_reg(), -0x200i64..0x200).prop_map(move |(a, v)| Instr::new(
                    m,
                    vec![Operand::reg(a, w), Operand::Imm(v)],
                    w
                )),
                (arb_gen_mem(w), arb_reg()).prop_map(move |(mem, r)| Instr::new(
                    m,
                    vec![Operand::Mem(mem), Operand::reg(r, w)],
                    w
                )),
                (arb_reg(), arb_gen_mem(w)).prop_map(move |(r, mem)| Instr::new(
                    m,
                    vec![Operand::reg(r, w), Operand::Mem(mem)],
                    w
                )),
            ]
        });

    let mov = w48.clone().prop_flat_map(|w| {
        prop_oneof![
            (arb_reg(), arb_reg()).prop_map(move |(a, b)| Instr::new(
                Mnemonic::Mov,
                vec![Operand::reg(a, w), Operand::reg(b, w)],
                w
            )),
            (arb_gen_mem(w), arb_reg()).prop_map(move |(mem, r)| Instr::new(
                Mnemonic::Mov,
                vec![Operand::Mem(mem), Operand::reg(r, w)],
                w
            )),
            (arb_reg(), arb_gen_mem(w)).prop_map(move |(r, mem)| Instr::new(
                Mnemonic::Mov,
                vec![Operand::reg(r, w), Operand::Mem(mem)],
                w
            )),
            (arb_gen_mem(Width::B4), -0x8000i64..0x8000).prop_map(|(mem, v)| Instr::new(
                Mnemonic::Mov,
                vec![Operand::Mem(mem), Operand::Imm(v)],
                Width::B4
            )),
            (arb_reg(), 0i64..0x7fff_ffff).prop_map(|(r, v)| Instr::new(
                Mnemonic::Mov,
                vec![Operand::reg(r, Width::B4), Operand::Imm(v)],
                Width::B4
            )),
        ]
    });

    let movabs = (arb_reg(), any::<i64>()).prop_map(|(r, v)| {
        Instr::new(Mnemonic::Movabs, vec![Operand::reg64(r), Operand::Imm(v)], Width::B8)
    });

    let imul = (arb_reg(), arb_reg(), prop_oneof![-128i64..128, Just(300i64), Just(-300i64)])
        .prop_map(|(d, s, v)| {
            Instr::new(
                Mnemonic::Imul,
                vec![Operand::reg64(d), Operand::reg64(s), Operand::Imm(v)],
                Width::B8,
            )
        });

    let shl = (arb_reg(), 1i64..9).prop_map(|(r, v)| {
        Instr::new(Mnemonic::Shl, vec![Operand::reg64(r), Operand::Imm(v)], Width::B8)
    });

    let lea = (arb_reg(), arb_gen_mem(Width::B8)).prop_map(|(r, mem)| {
        Instr::new(Mnemonic::Lea, vec![Operand::reg64(r), Operand::Mem(mem)], Width::B8)
    });

    let stack = prop_oneof![
        arb_reg().prop_map(|r| Instr::new(Mnemonic::Push, vec![Operand::reg64(r)], Width::B8)),
        arb_reg().prop_map(|r| Instr::new(Mnemonic::Pop, vec![Operand::reg64(r)], Width::B8)),
    ];

    let branch = (0u64..0x10_0000, 0u8..18).prop_map(|(t, n)| {
        let mut i = match n {
            0..=7 => Instr::new(Mnemonic::Jcc(Cond::from_number(n)), vec![Operand::Imm(t as i64)], Width::B8),
            8 => Instr::new(Mnemonic::Call, vec![Operand::Imm(t as i64)], Width::B8),
            _ => Instr::new(Mnemonic::Jmp, vec![Operand::Imm(t as i64)], Width::B8),
        };
        i.addr = 0x8000;
        i
    });

    let indirect = prop_oneof![
        arb_reg().prop_map(|r| Instr::new(Mnemonic::Call, vec![Operand::reg64(r)], Width::B8)),
        arb_reg().prop_map(|r| Instr::new(Mnemonic::Jmp, vec![Operand::reg64(r)], Width::B8)),
        arb_gen_mem(Width::B8)
            .prop_map(|m| Instr::new(Mnemonic::Jmp, vec![Operand::Mem(m)], Width::B8)),
    ];

    let nullary = prop_oneof![
        Just(Instr::new(Mnemonic::Ret, vec![], Width::B8)),
        Just(Instr::new(Mnemonic::Endbr64, vec![], Width::B8)),
        Just(Instr::new(Mnemonic::Hlt, vec![], Width::B8)),
    ];

    prop_oneof![group1, mov, movabs, imul, shl, lea, stack, branch, indirect, nullary]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4096))]

    /// Canonical-form fixpoint: the encoder's output is stable under a
    /// decode/re-encode cycle, and the decoded instruction matches the
    /// input modulo `addr`/`len` bookkeeping.
    #[test]
    fn encode_is_canonical_on_emittable_set(instr in arb_emittable()) {
        let bytes = encode(&instr).expect("emittable instructions encode");
        prop_assert!(bytes.len() <= 15, "too long: {:02x?}", bytes);
        let decoded = decode(&bytes, instr.addr).expect("own encodings decode");
        let mut expected = instr.clone();
        expected.addr = instr.addr;
        expected.len = bytes.len() as u8;
        prop_assert_eq!(&decoded, &expected, "decode drifted for bytes {:02x?}", bytes);
        let re = encode(&decoded).expect("decoded form re-encodes");
        prop_assert_eq!(&re, &bytes, "encode not canonical for `{}`", instr);
    }
}

/// Explicit regression pins for the encodings with shortest-form
/// hazards: `[r13+0]` (disp8-0 rule), `[r12]` (SIB escape), imm8/imm32
/// boundary values, shift-by-one D1 form, and B1 registers 4–7 (REX
/// forcing). Every case must be byte-stable through decode→encode.
#[test]
fn shortest_form_hazards_are_canonical() {
    let cases: Vec<Instr> = vec![
        Instr::new(
            Mnemonic::Mov,
            vec![
                Operand::reg64(Reg::Rax),
                Operand::Mem(MemOperand::base_disp(Reg::R13, 0, Width::B8)),
            ],
            Width::B8,
        ),
        Instr::new(
            Mnemonic::Mov,
            vec![
                Operand::reg64(Reg::Rax),
                Operand::Mem(MemOperand::base_disp(Reg::R12, 0, Width::B8)),
            ],
            Width::B8,
        ),
        Instr::new(
            Mnemonic::Mov,
            vec![
                Operand::reg64(Reg::Rcx),
                Operand::Mem(MemOperand::base_disp(Reg::Rbp, 0, Width::B8)),
            ],
            Width::B8,
        ),
        Instr::new(Mnemonic::Add, vec![Operand::reg64(Reg::Rax), Operand::Imm(127)], Width::B8),
        Instr::new(Mnemonic::Add, vec![Operand::reg64(Reg::Rax), Operand::Imm(128)], Width::B8),
        Instr::new(Mnemonic::Add, vec![Operand::reg64(Reg::Rax), Operand::Imm(-128)], Width::B8),
        Instr::new(Mnemonic::Add, vec![Operand::reg64(Reg::Rax), Operand::Imm(-129)], Width::B8),
        Instr::new(Mnemonic::Shl, vec![Operand::reg64(Reg::Rdx), Operand::Imm(1)], Width::B8),
        Instr::new(Mnemonic::Shl, vec![Operand::reg64(Reg::Rdx), Operand::Imm(2)], Width::B8),
        Instr::new(
            Mnemonic::Mov,
            vec![Operand::Reg(RegRef::new(Reg::Rsi, Width::B1)), Operand::Imm(1)],
            Width::B1,
        ),
        Instr::new(
            Mnemonic::Mov,
            vec![
                Operand::reg64(Reg::R10),
                Operand::Mem(MemOperand::sib(Some(Reg::Rsp), Reg::R13, 8, -8, Width::B8)),
            ],
            Width::B8,
        ),
    ];
    for instr in cases {
        let bytes = encode(&instr).expect("hazard case encodes");
        let decoded = decode(&bytes, 0).expect("hazard case decodes");
        let re = encode(&decoded).expect("hazard case re-encodes");
        assert_eq!(re, bytes, "`{instr}` not canonical: {bytes:02x?} vs {re:02x?}");
    }
}
