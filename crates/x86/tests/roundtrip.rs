//! Property tests: `decode(encode(i)) == i` for arbitrary well-formed
//! instructions, and decode totality on arbitrary byte soup.

use hgl_x86::{decode, encode, Cond, Instr, MemOperand, Mnemonic, Operand, Reg, RegRef, Width};
use proptest::prelude::*;

fn arb_width() -> impl Strategy<Value = Width> {
    prop_oneof![Just(Width::B1), Just(Width::B2), Just(Width::B4), Just(Width::B8)]
}

fn arb_wide_width() -> impl Strategy<Value = Width> {
    prop_oneof![Just(Width::B2), Just(Width::B4), Just(Width::B8)]
}

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(Reg::from_number)
}

fn arb_regref(w: Width) -> impl Strategy<Value = RegRef> {
    arb_reg().prop_map(move |r| RegRef::new(r, w))
}

fn arb_mem(size: Width) -> impl Strategy<Value = MemOperand> {
    let base = prop_oneof![Just(None), arb_reg().prop_map(Some)];
    let index = prop_oneof![
        Just(None),
        arb_reg().prop_filter("index != rsp", |r| *r != Reg::Rsp).prop_map(Some)
    ];
    let scale = prop_oneof![Just(1u8), Just(2), Just(4), Just(8)];
    let disp = prop_oneof![Just(0i64), -128i64..128, -0x8000_0000i64..0x8000_0000i64];
    (base, index, scale, disp, any::<bool>()).prop_map(move |(base, index, scale, disp, rip)| {
        if rip && base.is_none() && index.is_none() {
            MemOperand::rip_rel(disp, size)
        } else {
            MemOperand {
                base,
                index,
                scale: if index.is_some() { scale } else { 1 },
                disp,
                size,
                rip_relative: false,
            }
        }
    })
}

fn arb_rm(w: Width) -> impl Strategy<Value = Operand> {
    prop_oneof![
        arb_regref(w).prop_map(Operand::Reg),
        arb_mem(w).prop_map(Operand::Mem),
    ]
}

fn imm_for(w: Width) -> impl Strategy<Value = i64> {
    match w {
        Width::B1 => (-128i64..128).boxed(),
        Width::B2 => (-0x8000i64..0x8000).boxed(),
        _ => (-0x8000_0000i64..0x8000_0000).boxed(),
    }
}

fn arb_instr() -> impl Strategy<Value = Instr> {
    let group1 = (
        prop_oneof![
            Just(Mnemonic::Add),
            Just(Mnemonic::Or),
            Just(Mnemonic::Adc),
            Just(Mnemonic::Sbb),
            Just(Mnemonic::And),
            Just(Mnemonic::Sub),
            Just(Mnemonic::Xor),
            Just(Mnemonic::Cmp),
        ],
        arb_width(),
    )
        .prop_flat_map(|(m, w)| {
            prop_oneof![
                (arb_rm(w), arb_regref(w)).prop_map(move |(rm, r)| {
                    Instr::new(m, vec![rm, Operand::Reg(r)], w)
                }),
                (arb_regref(w), arb_mem(w)).prop_map(move |(r, mem)| {
                    Instr::new(m, vec![Operand::Reg(r), Operand::Mem(mem)], w)
                }),
                (arb_rm(w), imm_for(w)).prop_map(move |(rm, v)| {
                    Instr::new(m, vec![rm, Operand::Imm(v)], w)
                }),
            ]
        });

    let mov = arb_width().prop_flat_map(|w| {
        prop_oneof![
            (arb_rm(w), arb_regref(w)).prop_map(move |(rm, r)| {
                Instr::new(Mnemonic::Mov, vec![rm, Operand::Reg(r)], w)
            }),
            (arb_regref(w), arb_mem(w)).prop_map(move |(r, mem)| {
                Instr::new(Mnemonic::Mov, vec![Operand::Reg(r), Operand::Mem(mem)], w)
            }),
            (arb_mem(w), imm_for(w)).prop_map(move |(mem, v)| {
                Instr::new(Mnemonic::Mov, vec![Operand::Mem(mem), Operand::Imm(v)], w)
            }),
        ]
    });

    let shifts = (
        prop_oneof![
            Just(Mnemonic::Shl),
            Just(Mnemonic::Shr),
            Just(Mnemonic::Sar),
            Just(Mnemonic::Rol),
            Just(Mnemonic::Ror),
        ],
        arb_width(),
    )
        .prop_flat_map(|(m, w)| {
            (arb_rm(w), 1i64..64).prop_map(move |(rm, amt)| {
                Instr::new(m, vec![rm, Operand::Imm(amt)], w)
            })
        });

    let unary = (
        prop_oneof![
            Just(Mnemonic::Not),
            Just(Mnemonic::Neg),
            Just(Mnemonic::Inc),
            Just(Mnemonic::Dec),
            Just(Mnemonic::Mul),
            Just(Mnemonic::Div),
            Just(Mnemonic::Idiv),
        ],
        arb_width(),
    )
        .prop_flat_map(|(m, w)| arb_rm(w).prop_map(move |rm| Instr::new(m, vec![rm], w)));

    let stack = prop_oneof![
        arb_reg().prop_map(|r| Instr::new(Mnemonic::Push, vec![Operand::reg64(r)], Width::B8)),
        arb_reg().prop_map(|r| Instr::new(Mnemonic::Pop, vec![Operand::reg64(r)], Width::B8)),
        imm_for(Width::B4).prop_map(|v| Instr::new(Mnemonic::Push, vec![Operand::Imm(v)], Width::B8)),
    ];

    let cc_family = (0u8..16, arb_wide_width()).prop_flat_map(|(n, w)| {
        let c = Cond::from_number(n);
        prop_oneof![
            (arb_regref(w), arb_rm(w)).prop_map(move |(d, rm)| {
                Instr::new(Mnemonic::Cmovcc(c), vec![Operand::Reg(d), rm], w)
            }),
            arb_rm(Width::B1).prop_map(move |rm| {
                Instr::new(Mnemonic::Setcc(c), vec![rm], Width::B1)
            }),
        ]
    });

    let ext = (arb_wide_width(), prop_oneof![Just(Width::B1), Just(Width::B2)]).prop_flat_map(
        |(dw, sw)| {
            (arb_regref(dw), arb_rm(sw), any::<bool>()).prop_map(move |(d, rm, zx)| {
                let m = if zx { Mnemonic::Movzx } else { Mnemonic::Movsx };
                Instr::new(m, vec![Operand::Reg(d), rm], dw)
            })
        },
    );

    let lea = arb_wide_width().prop_flat_map(|w| {
        (arb_regref(w), arb_mem(w)).prop_map(move |(d, mem)| {
            Instr::new(Mnemonic::Lea, vec![Operand::Reg(d), Operand::Mem(mem)], w)
        })
    });

    let nullary = prop_oneof![
        Just(Instr::new(Mnemonic::Ret, vec![], Width::B8)),
        Just(Instr::new(Mnemonic::Leave, vec![], Width::B8)),
        Just(Instr::new(Mnemonic::Nop, vec![], Width::B8)),
        Just(Instr::new(Mnemonic::Cdq, vec![], Width::B4)),
        Just(Instr::new(Mnemonic::Cqo, vec![], Width::B8)),
        Just(Instr::new(Mnemonic::Endbr64, vec![], Width::B8)),
        Just(Instr::new(Mnemonic::Ud2, vec![], Width::B8)),
        Just(Instr::new(Mnemonic::Syscall, vec![], Width::B8)),
    ];

    let branches = (0u64..0x10_0000, any::<bool>(), 0u8..16).prop_map(|(t, is_call, n)| {
        let mut i = if is_call {
            Instr::new(Mnemonic::Call, vec![Operand::Imm(t as i64)], Width::B8)
        } else if n < 8 {
            Instr::new(Mnemonic::Jmp, vec![Operand::Imm(t as i64)], Width::B8)
        } else {
            Instr::new(Mnemonic::Jcc(Cond::from_number(n)), vec![Operand::Imm(t as i64)], Width::B8)
        };
        i.addr = 0x8000;
        i
    });

    let indirect = arb_rm(Width::B8).prop_flat_map(|rm| {
        prop_oneof![
            Just(Instr::new(Mnemonic::Jmp, vec![rm], Width::B8)),
            Just(Instr::new(Mnemonic::Call, vec![rm], Width::B8)),
        ]
    });

    // The remaining generator-emittable shapes (`hgl_corpus::gen`):
    // `movabs r64, imm64`, two- and three-operand `imul`, and `test`.
    let movabs = (arb_reg(), any::<i64>()).prop_map(|(r, v)| {
        Instr::new(Mnemonic::Movabs, vec![Operand::reg64(r), Operand::Imm(v)], Width::B8)
    });

    let imul = arb_wide_width().prop_flat_map(|w| {
        prop_oneof![
            (arb_regref(w), arb_rm(w)).prop_map(move |(d, rm)| {
                Instr::new(Mnemonic::Imul, vec![Operand::Reg(d), rm], w)
            }),
            // imm8 and imm32 forms (0x6b / 0x69).
            (arb_regref(w), arb_rm(w), imm_for(w)).prop_map(move |(d, rm, v)| {
                Instr::new(Mnemonic::Imul, vec![Operand::Reg(d), rm, Operand::Imm(v)], w)
            }),
        ]
    });

    let test = arb_width().prop_flat_map(|w| {
        prop_oneof![
            (arb_rm(w), arb_regref(w)).prop_map(move |(rm, r)| {
                Instr::new(Mnemonic::Test, vec![rm, Operand::Reg(r)], w)
            }),
            (arb_rm(w), imm_for(w)).prop_map(move |(rm, v)| {
                Instr::new(Mnemonic::Test, vec![rm, Operand::Imm(v)], w)
            }),
        ]
    });

    prop_oneof![
        group1, mov, shifts, unary, stack, cc_family, ext, lea, nullary, branches, indirect,
        movabs, imul, test
    ]
}

/// Every mnemonic stem the program generator can emit has a
/// representative instruction that round-trips byte-exactly. This
/// pins the trace oracle's coverage floor to codec reality: a stem
/// the codec cannot round-trip would poison every campaign.
#[test]
fn generator_emittable_stems_roundtrip() {
    use hgl_corpus::gen::{emittable_mnemonics, mnemonic_stem};
    use std::collections::BTreeSet;

    let rep: Vec<Instr> = vec![
        Instr::new(Mnemonic::Add, vec![Operand::reg64(Reg::Rax), Operand::Imm(8)], Width::B8),
        Instr::new(Mnemonic::Call, vec![Operand::Imm(0x9000)], Width::B8),
        Instr::new(Mnemonic::Cmp, vec![Operand::reg(Reg::Rax, Width::B4), Operand::Imm(3)], Width::B4),
        Instr::new(Mnemonic::Endbr64, vec![], Width::B8),
        Instr::new(
            Mnemonic::Imul,
            vec![Operand::reg64(Reg::Rcx), Operand::reg64(Reg::Rcx), Operand::Imm(3)],
            Width::B8,
        ),
        Instr::new(Mnemonic::Jcc(Cond::Ne), vec![Operand::Imm(0x9000)], Width::B8),
        Instr::new(Mnemonic::Jmp, vec![Operand::Imm(0x9000)], Width::B8),
        Instr::new(
            Mnemonic::Lea,
            vec![
                Operand::reg64(Reg::Rdx),
                Operand::Mem(MemOperand {
                    base: Some(Reg::Rax),
                    index: Some(Reg::Rcx),
                    scale: 8,
                    disp: 0x10,
                    size: Width::B8,
                    rip_relative: false,
                }),
            ],
            Width::B8,
        ),
        Instr::new(
            Mnemonic::Mov,
            vec![Operand::reg64(Reg::Rdi), Operand::reg64(Reg::Rsi)],
            Width::B8,
        ),
        Instr::new(
            Mnemonic::Movabs,
            vec![Operand::reg64(Reg::Rax), Operand::Imm(0x1234_5678_9abc_def0u64 as i64)],
            Width::B8,
        ),
        Instr::new(Mnemonic::Pop, vec![Operand::reg64(Reg::Rbp)], Width::B8),
        Instr::new(Mnemonic::Push, vec![Operand::reg64(Reg::Rbp)], Width::B8),
        Instr::new(Mnemonic::Ret, vec![], Width::B8),
        Instr::new(Mnemonic::Shl, vec![Operand::reg64(Reg::Rax), Operand::Imm(4)], Width::B8),
        Instr::new(Mnemonic::Sub, vec![Operand::reg64(Reg::Rsp), Operand::Imm(0x38)], Width::B8),
        Instr::new(
            Mnemonic::Xor,
            vec![Operand::reg(Reg::Rax, Width::B4), Operand::reg(Reg::Rax, Width::B4)],
            Width::B4,
        ),
    ];

    let mut seen = BTreeSet::new();
    for mut i in rep {
        i.addr = 0x8000;
        let bytes = encode(&i).expect("representative encodes");
        let mut expected = i.clone();
        expected.len = bytes.len() as u8;
        let decoded = decode(&bytes, i.addr).expect("representative decodes");
        assert_eq!(decoded, expected, "stem {}", mnemonic_stem(i.mnemonic));
        seen.insert(mnemonic_stem(i.mnemonic));
    }
    for stem in emittable_mnemonics() {
        assert!(seen.contains(*stem), "no representative for generator stem `{stem}`");
    }
}

// `mov r8, ah`-style encodings are legitimately rejected; everything
// generated here avoids high-byte registers, so encoding must succeed.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    #[test]
    fn encode_decode_roundtrip(instr in arb_instr()) {
        let bytes = encode(&instr).expect("generated instructions are encodable");
        prop_assert!(bytes.len() <= 15, "encoding too long: {bytes:02x?}");
        let mut expected = instr.clone();
        expected.len = bytes.len() as u8;
        let decoded = decode(&bytes, instr.addr).expect("own encodings decode");
        prop_assert_eq!(decoded, expected, "bytes {:02x?}", bytes);
    }

    #[test]
    fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..20), addr: u64) {
        let _ = decode(&bytes, addr);
    }

    #[test]
    fn decode_reports_consistent_length(bytes in proptest::collection::vec(any::<u8>(), 16..18)) {
        if let Ok(i) = decode(&bytes, 0) {
            // Re-decoding the exact prefix must give the same instruction.
            let again = decode(&bytes[..i.len as usize], 0).expect("prefix decodes");
            assert_eq!(again, i);
        }
    }
}

#[test]
fn bswap_and_loop_roundtrip() {
    for (bytes, text) in [
        (&[0x0f, 0xc8][..], "bswap eax"),
        (&[0x48, 0x0f, 0xcb][..], "bswap rbx"),
        (&[0x49, 0x0f, 0xcf][..], "bswap r15"),
        (&[0xe2, 0xfe][..], "loop 0x1000"),
        (&[0xe1, 0x10][..], "loope 0x1012"),
        (&[0xe0, 0x00][..], "loopne 0x1002"),
        (&[0xe3, 0x05][..], "jrcxz 0x1007"),
    ] {
        let i = decode(bytes, 0x1000).expect("decodes");
        assert_eq!(i.to_string(), text);
        let re = encode(&i).expect("encodes");
        assert_eq!(re, bytes, "roundtrip for {text}");
    }
}
