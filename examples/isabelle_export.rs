//! Step 2: export a lifted binary to Isabelle/HOL and validate every
//! Hoare triple executably.
//!
//! ```text
//! cargo run --example isabelle_export [output.thy]
//! ```

use hgl_asm::Asm;
use hgl_core::{LiftConfig, Lifter};
use hgl_export::{export_theory, validate_lift, ValidateConfig};
use hgl_x86::{Cond, Instr, MemOperand, Mnemonic, Operand, Reg, Width};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A function with a frame, a branch, a caller-pointer write and an
    // external call — enough to exercise definitions, lemmas, axioms
    // and obligations.
    let mut asm = Asm::new();
    asm.label("main");
    asm.push(Reg::Rbp);
    asm.mov(Operand::reg64(Reg::Rbp), Operand::reg64(Reg::Rsp));
    asm.ins(Instr::new(
        Mnemonic::Mov,
        vec![Operand::Mem(MemOperand::base_disp(Reg::Rdi, 0, Width::B8)), Operand::Imm(1)],
        Width::B8,
    ));
    asm.ins(Instr::new(
        Mnemonic::Cmp,
        vec![Operand::reg(Reg::Rsi, Width::B4), Operand::Imm(10)],
        Width::B4,
    ));
    asm.jcc(Cond::B, "skip");
    asm.call_ext("puts");
    asm.label("skip");
    asm.pop(Reg::Rbp);
    asm.ret();
    let bin = asm.entry("main").assemble()?;

    let lifted = Lifter::new(&bin).with_config(LiftConfig::default()).lift_entry(bin.entry);
    assert!(lifted.is_lifted(), "reject: {:?}", lifted.reject_reason());

    // --- Export ---
    let thy = export_theory(&lifted, "demo_binary");
    println!("=== Generated Isabelle/HOL theory (excerpt) ===\n");
    for line in thy.lines().take(60) {
        println!("{line}");
    }
    let total_lines = thy.lines().count();
    println!("... ({total_lines} lines total, {} lemmas)", hgl_export::isabelle::lemma_count(&thy));
    if let Some(path) = std::env::args().nth(1) {
        std::fs::write(&path, &thy)?;
        println!("\nfull theory written to {path}");
    }

    // --- Executable validation ---
    println!("\n=== Executable validation (randomized concrete testing) ===\n");
    let report = validate_lift(&bin, &lifted, &ValidateConfig::default());
    println!("edge groups:        {}", report.total);
    println!("checked by testing: {} ({} samples passed)", report.checked, report.samples_passed);
    println!("assumed (calls):    {}", report.assumed);
    println!("annotated/skipped:  {}", report.annotated);
    println!("vacuous:            {}", report.vacuous);
    println!("counterexamples:    {}", report.failed.len());
    for f in &report.failed {
        println!("  FAILED {} {}: {}", f.from, f.instr, f.detail);
    }
    assert!(report.all_proven(), "all triples must validate");
    println!("\nAll Hoare triples validated — the analogue of the paper's");
    println!("\"without exception, all Hoare triples could be proven automatically\".");
    Ok(())
}
