//! Quickstart: assemble a small function, lift it to a Hoare Graph,
//! and inspect the generated invariants.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use hgl_asm::Asm;
use hgl_core::{LiftConfig, Lifter};
use hgl_x86::{Instr, MemOperand, Mnemonic, Operand, Reg, Width};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Synthesize a binary: a classic C-style frame function.
    //
    //    long f(long x) { long local = x + 1; return local * 2; }
    let mut asm = Asm::new();
    asm.label("f");
    asm.push(Reg::Rbp);
    asm.mov(Operand::reg64(Reg::Rbp), Operand::reg64(Reg::Rsp));
    // lea rax, [rdi + 1]
    asm.ins(Instr::new(
        Mnemonic::Lea,
        vec![
            Operand::reg64(Reg::Rax),
            Operand::Mem(MemOperand::base_disp(Reg::Rdi, 1, Width::B8)),
        ],
        Width::B8,
    ));
    // mov [rbp - 8], rax ; mov rax, [rbp - 8]
    asm.ins(Instr::new(
        Mnemonic::Mov,
        vec![Operand::Mem(MemOperand::base_disp(Reg::Rbp, -8, Width::B8)), Operand::reg64(Reg::Rax)],
        Width::B8,
    ));
    asm.ins(Instr::new(
        Mnemonic::Mov,
        vec![Operand::reg64(Reg::Rax), Operand::Mem(MemOperand::base_disp(Reg::Rbp, -8, Width::B8))],
        Width::B8,
    ));
    // shl rax, 1 ; pop rbp ; ret
    asm.ins(Instr::new(Mnemonic::Shl, vec![Operand::reg64(Reg::Rax), Operand::Imm(1)], Width::B8));
    asm.pop(Reg::Rbp);
    asm.ret();
    let binary = asm.entry("f").assemble()?;
    println!("Synthesized binary: entry {:#x}, {} mapped bytes\n", binary.entry, binary.mapped_len());

    // 2. Lift: disassembly + control flow + invariants, simultaneously.
    let result = Lifter::new(&binary).with_config(LiftConfig::default()).lift_entry(binary.entry);
    assert!(result.is_lifted(), "lift rejected: {:?}", result.reject_reason());
    let f = &result.functions[&binary.entry];

    println!("=== Hoare Graph ===");
    print!("{}", f.graph);

    println!("\n=== Invariants (one per vertex) ===");
    for (vid, v) in &f.graph.vertices {
        println!("{vid}:");
        println!("    {}", v.state.pred);
        println!("    memory model: {}", *v.state.model);
    }

    println!("\n=== Sanity properties ===");
    println!("returns normally:       {}", f.returns);
    println!("verification errors:    {}", f.verification_errors.len());
    println!("annotations:            {}", f.annotations.len());
    println!("assumptions used:       {}", f.assumptions.len());
    for a in &f.assumptions {
        println!("    {a}");
    }

    // 3. The final invariant proves the function's result: the exit
    //    state knows rax == (rdi0 + 1) * 2.
    let exit = &f.graph.vertices[&hgl_core::VertexId::Exit];
    println!("\nAt exit, rax == {}", exit.state.pred.reg(Reg::Rax));
    Ok(())
}
