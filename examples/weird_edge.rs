//! The §2 example of the paper, ported to x86-64: overapproximative
//! lifting discovers a "weird" edge — a ROP gadget reachable only when
//! two caller pointers alias.
//!
//! ```text
//! cargo run --example weird_edge
//! ```

use hgl_asm::Asm;
use hgl_core::{LiftConfig, Lifter};
use hgl_core::VertexId;
use hgl_emu::Machine;
use hgl_x86::{decode, Cond, Instr, MemOperand, Mnemonic, Operand, Reg, RegRef, Width};

fn ins(m: Mnemonic, ops: Vec<Operand>, w: Width) -> Instr {
    Instr::new(m, ops, w)
}

fn mem(base: Reg, disp: i64, size: Width) -> Operand {
    Operand::Mem(MemOperand::base_disp(base, disp, size))
}

fn build() -> (hgl_elf::Binary, u64) {
    let mut asm = Asm::new();
    asm.label("weird");
    // mov eax, edi ; cmp eax, 1 ; ja done      (bounded index)
    asm.ins(ins(Mnemonic::Mov, vec![Operand::reg(Reg::Rax, Width::B4), Operand::reg(Reg::Rdi, Width::B4)], Width::B4));
    asm.ins(ins(Mnemonic::Cmp, vec![Operand::reg(Reg::Rax, Width::B4), Operand::Imm(1)], Width::B4));
    asm.jcc(Cond::A, "done");
    // mov rax, [table + rax*8]                 (a_jt)
    let load = ins(
        Mnemonic::Mov,
        vec![Operand::reg64(Reg::Rax), Operand::Mem(MemOperand::sib(None, Reg::Rax, 8, 0, Width::B8))],
        Width::B8,
    );
    asm.ins_mem_label(load, 1, "table");
    // mov [rsi], rax                           (*rsi := a_jt)
    asm.ins(ins(Mnemonic::Mov, vec![mem(Reg::Rsi, 0, Width::B8), Operand::reg64(Reg::Rax)], Width::B8));
    // mov qword [rdx], carrier+1               (the §2 `mov [esi], 1`)
    let poison = ins(Mnemonic::Mov, vec![mem(Reg::Rdx, 0, Width::B8), Operand::Imm(0)], Width::B8);
    asm.ins_imm_label_off(poison, 1, "carrier", 1);
    // jmp [rsi]
    asm.ins(ins(Mnemonic::Jmp, vec![mem(Reg::Rsi, 0, Width::B8)], Width::B8));
    asm.label("t0");
    asm.ret();
    asm.label("t1");
    asm.ret();
    asm.label("done");
    asm.ret();
    // carrier: "mov eax, 0xc3" hides a `ret` (byte 0xc3) at carrier+1.
    asm.label("carrier");
    asm.ins(ins(Mnemonic::Mov, vec![Operand::reg(Reg::Rax, Width::B4), Operand::Imm(0xc3)], Width::B4));
    asm.ret();
    asm.jump_table("table", &["t0", "t1"]);
    let bin = asm.entry("weird").assemble().expect("assembles");
    let seg = &bin.segments.iter().find(|s| s.flags.x && s.covers(bin.entry, 1)).expect("text");
    let pos = seg.bytes.windows(5).position(|w| w == [0xb8, 0xc3, 0x00, 0x00, 0x00]).expect("carrier");
    (bin.clone(), seg.vaddr + pos as u64 + 1)
}

fn main() {
    let (bin, gadget) = build();
    println!("=== The §2 example, ported to x86-64 ===\n");
    println!("The function reads a jump-table pointer a_jt, stores it through rsi,");
    println!("stores a constant through rdx, then jumps through rsi. If rsi and rdx");
    println!("alias, the constant overwrites a_jt — and the constant happens to be");
    println!("{gadget:#x}, the middle of another instruction, whose byte 0xc3 is a");
    println!("hidden `ret`: a ROP gadget.\n");

    // Step 1: the lifter finds the weird edge statically.
    let result = Lifter::new(&bin).with_config(LiftConfig::default()).lift_entry(bin.entry);
    assert!(result.is_lifted(), "reject: {:?}", result.reject_reason());
    let f = &result.functions[&bin.entry];
    println!("--- Lifted Hoare Graph ({} states, {} edges) ---", f.graph.state_count(), f.graph.edges.len());
    for e in &f.graph.edges {
        let weird = matches!(e.to, VertexId::At(a, _) if a == gadget);
        println!("  {} --[{}]--> {}{}", e.from, e.instr, e.to, if weird { "   <== WEIRD EDGE" } else { "" });
    }
    let weird_vertices = f.graph.vertices_at(gadget);
    assert!(!weird_vertices.is_empty(), "the weird edge must be found");
    println!("\nInvariant at the gadget vertex (note the aliasing clause):");
    println!("  {}", f.graph.vertices[&weird_vertices[0]].state.pred);

    // The gadget decodes as `ret`.
    let i = decode(bin.fetch_window(gadget).expect("code"), gadget).expect("decodes");
    println!("\nBytes at {gadget:#x} decode as: {i}");

    // Step 2 (dynamic confirmation): concretely execute both scenarios.
    println!("\n--- Concrete confirmation on the emulator ---");
    for (rsi, rdx, label) in [(0x9000u64, 0xa000u64, "separate"), (0x9000, 0x9000, "ALIASED")] {
        let mut m = Machine::from_binary(&bin);
        m.push_return_address(0x7fff_dead_0000);
        m.set_reg(RegRef::full(Reg::Rdi), 0);
        m.set_reg(RegRef::full(Reg::Rsi), rsi);
        m.set_reg(RegRef::full(Reg::Rdx), rdx);
        for _ in 0..6 {
            m.step().expect("step");
        }
        println!("  rsi={rsi:#x} rdx={rdx:#x} ({label}): after jmp, rip = {:#x}{}",
            m.rip,
            if m.rip == gadget { "  <- hijacked to the gadget" } else { "  (intended target)" });
    }
}
