//! A miniature version of the Xen case study (Table 1): generate a
//! corpus of binaries and library functions, lift every unit, and
//! summarize outcomes.
//!
//! ```text
//! cargo run --release --example xen_study [seed]
//! ```
//!
//! For the full Table-1 reproduction use `cargo run --release --bin
//! table1`.

use hgl_corpus::xen::{build_study, run_study, study_config, Outcome, StudySpec};

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(7);
    let study = build_study(&StudySpec::mini(), seed);
    println!("Generated {} corpus units (seed {seed})\n", study.units.len());

    let results = run_study(&study, &study_config());
    println!(
        "{:<12} {:<12} {:>10} {:>8} {:>8}  {:>4} {:>3} {:>3}  outcome",
        "directory", "unit", "expected", "instrs", "states", "A", "B", "C"
    );
    for r in &results {
        println!(
            "{:<12} {:<12} {:>10} {:>8} {:>8}  {:>4} {:>3} {:>3}  {:?}",
            r.directory,
            r.name,
            format!("{:?}", r.expected),
            r.instructions,
            r.states,
            r.indirections.0,
            r.indirections.1,
            r.indirections.2,
            r.outcome
        );
    }
    let lifted = results.iter().filter(|r| r.outcome == Outcome::Lifted).count();
    println!("\n{lifted}/{} units lifted", results.len());
}
