//! Regenerates **Figure 3** of the paper: verification time vs
//! instruction count per lifted library function, demonstrating that
//! the two are only weakly correlated.
//!
//! ```text
//! cargo run --release --bin fig3 [seed]
//! ```
//!
//! Prints a CSV series (`instructions,micros`) followed by the summary
//! statistics the paper discusses (largest function, longest
//! verification, Pearson correlation).

use hgl_corpus::xen::{build_study, run_study, study_config, Outcome, StudySpec, UnitKind};
// (fig3 runs sequentially: per-unit wall-clock times are the measurement)

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(2022);
    let study = build_study(&StudySpec::table1(), seed);
    let results = run_study(&study, &study_config());

    let mut series: Vec<(usize, u128)> = Vec::new();
    for (u, r) in study.units.iter().zip(&results) {
        if u.kind == UnitKind::LibraryFunction && r.outcome == Outcome::Lifted {
            series.push((r.instructions, r.time.as_micros()));
        }
    }
    series.sort_unstable();

    println!("# Figure 3: verification time vs instruction count (library functions)");
    println!("instructions,micros");
    for (n, t) in &series {
        println!("{n},{t}");
    }

    // Summary statistics.
    let n = series.len() as f64;
    let mean_x = series.iter().map(|(x, _)| *x as f64).sum::<f64>() / n;
    let mean_y = series.iter().map(|(_, y)| *y as f64).sum::<f64>() / n;
    let cov = series
        .iter()
        .map(|(x, y)| (*x as f64 - mean_x) * (*y as f64 - mean_y))
        .sum::<f64>();
    let var_x = series.iter().map(|(x, _)| (*x as f64 - mean_x).powi(2)).sum::<f64>();
    let var_y = series.iter().map(|(_, y)| (*y as f64 - mean_y).powi(2)).sum::<f64>();
    let r = cov / (var_x.sqrt() * var_y.sqrt()).max(f64::EPSILON);
    let largest = series.iter().max_by_key(|(x, _)| *x).copied().unwrap_or((0, 0));
    let slowest = series.iter().max_by_key(|(_, y)| *y).copied().unwrap_or((0, 0));

    println!("# functions: {}", series.len());
    println!("# largest function: {} instructions, {} us", largest.0, largest.1);
    println!("# slowest verification: {} us at {} instructions", slowest.1, slowest.0);
    println!("# Pearson correlation(time, size): {r:.3}");
    println!("# (the paper finds \"very little correlation\"; the slowest unit is");
    println!("#  rarely the largest, because join behaviour dominates)");
}
