//! `hgl` — the command-line lifter.
//!
//! ```text
//! hgl lift <binary.elf> [--function ADDR | --all] [--workers N]
//!                       [--timeout SECS] [--json] [--metrics]
//!                       [--refine-indirect]
//!                       [--store DIR] [--store-verify]
//! hgl lint <binary.elf> [--function ADDR] [--json]
//! hgl export <binary.elf> [--out theory.thy]
//! hgl validate <binary.elf> [--samples N]
//! hgl disasm <binary.elf>
//! hgl cfg <binary.elf> [--function ADDR]     # Graphviz DOT
//! hgl serve [--listen ADDR] [--workers N] [--queue N]
//!           [--store DIR] [--max-wall SECS]
//! hgl rewrite --in <binary.elf> --out <binary.elf>
//!             [--pass shadow-stack] [--verify] [--metrics]
//! ```
//!
//! `lift` prints the Hoare Graph summary, annotations, proof
//! obligations and assumptions; `--all` lifts every discovered
//! function on the parallel engine instead of one entry's closure;
//! `--metrics` appends the `hgl-metrics-v1` phase/cache report;
//! `--refine-indirect` runs the analyze→re-lift refinement fixpoint
//! (strided-interval VSA recovers jump-table targets, which feed back
//! into the lift as hints until no new targets appear);
//! `--store DIR` makes `--all` incremental against a persistent
//! content-addressed artifact store rooted at DIR, and
//! `--store-verify` replays every store hit through the executable
//! differential checker before trusting it.
//! `serve` runs the persistent lifting daemon: JSONL requests over
//! TCP multiplexed onto the engine with one warm solver cache and one
//! shared store, admission control, per-request deadlines and crash
//! isolation (see `crates/serve`).
//! `rewrite` re-emits a lifted binary as a runnable ELF: identity
//! recompilation by default (every lifted instruction re-encoded and
//! checked byte-identical), plus opt-in instrumentation passes —
//! `--pass shadow-stack` plants a shadow-stack guard at every return
//! the static lints could not prove safe. `--verify` validates the
//! artifact: re-lift Hoare-Graph correspondence for identity rewrites,
//! and a seeded original-vs-rewritten differential trace run in both
//! modes (see `crates/rewrite`).
//! `lint` runs the static analyses (write classification and
//! soundness lints) and exits non-zero on any error-severity finding;
//! `export` writes the Isabelle/HOL theory; `validate` runs the
//! executable Step-2 check; `disasm` is a plain recursive-traversal
//! disassembly listing of the lifted instructions. The JSON surfaces
//! (`--json`, `--metrics`) share one versioned envelope: a `schema`
//! name and a `version` field.

#![forbid(unsafe_code)]
use hgl_analysis::{analyze, AnalysisConfig, Severity};
use hgl_core::lift::{LiftConfig, LiftResult};
use hgl_core::{Lifter, MetricsSnapshot};
use hgl_elf::Binary;
use hgl_export::{
    export_dot, export_json, export_lint_json, export_metrics_json, export_theory, validate_lift,
    ValidateConfig,
};
use hgl_serve::{ServeConfig, Server};
use hgl_store::{Store, StoreOptions};
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> ExitCode {
    eprintln!("usage: hgl <lift|lint|export|validate|disasm|cfg> <binary.elf> [options]");
    eprintln!("       hgl serve [--listen ADDR] [--workers N] [--queue N] [--store DIR] [--max-wall SECS]");
    eprintln!("       hgl rewrite --in BIN --out BIN [--pass shadow-stack] [--verify] [--metrics]");
    eprintln!("  --function ADDR   lift from a function address (hex ok) instead of the entry point");
    eprintln!("  --all             lift every discovered function (parallel whole-binary engine)");
    eprintln!("  --workers N       worker threads for --all (default: one per core)");
    eprintln!("  --timeout SECS    lifting wall-clock budget (default 60)");
    eprintln!("  --metrics         append the hgl-metrics-v1 JSON report (phases, solver cache)");
    eprintln!("  --refine-indirect analyze->re-lift fixpoint: VSA-recovered jump-table targets");
    eprintln!("                    feed back into the lift until no new targets appear");
    eprintln!("  --store DIR       persistent artifact store for incremental --all re-lifts");
    eprintln!("  --store-verify    replay every store hit through the differential checker");
    eprintln!("  --out FILE        output path for `export`");
    eprintln!("  --samples N       samples per edge for `validate` (default 16)");
    eprintln!("  --pass NAME       rewrite pass (repeatable); available: shadow-stack");
    eprintln!("  --verify          validate the rewritten artifact (re-lift + differential traces)");
    ExitCode::from(2)
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

/// Parse a flag's value, distinguishing "absent" (fine, use the
/// default) from "present but unparseable" (a usage error — silently
/// falling back would mask the typo).
fn parsed_flag<T>(args: &[String], name: &str, parse: impl Fn(&str) -> Option<T>) -> Option<T> {
    let raw = flag_value(args, name)?;
    match parse(&raw) {
        Some(v) => Some(v),
        None => {
            eprintln!("hgl: invalid value for {name}: {raw:?}");
            std::process::exit(2);
        }
    }
}

/// One CLI lift invocation: the result plus the frozen session
/// metrics, (in `--all` mode) the discovered roots, and (under
/// `--refine-indirect`) the refinement-fixpoint outcome.
struct LiftInvocation {
    result: LiftResult,
    metrics: MetricsSnapshot,
    roots: Option<Vec<u64>>,
    refined: Option<Refinement>,
}

/// The refinement outcome the CLI reports: fixpoint shape plus the
/// final indirect-target claims.
struct Refinement {
    rounds: usize,
    converged: bool,
    hints: std::collections::BTreeMap<u64, std::collections::BTreeSet<u64>>,
    /// Hinted jumps withdrawn mid-fixpoint (claim failed re-validation
    /// on a later round's graph); reported unresolved in the result.
    demoted: std::collections::BTreeSet<u64>,
}

fn do_lift(binary: &Binary, args: &[String]) -> LiftInvocation {
    let mut config = LiftConfig::default();
    if let Some(t) = parsed_flag(args, "--timeout", |s| s.parse().ok()) {
        config = config.timeout(Duration::from_secs(t));
    }
    let workers = parsed_flag(args, "--workers", |s| s.parse().ok()).unwrap_or(0usize);
    let store = flag_value(args, "--store").map(|dir| {
        let options = StoreOptions {
            verify: args.iter().any(|a| a == "--store-verify"),
            ..StoreOptions::default()
        };
        match Store::open_with(&dir, options) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("hgl: cannot open store {dir}: {e}");
                std::process::exit(2);
            }
        }
    });
    let mut lifter = Lifter::new(binary).with_config(config).workers(workers);
    if let Some(store) = &store {
        lifter = lifter.with_store(store);
    }
    let refine = args.iter().any(|a| a == "--refine-indirect");
    let resolver = hgl_analysis::VsaResolver::default();
    const REFINE_ROUNDS: usize = 8;
    if args.iter().any(|a| a == "--all") {
        if refine {
            let (report, refined) = lifter.lift_all_refined(&resolver, REFINE_ROUNDS);
            LiftInvocation {
                result: report.result,
                metrics: report.metrics,
                roots: Some(report.roots),
                refined: Some(Refinement {
                    rounds: refined.rounds,
                    converged: refined.converged,
                    hints: refined.hints,
                    demoted: refined.demoted,
                }),
            }
        } else {
            let report = lifter.lift_all();
            LiftInvocation {
                result: report.result,
                metrics: report.metrics,
                roots: Some(report.roots),
                refined: None,
            }
        }
    } else {
        let entry = parsed_flag(args, "--function", parse_u64).unwrap_or(binary.entry);
        if refine {
            let refined = lifter.lift_entry_refined(entry, &resolver, REFINE_ROUNDS);
            let metrics = lifter.metrics_snapshot();
            LiftInvocation {
                result: refined.result,
                metrics,
                roots: None,
                refined: Some(Refinement {
                    rounds: refined.rounds,
                    converged: refined.converged,
                    hints: refined.hints,
                    demoted: refined.demoted,
                }),
            }
        } else {
            let result = lifter.lift_entry(entry);
            let metrics = lifter.metrics_snapshot();
            LiftInvocation { result, metrics, roots: None, refined: None }
        }
    }
}

/// `hgl serve`: run the lifting daemon until a client sends the
/// `shutdown` op (or the process is killed).
fn do_serve(args: &[String]) -> ExitCode {
    let listen = flag_value(args, "--listen").unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let mut config = ServeConfig::default();
    if let Some(w) = parsed_flag(args, "--workers", |s| s.parse().ok()) {
        config.workers = w;
    }
    if let Some(q) = parsed_flag(args, "--queue", |s| s.parse().ok()) {
        config.queue_capacity = q;
    }
    if let Some(secs) = parsed_flag(args, "--max-wall", |s| s.parse().ok()) {
        config.max_request_wall = Duration::from_secs(secs);
    }
    config.store_dir = flag_value(args, "--store").map(std::path::PathBuf::from);
    let mut server = match Server::bind(&listen, config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("hgl: cannot bind {listen}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("hgl serve: listening on {}", server.local_addr());
    server.join();
    println!("hgl serve: shut down");
    ExitCode::SUCCESS
}

/// Deterministic seeded entry states for `hgl rewrite --verify`'s
/// differential trace run (the CLI-sized version of the campaign in
/// `hgl_oracle::differential`).
fn verify_entry_states(n: usize) -> Vec<hgl_oracle::EntryState> {
    fn mix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    (0..n as u64)
        .map(|k| hgl_oracle::EntryState {
            // Small rdi values first (jump-table cases), then large.
            rdi: if k < 3 { k } else { 64 + (mix(k) & 0xfff) },
            scratch: [
                mix(k ^ 1) & 0xffff,
                mix(k ^ 2) & 0xffff,
                mix(k ^ 3) & 0xffff,
                mix(k ^ 4),
                mix(k ^ 5) & 0xff,
                mix(k ^ 6) & 0xff,
            ],
        })
        .collect()
}

/// `hgl rewrite`: lift, transform, re-emit — refusing rather than
/// emitting anything it cannot argue is equivalent.
fn do_rewrite(args: &[String]) -> ExitCode {
    let (Some(in_path), Some(out_path)) = (flag_value(args, "--in"), flag_value(args, "--out"))
    else {
        eprintln!("hgl rewrite: both --in and --out are required");
        return usage();
    };
    let bytes = match std::fs::read(&in_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("hgl: cannot read {in_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let binary = match Binary::parse(&bytes) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("hgl: cannot parse {in_path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let pass_names: Vec<String> = args
        .iter()
        .enumerate()
        .filter(|(_, a)| *a == "--pass")
        .filter_map(|(i, _)| args.get(i + 1).cloned())
        .collect();
    let mut passes: Vec<Box<dyn hgl_rewrite::RewritePass>> = Vec::new();
    for name in &pass_names {
        match hgl_rewrite::pass::by_name(name) {
            Some(p) => passes.push(p),
            None => {
                eprintln!("hgl rewrite: unknown pass {name:?} (available: shadow-stack)");
                return ExitCode::from(2);
            }
        }
    }

    let report = Lifter::new(&binary).lift_all();
    if !report.result.is_lifted() {
        eprintln!(
            "hgl rewrite: {in_path} did not lift: {:?}",
            report.result.reject_reason()
        );
        return ExitCode::FAILURE;
    }
    let pass_refs: Vec<&dyn hgl_rewrite::RewritePass> =
        passes.iter().map(std::convert::AsRef::as_ref).collect();
    let mut out = match hgl_rewrite::rewrite(&binary, &report.result, &pass_refs) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("hgl rewrite: refused: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut failed = false;
    if args.iter().any(|a| a == "--verify") {
        // Identity artifacts must re-lift to an equivalent graph.
        if passes.is_empty() {
            let image = hgl_rewrite::elf_image(&out.binary);
            let verdict = match Binary::parse(&image) {
                Ok(reparsed) => hgl_rewrite::verify_relift(&report.result, &reparsed),
                Err(e) => {
                    eprintln!("hgl rewrite: emitted ELF does not parse: {e}");
                    return ExitCode::FAILURE;
                }
            };
            out.stats.verify_relift_ok = Some(verdict.ok());
            if verdict.ok() {
                println!(
                    "verify: re-lift corresponds ({} function(s))",
                    verdict.report.functions
                );
            } else {
                failed = true;
                eprintln!("verify: re-lift graph mismatch:");
                for d in &verdict.report.details {
                    eprintln!("  {d}");
                }
            }
        }
        // Both modes: seeded differential traces, original vs
        // rewritten, compared modulo the guard ABI when instrumented.
        let guarded = !passes.is_empty();
        let states = verify_entry_states(16);
        let mut traces_ok = true;
        for (k, es) in states.iter().enumerate() {
            let orig = hgl_oracle::run_raw(&binary, es, None, 20_000);
            let rw = hgl_oracle::run_raw(&out.binary, es, Some(&out), 20_000);
            if let Some(detail) = hgl_oracle::compare_runs(&orig, &rw, guarded) {
                traces_ok = false;
                failed = true;
                eprintln!("verify: trace {k} diverges: {detail}");
            }
        }
        out.stats.verify_traces_ok = Some(traces_ok);
        if traces_ok {
            println!("verify: {} differential trace(s), zero divergences", states.len());
        }
    }

    let image = hgl_rewrite::elf_image(&out.binary);
    if let Err(e) = std::fs::write(&out_path, &image) {
        eprintln!("hgl: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "{out_path}: {} function(s), {} instruction(s) re-encoded, {} guard(s), {} byte(s) added",
        out.stats.functions,
        out.stats.instructions_reencoded,
        out.stats.guards_inserted,
        out.stats.bytes_delta
    );
    if args.iter().any(|a| a == "--metrics") {
        let mut snapshot = report.metrics;
        snapshot.rewrite = Some(out.stats);
        print!("{}", export_metrics_json(&snapshot));
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `serve` takes no binary path; dispatch before the path parsing.
    if args.first().map(String::as_str) == Some("serve") {
        return do_serve(&args);
    }
    // `rewrite` names its binaries with --in/--out, not positionally.
    if args.first().map(String::as_str) == Some("rewrite") {
        return do_rewrite(&args);
    }
    let (Some(cmd), Some(path)) = (args.first(), args.get(1)) else {
        return usage();
    };
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("hgl: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let binary = match Binary::parse(&bytes) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("hgl: cannot parse {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    match cmd.as_str() {
        "lift" => {
            let inv = do_lift(&binary, &args);
            let want_metrics = args.iter().any(|a| a == "--metrics");
            let result = inv.result;
            if args.iter().any(|a| a == "--json") {
                print!("{}", export_json(&result));
                if want_metrics {
                    print!("{}", export_metrics_json(&inv.metrics));
                }
                return if result.is_lifted() { ExitCode::SUCCESS } else { ExitCode::FAILURE };
            }
            if let Some(roots) = &inv.roots {
                println!("{path}: {} root(s) discovered by the whole-binary engine", roots.len());
            }
            println!(
                "{path}: {} function(s), {} instructions, {} symbolic states, {:?}",
                result.functions.len(),
                result.instruction_count(),
                result.state_count(),
                result.elapsed
            );
            let (a, b, c) = result.indirection_counts();
            println!("indirections: {a} resolved, {b} unresolved jumps, {c} unresolved calls");
            if let Some(r) = &inv.refined {
                let targets: usize = r.hints.values().map(std::collections::BTreeSet::len).sum();
                println!(
                    "refinement: {} round(s), {}, {} indirect site(s) resolved to {} target(s)",
                    r.rounds,
                    if r.converged { "converged" } else { "round bound hit" },
                    r.hints.len(),
                    targets,
                );
                for (site, set) in &r.hints {
                    let list: Vec<String> = set.iter().map(|t| format!("{t:#x}")).collect();
                    println!("  {site:#x} -> {{{}}}", list.join(", "));
                }
                if !r.demoted.is_empty() {
                    let list: Vec<String> = r.demoted.iter().map(|a| format!("{a:#x}")).collect();
                    println!(
                        "  {} claim(s) withdrawn (failed re-validation): {}",
                        r.demoted.len(),
                        list.join(", ")
                    );
                }
            }
            for (entry, f) in &result.functions {
                println!("\nfunction {entry:#x}: {} states, {} edges, returns: {}",
                    f.graph.state_count(), f.graph.edges.len(), f.returns);
                for ann in &f.annotations {
                    println!("  ANNOTATION {ann}");
                }
                for ob in &f.obligations {
                    println!("  OBLIGATION {ob}");
                }
                for asm in &f.assumptions {
                    println!("  ASSUMPTION {asm}");
                }
                for e in &f.verification_errors {
                    println!("  ERROR {e}");
                }
            }
            let code = match result.reject_reason() {
                None => {
                    println!("\nVERDICT: lifted (sound overapproximation under the stated assumptions)");
                    ExitCode::SUCCESS
                }
                Some(r) => {
                    println!("\nVERDICT: rejected — {r}");
                    ExitCode::FAILURE
                }
            };
            if want_metrics {
                print!("{}", export_metrics_json(&inv.metrics));
            }
            code
        }
        "lint" => {
            let result = do_lift(&binary, &args).result;
            let report = analyze(&binary, &result, &AnalysisConfig::default());
            if args.iter().any(|a| a == "--json") {
                print!("{}", export_lint_json(&report));
            } else {
                print!("{report}");
            }
            if report.count(Severity::Error) == 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        "export" => {
            let result = do_lift(&binary, &args).result;
            if !result.is_lifted() {
                eprintln!("hgl: {path} did not lift: {:?}", result.reject_reason());
                return ExitCode::FAILURE;
            }
            let name = std::path::Path::new(path)
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("binary")
                .replace(['-', '.'], "_");
            let thy = export_theory(&result, &name);
            match flag_value(&args, "--out") {
                Some(out) => {
                    if let Err(e) = std::fs::write(&out, &thy) {
                        eprintln!("hgl: cannot write {out}: {e}");
                        return ExitCode::FAILURE;
                    }
                    println!("{} lemmas written to {out}", hgl_export::isabelle::lemma_count(&thy));
                }
                None => print!("{thy}"),
            }
            ExitCode::SUCCESS
        }
        "validate" => {
            let result = do_lift(&binary, &args).result;
            if !result.is_lifted() {
                eprintln!("hgl: {path} did not lift: {:?}", result.reject_reason());
                return ExitCode::FAILURE;
            }
            let mut vc = ValidateConfig::default();
            if let Some(n) = parsed_flag(&args, "--samples", |s| s.parse().ok()) {
                vc.samples_per_edge = n;
            }
            let report = validate_lift(&binary, &result, &vc);
            println!(
                "{} edge groups: {} checked ({} samples), {} assumed, {} annotated, {} vacuous, {} FAILED",
                report.total,
                report.checked,
                report.samples_passed,
                report.assumed,
                report.annotated,
                report.vacuous,
                report.failed.len()
            );
            for f in &report.failed {
                println!("  COUNTEREXAMPLE fn {:#x} {} `{}`: {}", f.function, f.from, f.instr, f.detail);
            }
            if report.all_proven() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        "cfg" => {
            let result = do_lift(&binary, &args).result;
            let entry = flag_value(&args, "--function")
                .and_then(|s| parse_u64(&s))
                .unwrap_or(binary.entry);
            match export_dot(&result, entry) {
                Some(dot) => {
                    print!("{dot}");
                    ExitCode::SUCCESS
                }
                None => {
                    eprintln!("hgl: no lifted function at {entry:#x}");
                    ExitCode::FAILURE
                }
            }
        }
        "disasm" => {
            let result = do_lift(&binary, &args).result;
            for (entry, f) in &result.functions {
                println!("function {entry:#x}:");
                for (addr, instr) in f.graph.instructions() {
                    println!("  {addr:#x}: {instr}");
                }
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
