//! Regenerates **Table 1** of the paper: the Xen-like case-study
//! statistics summary.
//!
//! ```text
//! cargo run --release --bin table1 [seed]
//! ```
//!
//! Columns mirror the paper: unit composition (lifted + unprovable +
//! concurrency + timeout), instructions, symbolic states, resolved
//! indirections (A), unresolved jumps (B), unresolved calls (C), and
//! wall-clock time.

use hgl_corpus::xen::{build_study, run_study_parallel, study_config, Outcome, StudySpec, UnitKind, UnitResult};
use std::collections::BTreeMap;
use std::time::Duration;

#[derive(Default)]
struct RowAgg {
    total: usize,
    lifted: usize,
    unprovable: usize,
    concurrency: usize,
    timeout: usize,
    internal: usize,
    instrs: usize,
    states: usize,
    a: usize,
    b: usize,
    c: usize,
    time: Duration,
}

impl RowAgg {
    fn add(&mut self, r: &UnitResult) {
        self.total += 1;
        match r.outcome {
            Outcome::Lifted => self.lifted += 1,
            Outcome::Unprovable => self.unprovable += 1,
            Outcome::Concurrency => self.concurrency += 1,
            Outcome::Timeout => self.timeout += 1,
            Outcome::Internal => self.internal += 1,
        }
        if r.outcome == Outcome::Lifted {
            self.instrs += r.instructions;
            self.states += r.states;
            self.a += r.indirections.0;
            self.b += r.indirections.1;
            self.c += r.indirections.2;
        }
        self.time += r.time;
    }

    fn merge(&mut self, o: &RowAgg) {
        self.total += o.total;
        self.lifted += o.lifted;
        self.unprovable += o.unprovable;
        self.concurrency += o.concurrency;
        self.timeout += o.timeout;
        self.internal += o.internal;
        self.instrs += o.instrs;
        self.states += o.states;
        self.a += o.a;
        self.b += o.b;
        self.c += o.c;
        self.time += o.time;
    }
}

fn fmt_time(d: Duration) -> String {
    let s = d.as_secs();
    format!("{}:{:02}:{:02}.{:03}", s / 3600, s / 60 % 60, s % 60, d.subsec_millis())
}

fn print_row(name: &str, agg: &RowAgg) {
    println!(
        "{name:<20} {:>3} = {:>3}+{:>2}+{:>2}+{:>2}  {:>8} {:>8} {:>5} {:>4} {:>4}  {}",
        agg.total,
        agg.lifted,
        agg.unprovable,
        agg.concurrency,
        agg.timeout,
        agg.instrs,
        agg.states,
        agg.a,
        agg.b,
        agg.c,
        fmt_time(agg.time)
    );
}

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(2022);
    let spec = StudySpec::table1();
    println!("Table 1: Xen-like Case Study Statistics Summary");
    println!("(synthetic corpus, seed {seed}; composition per DESIGN.md follows the paper's rows)");
    println!();
    let study = build_study(&spec, seed);
    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let results = run_study_parallel(&study, &study_config(), workers);

    let mut rows: BTreeMap<(UnitKind, String), RowAgg> = BTreeMap::new();
    let kind_of: BTreeMap<String, UnitKind> =
        study.units.iter().map(|u| (u.directory.clone(), u.kind)).collect();
    for r in &results {
        let kind = kind_of[&r.directory];
        rows.entry((kind, r.directory.clone())).or_default().add(r);
    }

    println!(
        "{:<20} {:>20}  {:>8} {:>8} {:>5} {:>4} {:>4}  Time",
        "Directory", "Units (w+x+y+z)", "Instrs.", "States", "A", "B", "C"
    );
    for (section, kind) in [("Binaries", UnitKind::Binary), ("Library functions", UnitKind::LibraryFunction)] {
        println!("-- {section}");
        let mut total = RowAgg::default();
        // Preserve spec order.
        for row in &spec.rows {
            if row.kind != kind {
                continue;
            }
            if let Some(agg) = rows.get(&(kind, row.directory.clone())) {
                print_row(&row.directory, agg);
                total.merge(agg);
            }
        }
        print_row("Total", &total);
    }
    println!();
    println!("w lifted, x unprovable return address, y concurrency, z timeout");
    println!("A = resolved indirections   B = unresolved jumps   C = unresolved calls");
    let lifted: Vec<&UnitResult> = results.iter().filter(|r| r.outcome == Outcome::Lifted).collect();
    let instrs: usize = lifted.iter().map(|r| r.instructions).sum();
    let states: usize = lifted.iter().map(|r| r.states).sum();
    println!();
    println!(
        "Lifted units: {}/{}  |  states/instructions ratio: {:.2} (paper: \"close to 1\")",
        lifted.len(),
        results.len(),
        states as f64 / instrs.max(1) as f64
    );
    let mismatches = results
        .iter()
        .filter(|r| {
            use hgl_corpus::xen::ExpectedOutcome as E;
            !matches!(
                (r.expected, r.outcome),
                (E::Lifted, Outcome::Lifted)
                    | (E::UnprovableReturn, Outcome::Unprovable)
                    | (E::Concurrency, Outcome::Concurrency)
                    | (E::Timeout, Outcome::Timeout)
            )
        })
        .count();
    println!("Outcome mismatches vs construction: {mismatches}");
    // Graceful degradation: timed-out units still carry the partial
    // Hoare graph explored before the budget tripped.
    let timed_out: Vec<&UnitResult> = results.iter().filter(|r| r.outcome == Outcome::Timeout).collect();
    let partial_instrs: usize = timed_out.iter().map(|r| r.instructions).sum();
    println!(
        "Timed-out units: {}  |  instructions covered before budget exhaustion: {partial_instrs}",
        timed_out.len()
    );
    let internal = results.iter().filter(|r| r.outcome == Outcome::Internal).count();
    if internal > 0 {
        println!("Internal errors (isolated, study completed): {internal}");
    }
}
