//! Regenerates **Table 2** of the paper: CoreUtils-like binaries
//! exported to Isabelle/HOL, with every Hoare triple validated.
//!
//! ```text
//! cargo run --release --bin table2 [seed] [--write-theories DIR]
//! ```
//!
//! For each binary: lift, count instructions and resolved indirections,
//! export the Isabelle theory (one lemma per edge), and validate every
//! edge on randomized concrete states ("without exception, all Hoare
//! triples could be proven automatically", §5.2).

use hgl_core::Lifter;
use hgl_corpus::coreutils;
use hgl_export::{export_theory, validate_lift, ValidateConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1);
    let out_dir = args
        .iter()
        .position(|a| a == "--write-theories")
        .and_then(|i| args.get(i + 1))
        .cloned();

    println!("Table 2: Overview of binaries exported to Isabelle/HOL (synthetic, seed {seed})");
    println!();
    println!(
        "{:<10} {:>8} {:>8} {:>13} {:>8} {:>9} {:>8} {:>8}",
        "Binary", "#Instrs", "#Indir.", "(paper)", "#Lemmas", "#Checked", "#Assumed", "Failures"
    );

    let mut tot_instr = 0;
    let mut tot_ind = 0;
    let mut tot_lemmas = 0;
    let mut tot_failed = 0;
    for (spec, bin) in coreutils::build_all(seed) {
        let result = Lifter::new(&bin).lift_entry(bin.entry);
        assert!(result.is_lifted(), "{}: rejected: {:?}", spec.name, result.reject_reason());
        let (a, b, c) = result.indirection_counts();
        assert_eq!(b + c, 0, "{}: Table-2 binaries have no unresolved indirections", spec.name);

        let thy = export_theory(&result, spec.name);
        let lemmas = hgl_export::isabelle::lemma_count(&thy);
        if let Some(dir) = &out_dir {
            std::fs::create_dir_all(dir).expect("create output dir");
            std::fs::write(format!("{dir}/{}.thy", spec.name), &thy).expect("write theory");
        }

        let report = validate_lift(&bin, &result, &ValidateConfig::default());
        println!(
            "{:<10} {:>8} {:>8} {:>6}/{:>4}  {:>8} {:>9} {:>8} {:>8}",
            spec.name,
            result.instruction_count(),
            a,
            spec.paper_instructions,
            spec.paper_indirections,
            lemmas,
            report.checked,
            report.assumed,
            report.failed.len()
        );
        for f in &report.failed {
            println!("    COUNTEREXAMPLE {} {}: {}", f.from, f.instr, f.detail);
        }
        tot_instr += result.instruction_count();
        tot_ind += a;
        tot_lemmas += lemmas;
        tot_failed += report.failed.len();
    }
    println!();
    println!("Total: {tot_instr} instructions, {tot_ind} indirections, {tot_lemmas} lemmas, {tot_failed} failures");
    println!("(paper totals: 16 078 instructions, 37 indirections; all triples proven)");
    if let Some(dir) = out_dir {
        println!("Isabelle theories written to {dir}/");
    }
}
