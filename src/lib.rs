//! # hoare-lift
//!
//! Provably overapproximative lifting of C-compiled x86-64 binaries to
//! Hoare Graphs — a reproduction of Verbeek, Bockenek, Fu & Ravindran,
//! *"Formally Verified Lifting of C-Compiled x86-64 Binaries"*,
//! PLDI 2022.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! - [`x86`]: instruction model, decoder, encoder
//! - [`elf`]: ELF64 reader/writer
//! - [`asm`]: program builder for synthesizing test binaries
//! - [`emu`]: concrete x86-64 interpreter (independent semantics)
//! - [`expr`]: symbolic expressions
//! - [`solver`]: pointer-relation decision procedures
//! - [`core`]: predicates, memory models, Hoare-Graph extraction
//! - [`analysis`]: static analysis over extracted Hoare Graphs —
//!   dataflow fixpoint engine, soundness lints, write classification
//! - [`export`]: Isabelle/HOL export and executable validation
//! - [`store`]: persistent content-addressed artifact store for
//!   incremental re-lifting
//! - [`serve`]: the `hgl serve` lifting daemon — JSONL over TCP onto
//!   the parallel engine with admission control, deadlines, request
//!   coalescing and crash isolation
//! - [`corpus`]: synthetic evaluation corpora
//! - [`oracle`]: trace-level conformance oracle (differential
//!   campaigns of emulator traces replayed against Hoare Graphs,
//!   plus original-vs-rewritten differential rewriting campaigns)
//! - [`rewrite`]: verified rewriting — identity recompilation and
//!   shadow-stack instrumentation with per-artifact validation
//!
//! See `DESIGN.md` for the full system inventory and `EXPERIMENTS.md`
//! for the paper-vs-measured results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hgl_analysis as analysis;
pub use hgl_asm as asm;
pub use hgl_core as core;
pub use hgl_corpus as corpus;
pub use hgl_elf as elf;
pub use hgl_emu as emu;
pub use hgl_export as export;
pub use hgl_expr as expr;
pub use hgl_oracle as oracle;
pub use hgl_rewrite as rewrite;
pub use hgl_serve as serve;
pub use hgl_solver as solver;
pub use hgl_store as store;
pub use hgl_x86 as x86;
