//! Integration tests for the `hgl` command-line interface, driven
//! through the real compiled binary.

use hoare_lift::asm::Asm;
use hoare_lift::x86::{Instr, MemOperand, Mnemonic, Operand, Reg, Width};
use std::process::Command;

fn hgl() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hgl"))
}

fn write_demo_elf(dir: &std::path::Path, name: &str, with_overflow: bool) -> std::path::PathBuf {
    let mut asm = Asm::new();
    asm.label("main");
    asm.push(Reg::Rbp);
    asm.mov(Operand::reg64(Reg::Rbp), Operand::reg64(Reg::Rsp));
    if with_overflow {
        asm.ins(Instr::new(
            Mnemonic::Mov,
            vec![Operand::reg(Reg::Rax, Width::B4), Operand::reg(Reg::Rdi, Width::B4)],
            Width::B4,
        ));
        asm.ins(Instr::new(
            Mnemonic::Mov,
            vec![
                Operand::Mem(MemOperand::sib(Some(Reg::Rsp), Reg::Rax, 1, -0x40, Width::B1)),
                Operand::Imm(0x41),
            ],
            Width::B1,
        ));
    } else {
        asm.call_ext("puts");
    }
    asm.pop(Reg::Rbp);
    asm.ret();
    let bytes = asm.entry("main").assemble_elf().expect("assembles");
    let path = dir.join(name);
    std::fs::write(&path, bytes).expect("write elf");
    path
}

fn tmpdir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("hgl-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

#[test]
fn lift_reports_success_and_obligations() {
    let dir = tmpdir();
    let elf = write_demo_elf(&dir, "ok.elf", false);
    let out = hgl().args(["lift", elf.to_str().expect("utf8")]).output().expect("runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "stdout: {stdout}");
    assert!(stdout.contains("VERDICT: lifted"), "{stdout}");
    assert!(stdout.contains("OBLIGATION"), "{stdout}");
    assert!(stdout.contains("puts"), "{stdout}");
}

#[test]
fn lift_rejects_overflow_with_nonzero_exit() {
    let dir = tmpdir();
    let elf = write_demo_elf(&dir, "bad.elf", true);
    let out = hgl().args(["lift", elf.to_str().expect("utf8")]).output().expect("runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!out.status.success());
    assert!(stdout.contains("VERDICT: rejected"), "{stdout}");
    assert!(stdout.contains("return address"), "{stdout}");
}

#[test]
fn export_writes_theory_file() {
    let dir = tmpdir();
    let elf = write_demo_elf(&dir, "exp.elf", false);
    let thy = dir.join("exp.thy");
    let out = hgl()
        .args(["export", elf.to_str().expect("utf8"), "--out", thy.to_str().expect("utf8")])
        .output()
        .expect("runs");
    assert!(out.status.success());
    let text = std::fs::read_to_string(&thy).expect("theory written");
    assert!(text.starts_with("theory exp"));
    assert!(text.contains("lemma edge_"));
}

#[test]
fn validate_passes_on_clean_binary() {
    let dir = tmpdir();
    let elf = write_demo_elf(&dir, "val.elf", false);
    let out = hgl()
        .args(["validate", elf.to_str().expect("utf8"), "--samples", "4"])
        .output()
        .expect("runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("0 FAILED"), "{stdout}");
}

#[test]
fn disasm_lists_instructions() {
    let dir = tmpdir();
    let elf = write_demo_elf(&dir, "dis.elf", false);
    let out = hgl().args(["disasm", elf.to_str().expect("utf8")]).output().expect("runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("push rbp"), "{stdout}");
    assert!(stdout.contains("ret"), "{stdout}");
}

#[test]
fn usage_on_missing_args() {
    let out = hgl().output().expect("runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn garbage_input_is_a_clean_error() {
    let dir = tmpdir();
    let path = dir.join("garbage.elf");
    std::fs::write(&path, b"not an elf at all").expect("write");
    let out = hgl().args(["lift", path.to_str().expect("utf8")]).output().expect("runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot parse"), "{stderr}");
}

#[test]
fn lift_json_output() {
    let dir = tmpdir();
    let elf = write_demo_elf(&dir, "json.elf", false);
    let out = hgl().args(["lift", elf.to_str().expect("utf8"), "--json"]).output().expect("runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.trim_start().starts_with('{'), "{stdout}");
    assert!(stdout.contains("\"lifted\": true"), "{stdout}");
    assert!(stdout.contains("\"edges\""), "{stdout}");
}

/// A function with repeated stack spills and reloads: the same slot
/// pairs are queried again and again, so one lift already produces
/// solver-cache hits.
fn write_spill_elf(dir: &std::path::Path, name: &str) -> std::path::PathBuf {
    let mut asm = Asm::new();
    asm.label("main");
    for off in [-8i64, -16, -24] {
        asm.ins(Instr::new(
            Mnemonic::Mov,
            vec![
                Operand::Mem(MemOperand::base_disp(Reg::Rsp, off, Width::B8)),
                Operand::reg64(Reg::Rax),
            ],
            Width::B8,
        ));
    }
    for off in [-16i64, -8, -24, -16] {
        asm.ins(Instr::new(
            Mnemonic::Mov,
            vec![
                Operand::reg64(Reg::Rcx),
                Operand::Mem(MemOperand::base_disp(Reg::Rsp, off, Width::B8)),
            ],
            Width::B8,
        ));
    }
    asm.ret();
    let bytes = asm.entry("main").assemble_elf().expect("assembles");
    let path = dir.join(name);
    std::fs::write(&path, bytes).expect("write elf");
    path
}

#[test]
fn lift_metrics_reports_phases_and_cache() {
    let dir = tmpdir();
    let elf = write_spill_elf(&dir, "metrics.elf");
    let out = hgl()
        .args(["lift", elf.to_str().expect("utf8"), "--all", "--metrics"])
        .output()
        .expect("runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "stdout: {stdout}");
    assert!(stdout.contains("VERDICT: lifted"), "{stdout}");
    assert!(stdout.contains("\"schema\": \"hgl-metrics-v1\""), "{stdout}");
    // Per-phase timings are present...
    for phase in ["decode", "tau", "join", "solver", "export"] {
        assert!(stdout.contains(&format!("\"phase\": \"{phase}\"")), "missing {phase}: {stdout}");
    }
    // ...and the memoized solver cache saw real hits.
    let tail = &stdout[stdout.find("\"hit_rate\": ").expect("hit_rate field") + 12..];
    let hit_rate = tail
        .split([',', '}'])
        .next()
        .expect("value")
        .trim()
        .parse::<f64>()
        .expect("parses");
    assert!(hit_rate > 0.0, "expected cache hits, got rate {hit_rate}: {stdout}");
}

#[test]
fn cfg_emits_dot() {
    let dir = tmpdir();
    let elf = write_demo_elf(&dir, "cfg.elf", false);
    let out = hgl().args(["cfg", elf.to_str().expect("utf8")]).output().expect("runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.starts_with("digraph"), "{stdout}");
    assert!(stdout.contains("->"), "{stdout}");
}

#[test]
fn lint_passes_on_clean_binary() {
    let dir = tmpdir();
    let elf = write_demo_elf(&dir, "lint-ok.elf", false);
    let out = hgl().args(["lint", elf.to_str().expect("utf8")]).output().expect("runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "stdout: {stdout}");
    assert!(stdout.contains("analysis:"), "{stdout}");
    assert!(stdout.contains("writes:"), "{stdout}");
}

#[test]
fn lint_fails_on_callee_saved_clobber() {
    let dir = tmpdir();
    let mut asm = Asm::new();
    asm.label("clobber");
    asm.ins(Instr::new(
        Mnemonic::Mov,
        vec![Operand::reg64(Reg::Rbx), Operand::Imm(1)],
        Width::B8,
    ));
    asm.ret();
    let bytes = asm.entry("clobber").assemble_elf().expect("assembles");
    let path = dir.join("lint-bad.elf");
    std::fs::write(&path, bytes).expect("write elf");

    let out = hgl().args(["lint", path.to_str().expect("utf8")]).output().expect("runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!out.status.success(), "lint must exit non-zero: {stdout}");
    assert!(stdout.contains("error[callee-saved-clobber]"), "{stdout}");

    let out = hgl().args(["lint", path.to_str().expect("utf8"), "--json"]).output().expect("runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"schema\": \"hgl-lint-v1\""), "{stdout}");
    assert!(stdout.contains("\"rule\": \"callee-saved-clobber\""), "{stdout}");
}

#[test]
fn serve_subcommand_end_to_end() {
    use hgl_serve::{Client, Json};
    use std::io::BufRead;

    let dir = tmpdir();
    let elf = write_demo_elf(&dir, "served.elf", false);
    let image = std::fs::read(&elf).expect("read elf");

    // Port 0: the daemon prints the bound address on its first line.
    let mut child = hgl()
        .args(["serve", "--listen", "127.0.0.1:0", "--workers", "1"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn daemon");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = std::io::BufReader::new(stdout).lines();
    let banner = lines.next().expect("banner line").expect("read banner");
    let addr = banner.rsplit(' ').next().expect("address in banner").to_string();
    assert!(banner.contains("listening"), "{banner}");

    let mut c = Client::connect(&addr).expect("connect to daemon");
    c.set_timeout(Some(std::time::Duration::from_secs(60))).expect("timeout");
    assert_eq!(c.ping().expect("ping").get("status").and_then(Json::as_str), Some("ok"));
    let lifted = c.lift(&image, None, false).expect("lift over the wire");
    assert_eq!(lifted.get("status").and_then(Json::as_str), Some("ok"), "{lifted:?}");
    assert_eq!(lifted.get("lifted").and_then(Json::as_bool), Some(true), "{lifted:?}");

    // A client shutdown op terminates the process cleanly.
    c.shutdown().expect("shutdown op");
    let status = child.wait().expect("daemon exits");
    assert!(status.success(), "daemon exits zero after shutdown: {status:?}");
}

/// A masked jump table (`and eax, 3` bounds the index — no cmp/ja
/// guard, so the inline lift cannot resolve it) as an on-disk ELF.
fn write_masked_table_elf(dir: &std::path::Path, name: &str) -> std::path::PathBuf {
    let reg32 = |r: Reg| Operand::reg(r, Width::B4);
    let mut asm = Asm::new();
    asm.label("f");
    asm.ins(Instr::new(Mnemonic::Mov, vec![reg32(Reg::Rax), reg32(Reg::Rdi)], Width::B4));
    asm.ins(Instr::new(Mnemonic::And, vec![reg32(Reg::Rax), Operand::Imm(3)], Width::B4));
    let jmp = Instr::new(
        Mnemonic::Jmp,
        vec![Operand::Mem(MemOperand::sib(None, Reg::Rax, 8, 0, Width::B8))],
        Width::B8,
    );
    asm.ins_mem_label(jmp, 0, "table");
    for i in 0..4 {
        asm.label(&format!("case_{i}"));
        asm.ins(Instr::new(
            Mnemonic::Mov,
            vec![reg32(Reg::Rax), Operand::Imm(20 + i)],
            Width::B4,
        ));
        asm.jmp("join");
    }
    asm.label("join");
    asm.ret();
    asm.jump_table("table", &["case_0", "case_1", "case_2", "case_3"]);
    let bytes = asm.entry("f").assemble_elf().expect("assembles");
    let path = dir.join(name);
    std::fs::write(&path, bytes).expect("write elf");
    path
}

/// `hgl lift --refine-indirect`: the masked table is unresolved on the
/// plain lift, resolved (column B -> 0) under the refinement fixpoint,
/// and the CLI reports the fixpoint shape and the recovered targets.
#[test]
fn lift_refine_indirect_resolves_masked_table() {
    let dir = tmpdir();
    let elf = write_masked_table_elf(&dir, "masked.elf");

    // Plain lift: annotated, not rejected — column B > 0.
    let out = hgl().args(["lift", elf.to_str().expect("utf8")]).output().expect("runs");
    let plain = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{plain}");
    assert!(plain.contains("0 resolved"), "{plain}");
    assert!(plain.contains("ANNOTATION"), "{plain}");

    // Refined lift: converges, resolves the one site to 4 targets.
    let out = hgl()
        .args(["lift", elf.to_str().expect("utf8"), "--refine-indirect"])
        .output()
        .expect("runs");
    let refined = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{refined}");
    assert!(refined.contains("VERDICT: lifted"), "{refined}");
    assert!(refined.contains("0 unresolved jumps"), "{refined}");
    assert!(refined.contains("converged"), "{refined}");
    assert!(refined.contains("1 indirect site(s) resolved to 4 target(s)"), "{refined}");
    assert!(!refined.contains("ANNOTATION UNRESOLVED"), "{refined}");
}

/// `hgl lint` surfaces the `vsa-unbounded-indirect` warning for an
/// indirect jump through writable memory that no refinement can bound.
#[test]
fn lint_reports_unbounded_indirect() {
    let dir = tmpdir();
    // The same shape as `corpus::failures::vsa_unbounded_indirect`,
    // assembled to an on-disk ELF.
    let mut asm = Asm::new();
    asm.label("wild");
    asm.data("jptr", vec![0u8; 8]);
    asm.movabs_label(Reg::Rax, "jptr");
    asm.mov(
        Operand::reg64(Reg::Rax),
        Operand::Mem(MemOperand::base_disp(Reg::Rax, 0, Width::B8)),
    );
    asm.ins(Instr::new(Mnemonic::Jmp, vec![Operand::reg64(Reg::Rax)], Width::B8));
    let elf_bytes = asm.entry("wild").assemble_elf().expect("assembles");
    let path = dir.join("wild.elf");
    std::fs::write(&path, elf_bytes).expect("write elf");

    let out = hgl().args(["lint", path.to_str().expect("utf8")]).output().expect("runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Warning severity: exit stays zero, the rule is named.
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("vsa-unbounded-indirect"), "{stdout}");
}
