//! Concurrent `Lifter` sessions sharing one solver cache and one
//! artifact store — the exact sharing shape `hgl serve` runs with.
//!
//! Two threads lift the same binary at the same time through shared
//! state. The contract: no deadlock, byte-identical results on both
//! threads (and identical to an isolated reference session), and the
//! shared store left consistent for a warm replay.

use hgl_core::{ArtifactStore, Lifter};
use hgl_corpus::xen::gen_study_binary;
use hgl_solver::QueryCache;
use hgl_store::Store;
use std::path::PathBuf;
use std::sync::Arc;

fn tmpdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("hgl-concurrent-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("create temp dir");
    d
}

#[test]
fn concurrent_sessions_share_cache_and_store() {
    let dir = tmpdir("shared");
    let binary = gen_study_binary(21, false);
    let reference = format!("{:?}", Lifter::new(&binary).lift_all().result.functions);

    let cache = Arc::new(QueryCache::new());
    let store = Store::open(&dir).expect("open store");

    let (a, b) = std::thread::scope(|scope| {
        let run = |seed_delay_us: u64| {
            let cache = cache.clone();
            let binary = &binary;
            let store = &store;
            scope.spawn(move || {
                // Slight skew so the two sessions interleave rather
                // than running in lockstep.
                std::thread::sleep(std::time::Duration::from_micros(seed_delay_us));
                let report = Lifter::new(binary)
                    .with_cache(cache)
                    .with_store(store as &dyn ArtifactStore)
                    .lift_all();
                assert!(report.is_lifted(), "concurrent session must lift cleanly");
                format!("{:?}", report.result.functions)
            })
        };
        let ha = run(0);
        let hb = run(150);
        (ha.join().expect("session A"), hb.join().expect("session B"))
    });

    assert_eq!(a, reference, "session A matches the isolated reference");
    assert_eq!(b, reference, "session B matches the isolated reference");

    // The shared store ended up consistent: a fresh session replays
    // everything from it, byte-identically.
    assert!(store.object_count() > 0, "artifacts were published");
    let warm = Lifter::new(&binary).with_store(&store as &dyn ArtifactStore).lift_all();
    assert!(warm.metrics.store.expect("store attached").hits > 0, "warm replay hits");
    assert_eq!(format!("{:?}", warm.result.functions), reference);

    // The shared cache saw traffic from both sessions and stayed bound
    // to the (single) scope the whole time — no mid-run flush.
    let stats = cache.stats();
    assert!(stats.hits > 0, "the second session must reuse the first's verdicts: {stats:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_sessions_on_different_binaries_stay_sound() {
    // Two *different* binaries racing on one shared cache: scope
    // binding flushes between them in whatever order they land, so
    // results must still match isolated references — sharing may cost
    // warmth, never soundness.
    let bin_a = gen_study_binary(22, false);
    let bin_b = gen_study_binary(23, true);
    let ref_a = format!("{:?}", Lifter::new(&bin_a).lift_all().result.functions);
    let ref_b = format!("{:?}", Lifter::new(&bin_b).lift_all().result.functions);

    let cache = Arc::new(QueryCache::new());
    for _ in 0..3 {
        let (a, b) = std::thread::scope(|scope| {
            let ca = cache.clone();
            let cb = cache.clone();
            let ha = scope.spawn(|| {
                format!("{:?}", Lifter::new(&bin_a).with_cache(ca).lift_all().result.functions)
            });
            let hb = scope.spawn(|| {
                format!("{:?}", Lifter::new(&bin_b).with_cache(cb).lift_all().result.functions)
            });
            (ha.join().expect("A"), hb.join().expect("B"))
        });
        assert_eq!(a, ref_a, "cross-binary cache races must never change results");
        assert_eq!(b, ref_b, "cross-binary cache races must never change results");
    }
}
