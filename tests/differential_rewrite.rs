//! Full-scale differential rewriting campaigns (the issue's acceptance
//! bar): original-vs-rewritten trace equivalence over the synthesized
//! corpus, ≥200 trace pairs per mode, zero divergences, and per-binary
//! re-lift correspondence for the identity mode.

use hgl_oracle::{run_differential, DiffConfig};

/// Identity mode: exact equivalence — same normalised traces, same
/// stop causes, all sixteen final registers, the flags, and the full
/// memory write-delta. Every program's re-emitted ELF must also
/// re-lift to a Hoare Graph equivalent to the original lift.
#[test]
fn identity_differential_campaign() {
    let cfg = DiffConfig {
        programs: 60,
        entries_per_program: 4,
        relift_each: true,
        ..DiffConfig::default()
    };
    let report = run_differential(&cfg);
    assert!(report.divergence.is_none(), "identity divergence:\n{report}");
    assert!(
        report.traces_run >= 200,
        "campaign too small: {} trace pairs\n{report}",
        report.traces_run
    );
    assert_eq!(
        report.relifts_ok, report.programs_run,
        "every identity artifact must re-lift to an equivalent graph:\n{report}"
    );
    assert_eq!(report.rewrite_refused, 0, "identity rewriting never refuses:\n{report}");
    assert_eq!(report.guards_inserted, 0);
}

/// Shadow-stack mode: equivalence modulo the documented guard ABI
/// (guard-frame steps dropped by normalisation, `r10`/`r11`/flags not
/// compared, shadow-section writes excluded). Guards must never fire
/// on these benign traces.
#[test]
fn guarded_differential_campaign() {
    let cfg = DiffConfig {
        programs: 60,
        entries_per_program: 4,
        guarded: true,
        ..DiffConfig::default()
    };
    let report = run_differential(&cfg);
    assert!(report.divergence.is_none(), "guarded divergence:\n{report}");
    assert!(
        report.traces_run >= 200,
        "campaign too small: {} trace pairs\n{report}",
        report.traces_run
    );
    assert!(
        report.guards_inserted > 0,
        "campaign never exercised a guard — the mode is vacuous:\n{report}"
    );
}
