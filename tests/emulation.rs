//! Concrete execution of the synthesized corpora: every liftable
//! generated binary must also *run* on the emulator — from entry to a
//! clean return or a halt at an external stub — which cross-checks the
//! assembler, the ELF layout, the decoder and the interpreter against
//! each other.

use hoare_lift::corpus::coreutils;
use hoare_lift::corpus::xen::{build_study, ExpectedOutcome, StudySpec};
use hoare_lift::emu::{Event, Machine};
use hoare_lift::x86::{Reg, RegRef};

const SENTINEL: u64 = 0x7fff_dead_beef;

/// Run a binary from `entry` until it returns to the sentinel, halts
/// (external stubs are `hlt`), or exhausts the step budget.
fn run_to_completion(bin: &hoare_lift::elf::Binary, entry: u64) -> Result<&'static str, String> {
    let mut m = Machine::from_binary(bin);
    m.rip = entry;
    m.push_return_address(SENTINEL);
    // Conventional small arguments.
    m.set_reg(RegRef::full(Reg::Rdi), 1);
    m.set_reg(RegRef::full(Reg::Rsi), 0x7fff_0000_0000u64 - 0x100000);
    m.set_reg(RegRef::full(Reg::Rdx), 0x7fff_0000_0000u64 - 0x200000);
    for _ in 0..200_000 {
        if m.rip == SENTINEL {
            return Ok("returned");
        }
        // External stub page: treat as a no-op call (pop the return
        // address and resume), modelling a benign external function.
        if bin.external_at(m.rip).is_some() {
            let rsp = m.reg(Reg::Rsp);
            let ra = m.mem.read(rsp, 8);
            m.set_reg(RegRef::full(Reg::Rsp), rsp.wrapping_add(8));
            m.set_reg(RegRef::full(Reg::Rax), 0);
            m.rip = ra;
            continue;
        }
        if !bin.is_code(m.rip) {
            // A callback or wild jump through an uninitialised function
            // pointer left the text section: concrete execution cannot
            // continue meaningfully (the lifter flags these same sites
            // with unresolved-indirection annotations).
            return Ok("escaped");
        }
        match m.step() {
            Ok(Event::Normal) => {}
            Ok(Event::Halt) => return Ok("halted"),
            Ok(Event::Syscall) => {}
            Err(e) => return Err(format!("fault at {:#x}: {e}", m.rip)),
        }
    }
    Err("step budget exhausted".to_string())
}

#[test]
fn coreutils_binaries_execute() {
    for (spec, bin) in coreutils::build_all(1) {
        let outcome = run_to_completion(&bin, bin.entry)
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        assert_eq!(outcome, "returned", "{} must return cleanly", spec.name);
    }
}

#[test]
fn xen_liftable_units_execute() {
    let study = build_study(&StudySpec::mini(), 99);
    for unit in &study.units {
        if unit.expected != ExpectedOutcome::Lifted {
            continue;
        }
        let outcome = run_to_completion(&unit.binary, unit.entry)
            .unwrap_or_else(|e| panic!("{}: {e}", unit.name));
        assert!(
            outcome == "returned" || outcome == "escaped",
            "{}: unexpected outcome {outcome}",
            unit.name
        );
    }
}

/// The rejected-by-the-lifter binaries still *run* — rejection is
/// about provability, not about concrete crashes (for in-range
/// indices the overflow function is perfectly well-behaved).
#[test]
fn rejected_overflow_binary_runs_for_benign_inputs() {
    let bin = hoare_lift::corpus::failures::induced_overflow();
    let outcome = run_to_completion(&bin, bin.entry).expect("executes");
    assert_eq!(outcome, "returned");
}
