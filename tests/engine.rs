//! Parallel-engine determinism: `lift_all` on N workers must produce
//! a byte-identical result to the sequential engine.
//!
//! The engine guarantees this by running bulk-synchronous rounds —
//! workers only race *within* a round, and all cross-function
//! coordination (callee discovery, pending-return activation) happens
//! sequentially in sorted order between rounds. The JSON export is a
//! full serialization of the Hoare Graphs (vertices, invariants,
//! memory models, edges, diagnostics), so byte equality of the export
//! is equality of the lift.

use hoare_lift::core::Lifter;
use hoare_lift::corpus::xen::gen_study_binary;
use hoare_lift::export::export_json;

#[test]
fn parallel_lift_all_matches_sequential_byte_for_byte() {
    for seed in 0..12u64 {
        let bin = gen_study_binary(seed, seed % 3 == 0);

        let seq = Lifter::new(&bin).sequential();
        let seq_report = seq.lift_all();

        let par = Lifter::new(&bin).workers(4);
        let par_report = par.lift_all();

        assert_eq!(
            seq_report.roots, par_report.roots,
            "seed {seed}: root discovery must not depend on worker count"
        );
        let seq_json = export_json(&seq_report.result);
        let par_json = export_json(&par_report.result);
        if seq_json != par_json {
            let diff_line = seq_json
                .lines()
                .zip(par_json.lines())
                .position(|(a, b)| a != b)
                .map_or(0, |i| i + 1);
            panic!(
                "seed {seed}: parallel lift_all diverged from sequential \
                 (first differing line {diff_line})"
            );
        }
    }
}

#[test]
fn repeated_parallel_runs_are_identical() {
    let bin = gen_study_binary(42, false);
    let first = export_json(&Lifter::new(&bin).workers(4).lift_all().result);
    for _ in 0..3 {
        let again = export_json(&Lifter::new(&bin).workers(4).lift_all().result);
        assert_eq!(first, again, "parallel lift_all must be run-to-run deterministic");
    }
}

#[test]
fn engine_metrics_report_phases_and_cache_traffic() {
    let bin = gen_study_binary(7, false);
    let lifter = Lifter::new(&bin).workers(2);
    let report = lifter.lift_all();
    let m = &report.metrics;

    assert!(m.functions_lifted + m.functions_rejected > 0, "engine lifted nothing");
    assert!(m.rounds > 0, "engine must report its round count");
    assert!(m.elapsed_nanos > 0);
    let tau = m.phases.iter().find(|p| p.phase.name() == "tau").expect("tau phase");
    assert!(tau.count > 0, "tau phase never ticked: {:?}", m.phases);
    assert!(
        m.cache.hits + m.cache.misses > 0,
        "solver cache saw no traffic: {:?}",
        m.cache
    );
}
