//! The never-crash contract, end to end: corrupted binaries and
//! poisoned workers must never panic the pipeline or hang the study.
//!
//! Two harnesses:
//!
//! 1. A byte-level fault-injection campaign (≥200 corrupted images)
//!    through the full `parse → lift` pipeline. Every case must
//!    terminate within its budget with either a sound result (possibly
//!    partial) or a structured [`RejectReason`] — zero panics.
//! 2. A worker-panic injection into the parallel corpus driver: one
//!    poisoned unit degrades to `Outcome::Internal` while every other
//!    unit of the study completes normally.

use hoare_lift::core::lift::{LiftConfig, RejectReason};
use hoare_lift::corpus::inject::{elf_image, run_campaign, Fault};
use hoare_lift::corpus::xen::{
    build_study, classify_reject, lift_unit, run_study_parallel_with, study_config, Outcome,
    StudySpec,
};
use std::time::{Duration, Instant};

fn study_image() -> Vec<u8> {
    let study = build_study(&StudySpec::mini(), 2022);
    let unit = study
        .units
        .iter()
        .find(|u| u.expected == hoare_lift::corpus::xen::ExpectedOutcome::Lifted)
        .expect("mini study has liftable units");
    elf_image(&unit.binary)
}

/// ≥200 corrupted-image cases: all must terminate quickly with a
/// structured verdict; none may panic (a panic that escaped isolation
/// would abort the test process, an isolated one would show up in
/// `stats.internal`).
#[test]
fn campaign_terminates_with_structured_verdicts() {
    let image = study_image();
    let mut config = LiftConfig::default();
    // Tight per-case budget; the assertion below gives it slack.
    config.budget.wall_clock = Some(Duration::from_secs(5));
    config.limits.max_states = 2000;

    let start = Instant::now();
    let stats = run_campaign(&image, &config, 0xF0CC, 200);
    let elapsed = start.elapsed();

    assert_eq!(stats.cases, 200);
    assert_eq!(stats.internal, 0, "panic leaked into the pipeline: {stats:?}");
    assert_eq!(
        stats.lifted + stats.sound_reject + stats.resource_reject,
        200,
        "every case must be classified: {stats:?}"
    );
    // No hangs: the slowest single case stayed within its wall-clock
    // budget (plus scheduling slack).
    assert!(
        stats.max_case_time < Duration::from_secs(30),
        "case exceeded budget: {:?}",
        stats.max_case_time
    );
    assert!(elapsed < Duration::from_secs(600), "campaign wall clock blew up: {elapsed:?}");
    // The corruption model is aggressive enough that a healthy chunk
    // of cases actually reject (if everything still lifted, the
    // injector would be a no-op).
    assert!(stats.sound_reject + stats.resource_reject > 50, "injector too weak: {stats:?}");
}

/// A panic in one worker's lift degrades that unit to
/// `Outcome::Internal`; the rest of the study completes.
#[test]
fn worker_panic_degrades_one_unit_only() {
    let study = build_study(&StudySpec::mini(), 7);
    assert!(study.units.len() >= 3, "mini study too small for this test");
    let poisoned = study.units[1].name.clone();

    let config = study_config();
    let results = run_study_parallel_with(&study, &config, 4, |u, cfg| {
        if u.name == poisoned {
            panic!("injected worker fault");
        }
        lift_unit(u, cfg)
    });

    assert_eq!(results.len(), study.units.len(), "study must report every unit");
    for r in &results {
        if r.name == poisoned {
            assert_eq!(r.outcome, Outcome::Internal);
            match &r.reject {
                Some(RejectReason::Internal { stage, message }) => {
                    assert_eq!(*stage, "worker");
                    assert!(message.contains("injected worker fault"), "payload preserved: {message}");
                }
                other => panic!("expected Internal reject, got {other:?}"),
            }
        } else {
            assert_ne!(r.outcome, Outcome::Internal, "fault leaked into unit {}", r.name);
            assert_eq!(classify_reject(r.reject.as_ref()), r.outcome);
        }
    }
}

/// The sequential driver has the same isolation property.
#[test]
fn truncated_image_rejects_as_malformed() {
    let image = study_image();
    let mut corrupt = image.clone();
    Fault::TruncateTail { keep: 40 }.apply(&mut corrupt);
    let result = hoare_lift::core::Lifter::from_bytes(&corrupt, &LiftConfig::default());
    match result.reject_reason() {
        Some(RejectReason::MalformedBinary { .. }) => {}
        other => panic!("expected MalformedBinary, got {other:?}"),
    }
}
