//! Hot-path identity: the arena/table-driven rebuild must not change a
//! single artifact byte. The study corpus is lifted cold in one `hgl`
//! process (populating a persistent store), then replayed warm from a
//! second process: the `hgl-lift-v1` documents must be byte-identical,
//! the warm run must be all hits, and the store directory itself must
//! be bit-for-bit untouched by the replay. A reduced trace-oracle
//! campaign then re-asserts the conformance and coverage floors, so a
//! decode-table or interning bug that survives the differential suites
//! still cannot land silently.

use hoare_lift::core::Budget;
use hoare_lift::corpus::inject::elf_image;
use hoare_lift::corpus::xen::gen_study_binary;
use hoare_lift::oracle::{run_campaign, CampaignConfig};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::Duration;

fn hgl() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hgl"))
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hgl-hotpath-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

/// The same seed family the engine benchmark lifts, so the identity
/// check covers exactly the binaries whose throughput the hot-path
/// rebuild is gated on (every third one a library image).
fn write_corpus(dir: &Path) -> Vec<PathBuf> {
    (0..8u64)
        .map(|i| {
            let bin = gen_study_binary(0x9e37_79b9_7f4a_7c15 ^ i, i % 3 == 2);
            let path = dir.join(format!("study_{i}.elf"));
            std::fs::write(&path, elf_image(&bin)).expect("write elf");
            path
        })
        .collect()
}

/// Byte-level snapshot of every object in the store directory.
fn snapshot_store(store: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    let mut stack = vec![store.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir).expect("read store dir") {
            let entry = entry.expect("dir entry");
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else {
                let rel = path
                    .strip_prefix(store)
                    .expect("store-relative")
                    .to_string_lossy()
                    .into_owned();
                out.insert(rel, std::fs::read(&path).expect("read object"));
            }
        }
    }
    out
}

fn run_lift(elf: &Path, store: &Path, extra: &[&str]) -> String {
    let mut args = vec![
        "lift",
        elf.to_str().expect("utf8 path"),
        "--all",
        "--json",
        "--store",
        store.to_str().expect("utf8 path"),
    ];
    args.extend_from_slice(extra);
    let out = hgl().args(&args).output().expect("hgl lift");
    assert!(
        out.status.success(),
        "hgl lift {} failed:\n{}",
        elf.display(),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 json")
}

/// Cold process populates, warm process replays: every lift document
/// and every store object byte must be identical across the two.
#[test]
fn corpus_artifacts_replay_byte_identical_across_processes() {
    let dir = tmpdir("corpus");
    let store = dir.join("store");
    let elfs = write_corpus(&dir);

    let cold: Vec<String> = elfs.iter().map(|e| run_lift(e, &store, &[])).collect();
    for json in &cold {
        assert!(json.contains("\"schema\": \"hgl-lift-v1\""), "{json}");
    }
    let cold_store = snapshot_store(&store);
    assert!(!cold_store.is_empty(), "cold pass left no store objects");

    for (elf, cold_json) in elfs.iter().zip(&cold) {
        let warm = run_lift(elf, &store, &["--metrics"]);
        assert!(
            warm.starts_with(cold_json.as_str()),
            "warm lift of {} is not byte-identical to the cold one",
            elf.display()
        );
        let store_line = warm
            .lines()
            .find(|l| l.contains("\"store\": {"))
            .expect("metrics carries a store block");
        assert!(store_line.contains("\"misses\": 0"), "not warm: {store_line}");
        assert!(store_line.contains("\"invalidations\": 0"), "demoted: {store_line}");
    }

    let warm_store = snapshot_store(&store);
    assert_eq!(
        cold_store.keys().collect::<Vec<_>>(),
        warm_store.keys().collect::<Vec<_>>(),
        "warm replay changed the store object set"
    );
    for (name, bytes) in &cold_store {
        assert_eq!(
            bytes,
            &warm_store[name],
            "store object {name} was rewritten by the warm replay"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Store-verified replay: every hit is re-derived through the
/// differential checker and must survive undemoted — the persisted
/// artifacts really are what the rebuilt hot path computes today.
#[test]
fn store_verify_confirms_replayed_artifacts() {
    let dir = tmpdir("verify");
    let store = dir.join("store");
    let elfs = write_corpus(&dir);

    let cold: Vec<String> = elfs.iter().map(|e| run_lift(e, &store, &[])).collect();
    for (elf, cold_json) in elfs.iter().zip(&cold) {
        let verified = run_lift(elf, &store, &["--metrics", "--store-verify"]);
        assert!(
            verified.starts_with(cold_json.as_str()),
            "verified replay of {} drifted",
            elf.display()
        );
        let store_line = verified
            .lines()
            .find(|l| l.contains("\"store\": {"))
            .expect("metrics carries a store block");
        assert!(
            store_line.contains("\"invalidations\": 0"),
            "differential checker demoted a replayed artifact: {store_line}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Conformance floor re-check on the rebuilt hot path: a reduced
/// trace-oracle campaign (distinct master seed from the tier-1 run)
/// must stay violation-free with no skipped programs.
#[test]
fn oracle_conformance_floor_holds() {
    let cfg = CampaignConfig {
        master_seed: 0x407_7047,
        programs: 20,
        entries_per_program: 2,
        budget: Budget::from_timeout(Duration::from_secs(240)),
        ..CampaignConfig::default()
    };
    let report = run_campaign(&cfg);
    if let Some(f) = &report.failure {
        panic!("conformance violation (master_seed={:#x}):\n{f}", cfg.master_seed);
    }
    assert!(!report.budget_exhausted, "campaign hit its wall-clock budget:\n{report}");
    assert!(report.programs_run >= 18, "too many programs skipped:\n{report}");
    assert_eq!(report.traces_run, report.programs_run * cfg.entries_per_program);
}
