//! Empirical soundness of the central theorem (Definition 4.6 /
//! Theorem 4.7): for every transition of a *concrete* execution of the
//! binary, the lifted Hoare Graph contains a corresponding transition.
//!
//! We execute lifted corpus binaries on the emulator with many
//! different inputs, record the instruction trace, and check
//!
//! 1. **disassembly soundness** — every executed instruction address
//!    was lifted by some function's graph, and
//! 2. **control-flow soundness** — every intra-function `(pc, pc')`
//!    transition appears as an edge (call/return boundaries switch
//!    between the context-free per-function graphs and are checked by
//!    membership instead).

use hoare_lift::core::lift::LiftResult;
use hoare_lift::core::Lifter;
use hoare_lift::core::VertexId;
use hoare_lift::corpus::coreutils;
use hoare_lift::corpus::xen::{build_study, ExpectedOutcome, StudySpec, UnitKind};
use hoare_lift::elf::Binary;
use hoare_lift::emu::{Event, Machine};
use hoare_lift::x86::{Mnemonic, Reg, RegRef};

const SENTINEL: u64 = 0x7fff_dead_beef;

/// One step of the trace.
struct TraceStep {
    pc: u64,
    next: u64,
    mnemonic: Mnemonic,
}

fn trace(bin: &Binary, entry: u64, rdi: u64) -> Vec<TraceStep> {
    let mut m = Machine::from_binary(bin);
    m.rip = entry;
    m.push_return_address(SENTINEL);
    m.set_reg(RegRef::full(Reg::Rdi), rdi);
    m.set_reg(RegRef::full(Reg::Rsi), 0x7ffe_0000_0000);
    m.set_reg(RegRef::full(Reg::Rdx), 0x7ffd_0000_0000);
    let mut out = Vec::new();
    for _ in 0..50_000 {
        if m.rip == SENTINEL || !bin.is_code(m.rip) {
            break;
        }
        if bin.external_at(m.rip).is_some() {
            let rsp = m.reg(Reg::Rsp);
            let ra = m.mem.read(rsp, 8);
            m.set_reg(RegRef::full(Reg::Rsp), rsp.wrapping_add(8));
            m.set_reg(RegRef::full(Reg::Rax), 0);
            m.rip = ra;
            continue;
        }
        let pc = m.rip;
        let window = bin.fetch_window(pc).expect("code");
        let mnemonic = hoare_lift::x86::decode(window, pc).expect("decodes").mnemonic;
        match m.step() {
            Ok(Event::Normal | Event::Syscall) => {}
            Ok(Event::Halt) => break,
            Err(e) => panic!("fault at {pc:#x}: {e}"),
        }
        out.push(TraceStep { pc, next: m.rip, mnemonic });
    }
    out
}

fn check_covered(bin: &Binary, result: &LiftResult, steps: &[TraceStep], what: &str) {
    // All lifted instruction addresses, across functions.
    let mut lifted: Vec<u64> = result
        .functions
        .values()
        .flat_map(|f| f.graph.instructions().keys().copied().collect::<Vec<_>>())
        .collect();
    lifted.sort_unstable();
    lifted.dedup();

    // Addresses carrying unsoundness annotations: successors there are
    // exempt from the guarantee (§1).
    let annotated: Vec<u64> = result
        .functions
        .values()
        .flat_map(|f| f.annotations.iter().map(|a| a.addr()))
        .collect();

    for s in steps {
        assert!(
            lifted.binary_search(&s.pc).is_ok(),
            "{what}: executed {:#x} ({}) was not disassembled",
            s.pc,
            s.mnemonic
        );
        // Control-flow check for intra-function, non-call transitions.
        if matches!(s.mnemonic, Mnemonic::Call | Mnemonic::Ret) {
            continue; // context-free per-function graphs switch here
        }
        if annotated.contains(&s.pc) {
            continue;
        }
        if !bin.is_code(s.next) {
            continue;
        }
        let edge_found = result.functions.values().any(|f| {
            f.graph.edges.iter().any(|e| {
                e.instr.addr == s.pc
                    && matches!(e.to, VertexId::At(a, _) if a == s.next)
            })
        });
        assert!(
            edge_found,
            "{what}: concrete transition {:#x} -> {:#x} ({}) missing from the Hoare Graph",
            s.pc,
            s.next,
            s.mnemonic
        );
    }
}

#[test]
fn coreutils_traces_covered() {
    for (spec, bin) in coreutils::build_all(1) {
        let result = Lifter::new(&bin).lift_entry(bin.entry);
        assert!(result.is_lifted(), "{}: {:?}", spec.name, result.reject_reason());
        let mut total = 0;
        for rdi in [0u64, 1, 2, 3, 7, 100, u64::MAX] {
            let steps = trace(&bin, bin.entry, rdi);
            total += steps.len();
            check_covered(&bin, &result, &steps, spec.name);
        }
        assert!(total > 50, "{}: traces too short to be meaningful ({total})", spec.name);
    }
}

#[test]
fn xen_unit_traces_covered() {
    let study = build_study(&StudySpec::mini(), 5);
    for unit in &study.units {
        if unit.expected != ExpectedOutcome::Lifted {
            continue;
        }
        let result = match unit.kind {
            UnitKind::Binary => Lifter::new(&unit.binary).lift_entry(unit.binary.entry),
            UnitKind::LibraryFunction => {
                Lifter::new(&unit.binary).lift_entry(unit.entry)
            }
        };
        assert!(result.is_lifted(), "{}: {:?}", unit.name, result.reject_reason());
        for rdi in [0u64, 1, 5, 1000] {
            let steps = trace(&unit.binary, unit.entry, rdi);
            check_covered(&unit.binary, &result, &steps, &unit.name);
        }
    }
}

/// The weird edge is part of the overapproximation: a trace through
/// the aliased pointers is covered too.
#[test]
fn weird_trace_covered() {
    use hoare_lift::asm::Asm;
    use hoare_lift::x86::{Cond, Instr, MemOperand, Operand, Width};
    let ins = Instr::new;
    let mut asm = Asm::new();
    asm.label("weird");
    asm.ins(ins(Mnemonic::Mov, vec![Operand::reg(Reg::Rax, Width::B4), Operand::reg(Reg::Rdi, Width::B4)], Width::B4));
    asm.ins(ins(Mnemonic::Cmp, vec![Operand::reg(Reg::Rax, Width::B4), Operand::Imm(1)], Width::B4));
    asm.jcc(Cond::A, "done");
    let load = ins(
        Mnemonic::Mov,
        vec![Operand::reg64(Reg::Rax), Operand::Mem(MemOperand::sib(None, Reg::Rax, 8, 0, Width::B8))],
        Width::B8,
    );
    asm.ins_mem_label(load, 1, "table");
    asm.ins(ins(Mnemonic::Mov, vec![Operand::Mem(MemOperand::base_disp(Reg::Rsi, 0, Width::B8)), Operand::reg64(Reg::Rax)], Width::B8));
    let poison = ins(Mnemonic::Mov, vec![Operand::Mem(MemOperand::base_disp(Reg::Rdx, 0, Width::B8)), Operand::Imm(0)], Width::B8);
    asm.ins_imm_label_off(poison, 1, "carrier", 1);
    asm.ins(ins(Mnemonic::Jmp, vec![Operand::Mem(MemOperand::base_disp(Reg::Rsi, 0, Width::B8))], Width::B8));
    asm.label("t0");
    asm.ret();
    asm.label("t1");
    asm.ret();
    asm.label("done");
    asm.ret();
    asm.label("carrier");
    asm.ins(ins(Mnemonic::Mov, vec![Operand::reg(Reg::Rax, Width::B4), Operand::Imm(0xc3)], Width::B4));
    asm.ret();
    asm.jump_table("table", &["t0", "t1"]);
    let bin = asm.entry("weird").assemble().expect("assembles");
    let result = Lifter::new(&bin).lift_entry(bin.entry);
    assert!(result.is_lifted());

    // Aliased execution: rsi == rdx.
    let mut m = Machine::from_binary(&bin);
    m.push_return_address(SENTINEL);
    m.set_reg(RegRef::full(Reg::Rdi), 0);
    m.set_reg(RegRef::full(Reg::Rsi), 0x7ffe_0000_0000);
    m.set_reg(RegRef::full(Reg::Rdx), 0x7ffe_0000_0000);
    let mut steps = Vec::new();
    for _ in 0..20 {
        if m.rip == SENTINEL {
            break;
        }
        let pc = m.rip;
        let mn = hoare_lift::x86::decode(bin.fetch_window(pc).expect("code"), pc).expect("d").mnemonic;
        m.step().expect("step");
        steps.push(TraceStep { pc, next: m.rip, mnemonic: mn });
    }
    assert!(m.rip == SENTINEL, "the hijacked path still returns (via the hidden ret)");
    check_covered(&bin, &result, &steps, "weird-edge (aliased)");
}
