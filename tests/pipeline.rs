//! Cross-crate integration tests: the full pipeline from program text
//! through ELF serialisation, parsing, lifting, Isabelle export and
//! executable validation.

use hoare_lift::asm::Asm;
use hoare_lift::core::Lifter;
use hoare_lift::corpus::xen::{build_study, StudySpec, UnitKind};
use hoare_lift::elf::Binary;
use hoare_lift::export::{export_theory, validate_lift, ValidateConfig};
use hoare_lift::x86::{Cond, Instr, MemOperand, Mnemonic, Operand, Reg, Width};

fn ins(m: Mnemonic, ops: Vec<Operand>, w: Width) -> Instr {
    Instr::new(m, ops, w)
}

/// Program text → ELF bytes on disk → parse → lift → export →
/// validate, entirely through the serialized format.
#[test]
fn full_pipeline_through_elf_bytes() {
    let mut asm = Asm::new();
    asm.label("main");
    asm.push(Reg::Rbp);
    asm.mov(Operand::reg64(Reg::Rbp), Operand::reg64(Reg::Rsp));
    asm.ins(ins(Mnemonic::Sub, vec![Operand::reg64(Reg::Rsp), Operand::Imm(0x10)], Width::B8));
    asm.ins(ins(
        Mnemonic::Mov,
        vec![
            Operand::Mem(MemOperand::base_disp(Reg::Rbp, -8, Width::B8)),
            Operand::reg64(Reg::Rdi),
        ],
        Width::B8,
    ));
    asm.ins(ins(Mnemonic::Cmp, vec![Operand::reg(Reg::Rdi, Width::B4), Operand::Imm(0)], Width::B4));
    asm.jcc(Cond::E, "zero");
    asm.call("helper");
    asm.label("zero");
    asm.ins(ins(Mnemonic::Leave, vec![], Width::B8));
    asm.ret();
    asm.label("helper");
    asm.ins(ins(Mnemonic::Mov, vec![Operand::reg(Reg::Rax, Width::B4), Operand::Imm(1)], Width::B4));
    asm.ret();
    asm.export("main", "main");
    asm.export("helper", "helper");
    let elf_bytes = asm.entry("main").assemble_elf().expect("assembles");

    // Through the serialized format.
    let binary = Binary::parse(&elf_bytes).expect("parses");
    assert_eq!(binary.symbols.len(), 2);

    let result = Lifter::new(&binary).lift_entry(binary.entry);
    assert!(result.is_lifted(), "reject: {:?}", result.reject_reason());
    assert_eq!(result.functions.len(), 2, "main and helper");
    assert!(result.functions.values().all(|f| f.returns));

    let thy = export_theory(&result, "pipeline_demo");
    assert!(thy.contains("theory pipeline_demo"));
    let report = validate_lift(&binary, &result, &ValidateConfig::default());
    assert!(report.all_proven(), "failures: {:?}", report.failed);
    assert!(report.checked >= 8);
}

/// Lifting is deterministic: same binary, same graph shape.
#[test]
fn lifting_is_deterministic() {
    let study = build_study(&StudySpec::mini(), 3);
    let unit = study
        .units
        .iter()
        .find(|u| u.expected == hoare_lift::corpus::xen::ExpectedOutcome::Lifted)
        .expect("a liftable unit");
    let r1 = Lifter::new(&unit.binary).lift_entry(unit.entry);
    let r2 = Lifter::new(&unit.binary).lift_entry(unit.entry);
    assert_eq!(r1.instruction_count(), r2.instruction_count());
    assert_eq!(r1.state_count(), r2.state_count());
    assert_eq!(r1.indirection_counts(), r2.indirection_counts());
    for (e1, e2) in r1.functions.iter().zip(r2.functions.iter()) {
        assert_eq!(e1.0, e2.0);
        assert_eq!(e1.1.graph.edges.len(), e2.1.graph.edges.len());
    }
}

/// Soundness sweep: every lifted unit of several random corpora
/// validates with zero counterexamples.
#[test]
fn corpus_validation_sweep() {
    for seed in [11u64, 22, 33] {
        let study = build_study(&StudySpec::mini(), seed);
        for unit in &study.units {
            if unit.expected != hoare_lift::corpus::xen::ExpectedOutcome::Lifted {
                continue;
            }
            let result = match unit.kind {
                UnitKind::Binary => Lifter::new(&unit.binary).lift_entry(unit.binary.entry),
                UnitKind::LibraryFunction => {
                    Lifter::new(&unit.binary).lift_entry(unit.entry)
                }
            };
            assert!(
                result.is_lifted(),
                "seed {seed} {}: {:?}",
                unit.name,
                result.reject_reason()
            );
            let vc = ValidateConfig { samples_per_edge: 4, ..ValidateConfig::default() };
            let report = validate_lift(&unit.binary, &result, &vc);
            assert!(
                report.all_proven(),
                "seed {seed} {}: counterexamples: {:?}",
                unit.name,
                report
                    .failed
                    .iter()
                    .map(|f| format!("{} {}: {}", f.from, f.instr, f.detail))
                    .collect::<Vec<_>>()
            );
        }
    }
}

/// The facade crate re-exports a coherent API.
#[test]
fn facade_reexports() {
    // Types from different crates compose through the facade paths.
    let e = hoare_lift::expr::Expr::sym(hoare_lift::expr::Sym::Init(Reg::Rsp));
    let r = hoare_lift::solver::Region::new(e, 8);
    assert_eq!(r, hoare_lift::solver::Region::return_address_slot());
    let i = hoare_lift::x86::decode(&[0xc3], 0).expect("decodes");
    assert_eq!(i.mnemonic, Mnemonic::Ret);
}

/// ELF files written by the builder survive an external strip of the
/// symbol table (the paper targets *stripped* binaries).
#[test]
fn stripped_lifting_still_works() {
    let mut asm = Asm::new();
    asm.label("main");
    asm.ins(ins(Mnemonic::Xor, vec![Operand::reg(Reg::Rax, Width::B4), Operand::reg(Reg::Rax, Width::B4)], Width::B4));
    asm.ret();
    let bin = asm.entry("main").assemble().expect("assembles");
    // Simulate stripping: drop all symbols.
    let mut stripped = bin.clone();
    stripped.symbols.clear();
    let result = Lifter::new(&stripped).lift_entry(stripped.entry);
    assert!(result.is_lifted());
    assert!(result.functions[&stripped.entry].returns);
}
