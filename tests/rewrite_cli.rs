//! `hgl rewrite` end to end, over real files and real processes:
//! identity round-trips on study-corpus binaries (rewritten ELF loads
//! to the same view, re-lifts equivalently, and its `hgl lift --json`
//! document is byte-identical to the original's), and the shadow-stack
//! pass produces a verified, metrics-reporting artifact.

use hoare_lift::corpus::inject::elf_image;
use hoare_lift::corpus::xen::gen_study_binary;
use hoare_lift::elf::Binary;
use std::path::{Path, PathBuf};
use std::process::Command;

fn hgl() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hgl"))
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hgl-rewrite-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

/// Three study-corpus binaries from the engine-benchmark seed family
/// (one of them a library image), written out as ELF files.
fn write_corpus(dir: &Path) -> Vec<PathBuf> {
    (0..3u64)
        .map(|i| {
            let bin = gen_study_binary(0x9e37_79b9_7f4a_7c15 ^ i, i == 2);
            let path = dir.join(format!("study_{i}.elf"));
            std::fs::write(&path, elf_image(&bin)).expect("write elf");
            path
        })
        .collect()
}

fn run_rewrite(input: &Path, output: &Path, extra: &[&str]) -> String {
    let mut args = vec![
        "rewrite",
        "--in",
        input.to_str().expect("utf8 path"),
        "--out",
        output.to_str().expect("utf8 path"),
    ];
    args.extend_from_slice(extra);
    let out = hgl().args(&args).output().expect("hgl rewrite");
    assert!(
        out.status.success(),
        "hgl rewrite {} failed:\nstdout:\n{}\nstderr:\n{}",
        input.display(),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 output")
}

fn lift_json(elf: &Path) -> String {
    let out = hgl()
        .args(["lift", elf.to_str().expect("utf8 path"), "--all", "--json"])
        .output()
        .expect("hgl lift");
    assert!(
        out.status.success(),
        "hgl lift {} failed:\n{}",
        elf.display(),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 json")
}

/// Identity round-trip on three corpus binaries: `--verify` passes,
/// the rewritten ELF loads to the same view as the original, and its
/// whole-binary lift document is byte-identical — the strongest
/// artifact-level equality the pipeline can state.
#[test]
fn identity_roundtrip_on_corpus_binaries() {
    let dir = tmpdir("identity");
    for input in write_corpus(&dir) {
        let output = input.with_extension("rw.elf");
        let stdout = run_rewrite(&input, &output, &["--verify"]);
        assert!(
            stdout.contains("re-lift corresponds"),
            "no re-lift verification in:\n{stdout}"
        );
        assert!(
            stdout.contains("zero divergences"),
            "no differential verification in:\n{stdout}"
        );

        let orig = Binary::parse(&std::fs::read(&input).expect("read in")).expect("parse in");
        let rw = Binary::parse(&std::fs::read(&output).expect("read out")).expect("parse out");
        assert_eq!(orig.entry, rw.entry);
        assert_eq!(orig.segments.len(), rw.segments.len());
        for (a, b) in orig.segments.iter().zip(rw.segments.iter()) {
            assert_eq!((a.vaddr, &a.bytes), (b.vaddr, &b.bytes), "segment drifted");
        }

        assert_eq!(
            lift_json(&input),
            lift_json(&output),
            "lift documents differ for {}",
            input.display()
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The shadow-stack pass through the CLI: verified artifact, rewrite
/// metrics block present with the verification verdicts filled in.
#[test]
fn shadow_stack_pass_with_metrics() {
    let dir = tmpdir("shadow");
    let bin = hoare_lift::corpus::failures::corrupted_return();
    let input = dir.join("victim.elf");
    std::fs::write(&input, elf_image(&bin)).expect("write elf");
    let output = dir.join("victim.rw.elf");

    let stdout = run_rewrite(
        &input,
        &output,
        &["--pass", "shadow-stack", "--verify", "--metrics"],
    );
    assert!(stdout.contains("zero divergences"), "no differential verification:\n{stdout}");
    assert!(stdout.contains("1 guard(s)"), "guard count missing:\n{stdout}");
    let rewrite_line = stdout
        .lines()
        .find(|l| l.contains("\"rewrite\": {"))
        .expect("metrics carries a rewrite block");
    assert!(rewrite_line.contains("\"guards_inserted\": 1"), "{rewrite_line}");
    assert!(rewrite_line.contains("\"verify_traces_ok\": true"), "{rewrite_line}");

    // The artifact on disk really carries the new sections.
    let rw = Binary::parse(&std::fs::read(&output).expect("read out")).expect("parse out");
    let orig = Binary::parse(&std::fs::read(&input).expect("read in")).expect("parse in");
    assert_eq!(rw.segments.len(), orig.segments.len() + 2, "shadow + guard sections");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Refusals and usage errors exit non-zero and say why.
#[test]
fn unknown_pass_is_a_usage_error() {
    let dir = tmpdir("usage");
    let bin = gen_study_binary(0xbad_5eed, false);
    let input = dir.join("in.elf");
    std::fs::write(&input, elf_image(&bin)).expect("write elf");
    let out = hgl()
        .args([
            "rewrite",
            "--in",
            input.to_str().expect("utf8"),
            "--out",
            dir.join("out.elf").to_str().expect("utf8"),
            "--pass",
            "no-such-pass",
        ])
        .output()
        .expect("hgl rewrite");
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("unknown pass"),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let _ = std::fs::remove_dir_all(&dir);
}
