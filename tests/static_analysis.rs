//! Tier-1 static-analysis acceptance: the `hgl-analysis` fixpoint
//! engine and lint suite over the evaluation corpora.
//!
//! Three layers:
//!
//! 1. every corpus binary is pushed through all of the framework's
//!    analyses (write classification, reachability census, stack-depth
//!    bounds, soundness lints) and clean binaries produce zero
//!    error-severity diagnostics;
//! 2. the seeded known-bad fixtures each trigger *exactly* their
//!    intended lint, and together the fixtures cover every rule — the
//!    lint coverage floor;
//! 3. static write classifications are cross-validated dynamically:
//!    a differential campaign replays concrete emulator writes against
//!    the static claims (no trace may contradict a classification),
//!    and a deliberately corrupted claim is refuted by the oracle.

use hoare_lift::analysis::lints::lint_reachability;
use hoare_lift::analysis::{
    analyze, AnalysisConfig, AnalysisReport, ClassifiedWrite, Rule, Severity, WriteClass, ANALYSES,
};
use hoare_lift::asm::Asm;
use hoare_lift::core::Lifter;
use hoare_lift::core::{Budget, HoareGraph, SymState, VertexId};
use hoare_lift::corpus::{coreutils, failures};
use hoare_lift::elf::Binary;
use hoare_lift::oracle::{
    run_campaign, CampaignConfig, Coverage, EntryState, TraceOracle, ViolationKind,
};
use hoare_lift::x86::{Instr, Mnemonic, Reg, Width};
use std::collections::BTreeSet;
use std::time::Duration;

fn analyzed(bin: &Binary) -> AnalysisReport {
    let lifted = Lifter::new(bin).lift_entry(bin.entry);
    analyze(bin, &lifted, &AnalysisConfig::default())
}

/// Rules that produced at least one diagnostic, any severity.
fn fired(report: &AnalysisReport) -> BTreeSet<Rule> {
    report.diags.iter().map(|d| d.rule).collect()
}

/// Rules that produced at least one error-severity diagnostic.
fn errors(report: &AnalysisReport) -> BTreeSet<Rule> {
    report
        .diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .map(|d| d.rule)
        .collect()
}

/// Every corpus binary runs through all (≥ 4) analyses; clean binaries
/// yield per-function facts from each of them and no soundness errors.
#[test]
fn all_analyses_cover_every_corpus_binary() {
    assert!(ANALYSES.len() >= 4, "framework advertises {} analyses", ANALYSES.len());

    for (spec, bin) in coreutils::build_all(1) {
        let lifted = Lifter::new(&bin).lift_entry(bin.entry);
        assert!(lifted.is_lifted(), "{}: corpus binary lifts", spec.name);
        let report = analyze(&bin, &lifted, &AnalysisConfig::default());

        assert!(!report.functions.is_empty(), "{}: functions analyzed", spec.name);
        assert_eq!(
            report.count(Severity::Error),
            0,
            "{}: a cleanly lifted binary carries no soundness errors: {}",
            spec.name,
            report
        );

        for (entry, f) in &report.functions {
            // Forward reachability: the entry reaches at least itself.
            assert!(
                f.reachable_states >= 1 && f.reachable_states <= f.states,
                "{}: fn {entry:#x} reachability census in range",
                spec.name
            );
            // Backward exit-reachability: a lifted (returning)
            // function has at least one exit-reaching state.
            assert!(
                f.exit_reaching_states >= 1 && f.exit_reaching_states <= f.states,
                "{}: fn {entry:#x} exit-reachability census in range",
                spec.name
            );
            // Stack-depth bounds: compiler-shaped functions have a
            // proven finite depth.
            assert!(
                f.max_stack_depth.is_some(),
                "{}: fn {entry:#x} stack depth bounded",
                spec.name
            );
        }

        // Write classification: every corpus binary stores to its
        // frame (prologue pushes at minimum), and the per-function
        // lists agree with the binary-wide totals.
        let listed: usize = report.functions.values().map(|f| f.writes.len()).sum();
        assert_eq!(report.totals.total(), listed, "{}: totals match write list", spec.name);
        assert!(report.totals.stack_local > 0, "{}: stack-local writes seen", spec.name);
    }
}

/// The seeded known-bad fixtures trigger exactly their intended lint:
/// the defect's rule fires at error severity and the *other* fixtures'
/// error rules stay silent.
#[test]
fn seeded_fixtures_trigger_exactly_their_lint() {
    let clobber = analyzed(&failures::callee_saved_clobber());
    assert!(
        errors(&clobber).contains(&Rule::CalleeSavedClobber),
        "clobber fixture fires callee-saved-clobber: {clobber}"
    );
    assert!(
        !fired(&clobber).contains(&Rule::RetSlotOverwrite),
        "clobber fixture never writes memory: {clobber}"
    );

    let smash = analyzed(&failures::ret_slot_overwrite());
    assert!(
        errors(&smash).contains(&Rule::RetSlotOverwrite),
        "smash fixture fires ret-slot-overwrite: {smash}"
    );
    assert!(
        !fired(&smash).contains(&Rule::CalleeSavedClobber),
        "smash fixture preserves callee-saved registers: {smash}"
    );

    let probe = analyzed(&failures::stack_probe());
    assert!(
        fired(&probe).contains(&Rule::StackDepth),
        "stack-probe fixture has unbounded depth: {probe}"
    );
    assert!(
        !errors(&probe).contains(&Rule::CalleeSavedClobber),
        "stack-probe fixture preserves callee-saved registers: {probe}"
    );
}

/// Dead nodes cannot arise from the lifter (it only adds vertices it
/// explores into), so the dead-node lint is exercised on a hand-built
/// graph with an orphan vertex.
#[test]
fn dead_node_lint_flags_orphan_vertex() {
    let entry = 0x40_1000u64;
    let orphan = VertexId::At(0x40_1010, 0);
    let mut g = HoareGraph::new();
    g.add_vertex(VertexId::At(entry, 0), SymState::function_entry(entry), true);
    g.add_vertex(orphan, SymState::function_entry(entry), true);
    g.add_vertex(VertexId::Exit, SymState::function_entry(entry), true);
    g.add_edge(
        VertexId::At(entry, 0),
        VertexId::Exit,
        Instr::new(Mnemonic::Ret, vec![], Width::B8),
    );

    let out = lint_reachability(entry, &g, 10_000);
    let dead: Vec<_> = out.diags.iter().filter(|d| d.rule == Rule::DeadNode).collect();
    assert_eq!(dead.len(), 1, "exactly the orphan is dead: {:?}", out.diags);
    assert_eq!(dead[0].node, Some(orphan));
    assert_eq!(out.reachable_states, 2, "entry and exit are reachable");
    assert_eq!(out.exit_reaching_states, 2, "entry and exit reach the exit");
}

/// The lint coverage floor: across the seeded fixtures (plus the
/// hand-built orphan graph for dead-node), every rule in [`Rule::ALL`]
/// fires somewhere. A rule nothing can trigger is a dead lint.
#[test]
fn every_lint_rule_fires_on_a_seeded_fixture() {
    let mut covered = BTreeSet::new();
    for bin in [
        failures::callee_saved_clobber(),
        failures::ret_slot_overwrite(),
        failures::stack_probe(),
        failures::vsa_unbounded_indirect(),
    ] {
        covered.extend(fired(&analyzed(&bin)));
    }
    // Dead-node from the orphan-graph shape (see above).
    covered.insert(Rule::DeadNode);

    for rule in Rule::ALL {
        assert!(covered.contains(&rule), "no seeded fixture triggers {}", rule.name());
    }
}

/// Dynamic cross-validation, positive direction: a differential
/// campaign replays every concrete emulator write against the static
/// claim for its site — no trace contradicts a classification.
#[test]
fn campaign_cross_validates_write_classifications() {
    let cfg = CampaignConfig {
        programs: 12,
        entries_per_program: 2,
        budget: Budget::from_timeout(Duration::from_secs(120)),
        ..CampaignConfig::default()
    };
    assert!(cfg.check_write_classes, "cross-validation is on by default");
    let report = run_campaign(&cfg);
    if let Some(f) = &report.failure {
        panic!("write-class cross-validation failed (master_seed={:#x}):\n{f}", cfg.master_seed);
    }
    assert!(report.writes_checked > 0, "campaign checked concrete writes:\n{report}");
}

/// Dynamic cross-validation, negative direction: planting a wrong
/// classification makes the oracle report a `write-classification`
/// violation — the check can actually refute claims.
#[test]
fn corrupted_write_claim_is_refuted_dynamically() {
    let mut asm = Asm::new();
    asm.label("main");
    asm.push(Reg::Rbp);
    asm.pop(Reg::Rbp);
    asm.ret();
    let bin = asm.entry("main").assemble().expect("assembles");
    let lifted = Lifter::new(&bin).lift_entry(bin.entry);
    assert!(lifted.is_lifted());

    let es = EntryState { rdi: 1, scratch: [0; 6] };

    // Sound claims: the trace conforms and the push write is checked.
    let oracle = TraceOracle::new(&bin, &lifted).with_write_classes();
    let outcome = oracle.check_trace(&es, &mut Coverage::default());
    assert!(outcome.violation.is_none(), "sound claims conform: {:?}", outcome.violation);
    assert!(outcome.writes_checked > 0, "the push was checked");

    // Corrupt the claim for the entry push — `[rsp0-8, 8]` is a
    // stack-local write, not a low-memory global one.
    let mut oracle = TraceOracle::new(&bin, &lifted).with_write_classes();
    let map = oracle.write_classes.as_mut().expect("claim index built");
    map.insert_claim(ClassifiedWrite {
        function: bin.entry,
        addr: bin.entry,
        size: 8,
        classes: [WriteClass::Global { lo: 0, hi: 7 }].into_iter().collect(),
    });
    let outcome = oracle.check_trace(&es, &mut Coverage::default());
    let v = outcome.violation.expect("corrupted claim must be refuted");
    assert_eq!(v.kind, ViolationKind::WriteClassification, "refuted as {v}");
}
