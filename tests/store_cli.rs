//! Cross-process determinism of the persistent store, driven through
//! the real `hgl` binary: one process lifts cold and populates the
//! store, a second process replays it warm, and the `hgl-lift-v1`
//! JSON documents must be byte-identical (satellite 3 of the store
//! tentpole — no in-process state can be smuggled between them).

use hoare_lift::asm::Asm;
use hoare_lift::x86::{Instr, Mnemonic, Operand, Reg, Width};
use std::process::Command;

fn hgl() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hgl"))
}

fn tmpdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("hgl-store-cli-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

/// A three-function program: `main` calls `helper`, `leaf` is an
/// independent export.
fn write_elf(dir: &std::path::Path) -> std::path::PathBuf {
    let mut asm = Asm::new();
    asm.label("main");
    asm.call("helper");
    asm.ins(Instr::new(
        Mnemonic::Add,
        vec![Operand::reg64(Reg::Rax), Operand::Imm(1)],
        Width::B8,
    ));
    asm.ret();
    asm.label("leaf");
    asm.ret();
    asm.export("leaf", "leaf");
    asm.label("helper");
    asm.ins(Instr::new(
        Mnemonic::Mov,
        vec![Operand::reg(Reg::Rax, Width::B4), Operand::Imm(7)],
        Width::B4,
    ));
    asm.ret();
    let bytes = asm.entry("main").assemble_elf().expect("assembles");
    let path = dir.join("store_demo.elf");
    std::fs::write(&path, bytes).expect("write elf");
    path
}

#[test]
fn cold_writes_warm_process_replays_byte_identical() {
    let dir = tmpdir("xproc");
    let elf = write_elf(&dir);
    let store = dir.join("store");
    let elf_s = elf.to_str().expect("utf8");
    let store_s = store.to_str().expect("utf8");

    // Process 1: cold lift, populates the store.
    let cold = hgl()
        .args(["lift", elf_s, "--all", "--json", "--store", store_s])
        .output()
        .expect("cold run");
    assert!(cold.status.success(), "{}", String::from_utf8_lossy(&cold.stderr));
    let cold_json = String::from_utf8(cold.stdout).expect("utf8 json");
    assert!(cold_json.contains("\"schema\": \"hgl-lift-v1\""), "{cold_json}");
    assert!(store.read_dir().expect("store dir").count() > 0, "cold run left objects");

    // Process 2: fresh process, warm store. `--metrics` is appended
    // after the lift document, so the lift JSON must be a byte-exact
    // prefix match against the cold output.
    let warm = hgl()
        .args(["lift", elf_s, "--all", "--json", "--metrics", "--store", store_s])
        .output()
        .expect("warm run");
    assert!(warm.status.success(), "{}", String::from_utf8_lossy(&warm.stderr));
    let warm_out = String::from_utf8(warm.stdout).expect("utf8 json");
    assert!(
        warm_out.starts_with(&cold_json),
        "warm lift JSON is not byte-identical to the cold one:\n{warm_out}"
    );
    // And the metrics document proves the run really was warm.
    let store_line = warm_out
        .lines()
        .find(|l| l.contains("\"store\": {"))
        .expect("metrics carries a store block");
    assert!(store_line.contains("\"misses\": 0"), "{store_line}");
    assert!(store_line.contains("\"invalidations\": 0"), "{store_line}");
    assert!(!store_line.contains("\"hits\": 0,"), "warm run must hit: {store_line}");

    // `--store-verify` replays every hit through the differential
    // checker; on an honest store nothing is demoted.
    let verified = hgl()
        .args(["lift", elf_s, "--all", "--json", "--metrics", "--store", store_s, "--store-verify"])
        .output()
        .expect("verify run");
    assert!(verified.status.success(), "{}", String::from_utf8_lossy(&verified.stderr));
    let verified_out = String::from_utf8(verified.stdout).expect("utf8 json");
    assert!(verified_out.starts_with(&cold_json), "{verified_out}");
    let vline = verified_out
        .lines()
        .find(|l| l.contains("\"store\": {"))
        .expect("metrics carries a store block");
    assert!(vline.contains("\"invalidations\": 0"), "verified replay demoted a hit: {vline}");
    let _ = std::fs::remove_dir_all(&dir);
}
