//! Tier-1 trace-oracle campaign: the full differential loop between
//! the program generator, the lifter and the concrete emulator.
//!
//! Every trace step of every seeded execution is replayed against the
//! Hoare Graph: the machine must stay contained in some vertex
//! invariant, every concrete transition must be labelled by a graph
//! edge, and the paper's three sanity theorems (return-address
//! integrity, bounded control flow, calling-convention adherence)
//! must hold trace-wide. A failure prints one replay line (master
//! seed + program + entry index) and a shrunk minimal reproducer.

use hoare_lift::oracle::{run_campaign, CampaignConfig};
use std::time::Duration;

/// The full campaign: 50 programs x 4 seeded entry states, zero
/// violations, and the coverage floor (every generator-emittable
/// mnemonic, every edge kind) exercised.
#[test]
fn campaign_conforms_and_meets_coverage_floor() {
    let cfg = CampaignConfig {
        programs: 50,
        entries_per_program: 4,
        // CI safety net; the campaign itself runs in seconds.
        budget: hoare_lift::core::Budget::from_timeout(Duration::from_secs(240)),
        ..CampaignConfig::default()
    };
    let report = run_campaign(&cfg);
    if let Some(f) = &report.failure {
        panic!("conformance violation (master_seed={:#x}):\n{f}", cfg.master_seed);
    }
    assert!(
        !report.budget_exhausted,
        "campaign hit its wall-clock budget (master_seed={:#x}):\n{report}",
        cfg.master_seed
    );
    assert!(
        report.floor_missing.is_empty(),
        "coverage floor regressed (master_seed={:#x}): {:?}\n{report}",
        cfg.master_seed,
        report.floor_missing
    );
    assert!(report.programs_run >= 45, "too many programs skipped:\n{report}");
    assert_eq!(report.traces_run, report.programs_run * cfg.entries_per_program);
}

/// Oracle power check: lifting with the test-only fault injection
/// (the jcc fall-through edge is dropped) must be caught, and the
/// failing program must shrink to a minimal reproducer of at most 10
/// instructions with a printed replay seed.
#[test]
fn injected_missing_edge_is_caught_and_shrunk() {
    let cfg = CampaignConfig {
        inject_drop_jcc_fallthrough: true,
        budget: hoare_lift::core::Budget::from_timeout(Duration::from_secs(240)),
        ..CampaignConfig::default()
    };
    let report = run_campaign(&cfg);
    let failure = report
        .failure
        .as_ref()
        .expect("an unsound lifter must not pass the trace oracle");
    let rendered = failure.to_string();
    assert!(
        rendered.contains(&format!("master_seed={:#x}", cfg.master_seed)),
        "failure report must print the replay seed:\n{rendered}"
    );
    assert!(
        rendered.contains("gen-options:"),
        "failure report must print the generator options:\n{rendered}"
    );
    let shrunk = failure.shrunk.as_ref().expect("failure must be shrunk");
    assert!(
        shrunk.instructions <= 10,
        "shrunk reproducer has {} instructions (> 10):\n{}",
        shrunk.instructions,
        shrunk.listing
    );
}
