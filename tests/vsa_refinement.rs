//! Tier-1 acceptance for the value-set refinement loop: a campaign
//! over switch-statement-shaped programs (masked jump tables the
//! inline lift cannot bound) with the analyze→re-lift refinement on,
//! every refinement claim cross-validated on every trace — plus the
//! refutation direction: a deliberately corrupted claim must be caught
//! as an `indirect-containment` violation.

use hoare_lift::analysis::VsaResolver;
use hoare_lift::asm::Asm;
use hoare_lift::core::{Budget, IndirectResolver, LiftResult, Lifter, Resolution};
use hoare_lift::elf::Binary;
use hoare_lift::oracle::{
    run_campaign, CampaignConfig, Coverage, EntryState, TraceOracle, TraceStop, ViolationKind,
};
use hoare_lift::x86::{Instr, MemOperand, Mnemonic, Operand, Reg, Width};
use std::collections::{BTreeMap, BTreeSet};
use std::time::Duration;

/// The refinement campaign: programs heavy in masked jump tables, 50
/// programs x 4 entries = 200 traces, the refinement resolving the
/// tables before tracing, and every resolved jump's concrete target
/// checked for containment in the claimed set. Zero violations, and
/// the claims must actually be exercised — a campaign that checks no
/// indirect jump proves nothing.
#[test]
fn refinement_campaign_has_zero_containment_violations() {
    let cfg = CampaignConfig {
        programs: 50,
        entries_per_program: 4,
        refine_indirect: true,
        budget: Budget::from_timeout(Duration::from_secs(240)),
        ..CampaignConfig::default()
    };
    let report = run_campaign(&cfg);
    if let Some(f) = &report.failure {
        panic!("refinement violation (master_seed={:#x}):\n{f}", cfg.master_seed);
    }
    assert!(!report.budget_exhausted, "campaign hit its budget:\n{report}");
    assert!(report.traces_run >= 200, "under 200 traces run:\n{report}");
    assert!(
        report.indirect_checked > 0,
        "no refinement claim was ever exercised dynamically:\n{report}"
    );
    assert!(
        report.indirections_resolved > 0,
        "refinement resolved nothing (column A contribution is zero):\n{report}"
    );
}

/// A hand-built function with one masked jump table of `n` cases.
fn masked_table_binary(n: usize) -> hoare_lift::elf::Binary {
    let ins = |m: Mnemonic, ops: Vec<Operand>, w: Width| Instr::new(m, ops, w);
    let reg32 = |r: Reg| Operand::reg(r, Width::B4);
    let mut asm = Asm::new();
    asm.label("f");
    asm.ins(ins(Mnemonic::Mov, vec![reg32(Reg::Rax), reg32(Reg::Rdi)], Width::B4));
    asm.ins(ins(Mnemonic::And, vec![reg32(Reg::Rax), Operand::Imm(n as i64 - 1)], Width::B4));
    let jmp = ins(
        Mnemonic::Jmp,
        vec![Operand::Mem(MemOperand::sib(None, Reg::Rax, 8, 0, Width::B8))],
        Width::B8,
    );
    asm.ins_mem_label(jmp, 0, "table");
    let cases: Vec<String> = (0..n).map(|i| format!("case_{i}")).collect();
    for (i, c) in cases.iter().enumerate() {
        asm.label(c);
        asm.ins(ins(Mnemonic::Mov, vec![reg32(Reg::Rax), Operand::Imm(20 + i as i64)], Width::B4));
        asm.jmp("join");
    }
    asm.label("join");
    asm.ret();
    let case_refs: Vec<&str> = cases.iter().map(String::as_str).collect();
    asm.jump_table("table", &case_refs);
    asm.entry("f");
    asm.assemble().expect("assembles")
}

/// Correct claims pass: with the refined lift and its own claims, the
/// trace runs through the (formerly unresolved) jump to the ret, and
/// the claim check fires without a violation.
#[test]
fn correct_claims_are_confirmed_by_traces() {
    let bin = masked_table_binary(4);
    let mut lifter = Lifter::new(&bin);
    let refined = lifter.lift_entry_refined(bin.entry, &VsaResolver::default(), 4);
    assert!(refined.converged);
    assert!(!refined.hints.is_empty());

    let oracle = TraceOracle::new(&bin, &refined.result).with_indirect_claims(refined.hints.clone());
    let mut coverage = Coverage::default();
    for rdi in [0u64, 1, 2, 3, 7, 0x1234] {
        let es = EntryState { rdi, scratch: [0; 6] };
        let outcome = oracle.check_trace(&es, &mut coverage);
        assert!(outcome.violation.is_none(), "rdi={rdi}: {:?}", outcome.violation);
        assert!(matches!(outcome.stop, TraceStop::Returned), "rdi={rdi}: {:?}", outcome.stop);
        assert!(outcome.indirect_checked >= 1, "rdi={rdi}: claim never checked");
    }
}

/// A dispatch whose round-1 index bound is an *under*-approximation:
/// the masked entry path bounds `rax` to `[0, 3]`, but `case_3` —
/// reachable only once the jump is hinted — re-enters the dispatch
/// with `rax = 5`, so the true claim needs the two extra table slots.
///
/// ```text
/// f:      mov eax, edi; and eax, 3
/// d:      jmp [table + rax*8]
/// case_0..case_2: mov eax, K; jmp join
/// case_3: mov eax, 5; jmp d        ; out-of-mask re-entry
/// join:   ret
/// table:  [case_0, case_1, case_2, case_3, join, join]
/// ```
fn reentrant_dispatch_binary() -> (Binary, u64) {
    let ins = |m: Mnemonic, ops: Vec<Operand>, w: Width| Instr::new(m, ops, w);
    let reg32 = |r: Reg| Operand::reg(r, Width::B4);
    let mut asm = Asm::new();
    asm.label("f");
    asm.ins(ins(Mnemonic::Mov, vec![reg32(Reg::Rax), reg32(Reg::Rdi)], Width::B4));
    asm.ins(ins(Mnemonic::And, vec![reg32(Reg::Rax), Operand::Imm(3)], Width::B4));
    asm.label("d");
    let jmp = ins(
        Mnemonic::Jmp,
        vec![Operand::Mem(MemOperand::sib(None, Reg::Rax, 8, 0, Width::B8))],
        Width::B8,
    );
    asm.ins_mem_label(jmp, 0, "table");
    for i in 0..3 {
        asm.label(&format!("case_{i}"));
        asm.ins(ins(Mnemonic::Mov, vec![reg32(Reg::Rax), Operand::Imm(20 + i)], Width::B4));
        asm.jmp("join");
    }
    asm.label("case_3");
    asm.ins(ins(Mnemonic::Mov, vec![reg32(Reg::Rax), Operand::Imm(5)], Width::B4));
    asm.jmp("d");
    asm.label("join");
    asm.export("join", "join");
    asm.ret();
    asm.jump_table("table", &["case_0", "case_1", "case_2", "case_3", "join", "join"]);
    asm.entry("f");
    let bin = asm.assemble().expect("assembles");
    let join = *bin
        .symbols
        .iter()
        .find(|(_, n)| **n == "join")
        .map(|(a, _)| a)
        .expect("join exported");
    (bin, join)
}

/// Hinted jumps must be re-validated on every round's grown graph: the
/// paths a hint opens can feed the same dispatch index values beyond
/// the originally proven bound. The refinement must grow the claim to
/// the full 6-slot table (round 1 alone would stop at 4), and the
/// grown claim must survive the dynamic containment check on the
/// re-entering input.
#[test]
fn hinted_jump_bounds_are_revalidated_on_grown_graph() {
    let (bin, join) = reentrant_dispatch_binary();
    let mut lifter = Lifter::new(&bin);
    let refined = lifter.lift_entry_refined(bin.entry, &VsaResolver::default(), 8);
    assert!(refined.converged, "fixpoint must converge");
    assert!(refined.demoted.is_empty(), "nothing should be demoted: {:?}", refined.demoted);
    assert_eq!(refined.hints.len(), 1);
    let targets = refined.hints.values().next().unwrap();
    assert!(
        targets.contains(&join),
        "re-validation must widen the claim to the re-entry target {join:#x}: {targets:x?}"
    );
    assert_eq!(targets.len(), 5, "4 cases + join: {targets:x?}");
    let (_, b, _) = refined.result.indirection_counts();
    assert_eq!(b, 0, "dispatch stays resolved");

    // rdi = 3 executes the dispatch twice, the second time with
    // rax = 5 — outside the round-1 bound. The final claim contains
    // it, so the trace-containment check passes.
    let oracle = TraceOracle::new(&bin, &refined.result).with_indirect_claims(refined.hints.clone());
    let mut coverage = Coverage::default();
    let es = EntryState { rdi: 3, scratch: [0; 6] };
    let outcome = oracle.check_trace(&es, &mut coverage);
    assert!(outcome.violation.is_none(), "{:?}", outcome.violation);
    assert!(matches!(outcome.stop, TraceStop::Returned), "{:?}", outcome.stop);
    assert!(outcome.indirect_checked >= 2, "dispatch must be checked on both passes");
}

/// A resolver that proposes an under-approximate claim, then (like a
/// real re-validation discovering the bound no longer holds) demotes
/// it as soon as it sees the jump hinted. The loop must withdraw the
/// hint, poison the address against re-admission — a propose→demote
/// cycle would otherwise never converge — and report the jump
/// unresolved in the final result.
struct FlipFlopResolver {
    jump: u64,
    target: u64,
}

impl IndirectResolver for FlipFlopResolver {
    fn resolve(
        &self,
        _binary: &Binary,
        _lift: &LiftResult,
        hints: &BTreeMap<u64, BTreeSet<u64>>,
    ) -> Resolution {
        let mut r = Resolution::default();
        if hints.contains_key(&self.jump) {
            r.demoted.insert(self.jump);
        } else {
            r.resolved.insert(self.jump, [self.target].into_iter().collect());
        }
        r
    }
}

#[test]
fn demoted_hints_are_withdrawn_and_not_readmitted() {
    let bin = masked_table_binary(4);
    let mut lifter = Lifter::new(&bin);

    // Fish the real jump address and one genuine target out of a
    // normal resolve pass, so the scripted hint is one the lifter
    // accepts.
    let base = lifter.lift_entry(bin.entry);
    let (_, b0, _) = base.indirection_counts();
    assert!(b0 >= 1);
    let seed = VsaResolver::default().resolve(&bin, &base, &BTreeMap::new());
    let (&jump, targets) = seed.resolved.iter().next().expect("one resolvable jump");
    let &target = targets.iter().next().expect("targets");

    let resolver = FlipFlopResolver { jump, target };
    let refined = lifter.lift_entry_refined(bin.entry, &resolver, 8);
    // Round 1 proposes, round 2 demotes, round 3 sees the poisoned
    // re-proposal filtered out and converges.
    assert!(refined.converged, "poisoning must force convergence");
    assert_eq!(refined.rounds, 3);
    assert!(refined.hints.is_empty(), "withdrawn hint must not be reported: {:?}", refined.hints);
    assert_eq!(refined.demoted, [jump].into_iter().collect::<BTreeSet<u64>>());
    let (_, b1, _) = refined.result.indirection_counts();
    assert!(b1 >= 1, "demoted jump must be reported unresolved again");

    // The config holds the (empty) final hint set: a plain re-lift
    // reproduces the returned result.
    let replay = lifter.lift_entry(bin.entry);
    let (ra, rb, _) = replay.indirection_counts();
    let (fa, fb, _) = refined.result.indirection_counts();
    assert_eq!((ra, rb), (fa, fb));
}

/// The refutation channel: corrupt the claim at the jump (drop the
/// real target of the traced input, keep only wrong-but-plausible
/// code addresses) and the oracle must report `indirect-containment`.
#[test]
fn corrupted_claims_are_refuted() {
    let bin = masked_table_binary(4);
    let mut lifter = Lifter::new(&bin);
    let refined = lifter.lift_entry_refined(bin.entry, &VsaResolver::default(), 4);
    assert!(refined.converged);
    let (&jmp_addr, targets) = refined.hints.iter().next().expect("one claim");

    // rdi = 0 lands on the smallest target; claim only the others.
    let &real = targets.iter().next().expect("targets");
    let corrupted: BTreeSet<u64> = targets.iter().copied().filter(|&t| t != real).collect();
    assert!(!corrupted.is_empty());
    let claims = [(jmp_addr, corrupted)].into_iter().collect();

    let oracle = TraceOracle::new(&bin, &refined.result).with_indirect_claims(claims);
    let mut coverage = Coverage::default();
    // The first case label is the lowest code address of the targets,
    // and rdi = 0 selects table slot 0, which points at it.
    let es = EntryState { rdi: 0, scratch: [0; 6] };
    let outcome = oracle.check_trace(&es, &mut coverage);
    let v = outcome.violation.expect("corrupted claim must be refuted");
    assert_eq!(v.kind, ViolationKind::IndirectContainment, "{v}");
    assert_eq!(v.rip, jmp_addr);
}
