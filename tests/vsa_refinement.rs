//! Tier-1 acceptance for the value-set refinement loop: a campaign
//! over switch-statement-shaped programs (masked jump tables the
//! inline lift cannot bound) with the analyze→re-lift refinement on,
//! every refinement claim cross-validated on every trace — plus the
//! refutation direction: a deliberately corrupted claim must be caught
//! as an `indirect-containment` violation.

use hoare_lift::analysis::VsaResolver;
use hoare_lift::asm::Asm;
use hoare_lift::core::{Budget, Lifter};
use hoare_lift::oracle::{
    run_campaign, CampaignConfig, Coverage, EntryState, TraceOracle, TraceStop, ViolationKind,
};
use hoare_lift::x86::{Instr, MemOperand, Mnemonic, Operand, Reg, Width};
use std::collections::BTreeSet;
use std::time::Duration;

/// The refinement campaign: programs heavy in masked jump tables, 50
/// programs x 4 entries = 200 traces, the refinement resolving the
/// tables before tracing, and every resolved jump's concrete target
/// checked for containment in the claimed set. Zero violations, and
/// the claims must actually be exercised — a campaign that checks no
/// indirect jump proves nothing.
#[test]
fn refinement_campaign_has_zero_containment_violations() {
    let cfg = CampaignConfig {
        programs: 50,
        entries_per_program: 4,
        refine_indirect: true,
        budget: Budget::from_timeout(Duration::from_secs(240)),
        ..CampaignConfig::default()
    };
    let report = run_campaign(&cfg);
    if let Some(f) = &report.failure {
        panic!("refinement violation (master_seed={:#x}):\n{f}", cfg.master_seed);
    }
    assert!(!report.budget_exhausted, "campaign hit its budget:\n{report}");
    assert!(report.traces_run >= 200, "under 200 traces run:\n{report}");
    assert!(
        report.indirect_checked > 0,
        "no refinement claim was ever exercised dynamically:\n{report}"
    );
    assert!(
        report.indirections_resolved > 0,
        "refinement resolved nothing (column A contribution is zero):\n{report}"
    );
}

/// A hand-built function with one masked jump table of `n` cases.
fn masked_table_binary(n: usize) -> hoare_lift::elf::Binary {
    let ins = |m: Mnemonic, ops: Vec<Operand>, w: Width| Instr::new(m, ops, w);
    let reg32 = |r: Reg| Operand::reg(r, Width::B4);
    let mut asm = Asm::new();
    asm.label("f");
    asm.ins(ins(Mnemonic::Mov, vec![reg32(Reg::Rax), reg32(Reg::Rdi)], Width::B4));
    asm.ins(ins(Mnemonic::And, vec![reg32(Reg::Rax), Operand::Imm(n as i64 - 1)], Width::B4));
    let jmp = ins(
        Mnemonic::Jmp,
        vec![Operand::Mem(MemOperand::sib(None, Reg::Rax, 8, 0, Width::B8))],
        Width::B8,
    );
    asm.ins_mem_label(jmp, 0, "table");
    let cases: Vec<String> = (0..n).map(|i| format!("case_{i}")).collect();
    for (i, c) in cases.iter().enumerate() {
        asm.label(c);
        asm.ins(ins(Mnemonic::Mov, vec![reg32(Reg::Rax), Operand::Imm(20 + i as i64)], Width::B4));
        asm.jmp("join");
    }
    asm.label("join");
    asm.ret();
    let case_refs: Vec<&str> = cases.iter().map(String::as_str).collect();
    asm.jump_table("table", &case_refs);
    asm.entry("f");
    asm.assemble().expect("assembles")
}

/// Correct claims pass: with the refined lift and its own claims, the
/// trace runs through the (formerly unresolved) jump to the ret, and
/// the claim check fires without a violation.
#[test]
fn correct_claims_are_confirmed_by_traces() {
    let bin = masked_table_binary(4);
    let mut lifter = Lifter::new(&bin);
    let refined = lifter.lift_entry_refined(bin.entry, &VsaResolver::default(), 4);
    assert!(refined.converged);
    assert!(!refined.hints.is_empty());

    let oracle = TraceOracle::new(&bin, &refined.result).with_indirect_claims(refined.hints.clone());
    let mut coverage = Coverage::default();
    for rdi in [0u64, 1, 2, 3, 7, 0x1234] {
        let es = EntryState { rdi, scratch: [0; 6] };
        let outcome = oracle.check_trace(&es, &mut coverage);
        assert!(outcome.violation.is_none(), "rdi={rdi}: {:?}", outcome.violation);
        assert!(matches!(outcome.stop, TraceStop::Returned), "rdi={rdi}: {:?}", outcome.stop);
        assert!(outcome.indirect_checked >= 1, "rdi={rdi}: claim never checked");
    }
}

/// The refutation channel: corrupt the claim at the jump (drop the
/// real target of the traced input, keep only wrong-but-plausible
/// code addresses) and the oracle must report `indirect-containment`.
#[test]
fn corrupted_claims_are_refuted() {
    let bin = masked_table_binary(4);
    let mut lifter = Lifter::new(&bin);
    let refined = lifter.lift_entry_refined(bin.entry, &VsaResolver::default(), 4);
    assert!(refined.converged);
    let (&jmp_addr, targets) = refined.hints.iter().next().expect("one claim");

    // rdi = 0 lands on the smallest target; claim only the others.
    let &real = targets.iter().next().expect("targets");
    let corrupted: BTreeSet<u64> = targets.iter().copied().filter(|&t| t != real).collect();
    assert!(!corrupted.is_empty());
    let claims = [(jmp_addr, corrupted)].into_iter().collect();

    let oracle = TraceOracle::new(&bin, &refined.result).with_indirect_claims(claims);
    let mut coverage = Coverage::default();
    // The first case label is the lowest code address of the targets,
    // and rdi = 0 selects table slot 0, which points at it.
    let es = EntryState { rdi: 0, scratch: [0; 6] };
    let outcome = oracle.check_trace(&es, &mut coverage);
    let v = outcome.violation.expect("corrupted claim must be refuted");
    assert_eq!(v.kind, ViolationKind::IndirectContainment, "{v}");
    assert_eq!(v.rip, jmp_addr);
}
