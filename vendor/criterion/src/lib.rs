//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal, dependency-free benchmark harness with the API subset the
//! `hgl-bench` targets use. Timing is a straightforward
//! warmup-then-measure loop over `Instant`; there is no statistical
//! analysis, no plotting, and no baseline storage — the point is that
//! `cargo bench` runs and prints per-benchmark mean times.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost. All variants behave the same
/// in this stand-in: setup runs once per measured iteration, unmeasured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Throughput annotation attached to a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier made of a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; drives the measured loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measures `routine` over the configured iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Measures `routine` with unmeasured per-iteration `setup`.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(&mut self, mut setup: S, mut routine: R, _size: BatchSize) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }

    /// Like `iter_batched`, but the routine takes the input by reference.
    pub fn iter_batched_ref<I, O, S: FnMut() -> I, R: FnMut(&mut I) -> O>(&mut self, mut setup: S, mut routine: R, _size: BatchSize) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_one(label: &str, sample_size: u64, f: &mut dyn FnMut(&mut Bencher)) {
    // One warmup pass, then `sample_size` measured iterations.
    let mut warm = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut warm);
    let mut b = Bencher { iters: sample_size, elapsed: Duration::ZERO };
    f(&mut b);
    let mean = b.elapsed.checked_div(b.iters as u32).unwrap_or(Duration::ZERO);
    println!("bench {label:<50} {mean:>12.3?}/iter ({} iters)", b.iters);
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the measured iteration count for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Records the group's throughput annotation (display only).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Accepted for compatibility; unused.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(&mut self, id: impl Display, input: &I, mut f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Finishes the group.
    pub fn finish(&mut self) {}
}

/// The benchmark driver handed to `criterion_group!` functions.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the default measured iteration count.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Runs one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) -> &mut Self {
        run_one(&id.to_string(), self.sample_size, &mut f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup { name: name.into(), sample_size, _parent: self }
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $cfg;
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
