//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal, dependency-free property-testing harness covering the API
//! subset the test suite uses: [`strategy::Strategy`] with
//! `prop_map`/`prop_flat_map`/`prop_filter`/`prop_recursive`/`boxed`,
//! [`strategy::Just`], [`strategy::Union`] (behind `prop_oneof!`), range
//! and tuple strategies, [`collection::vec`]/[`collection::btree_map`],
//! [`arbitrary::any`], and the `proptest!`/`prop_assert*!`/`prop_assume!`
//! macros.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! inputs via the assertion message only), and generation is driven by a
//! deterministic per-test splitmix64 stream seeded from the test name, so
//! every run explores the same cases.

pub mod test_runner {
    /// Per-test configuration. Only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
        /// Accepted for compatibility; unused (no shrinking).
        pub max_shrink_iters: u32,
        /// Accepted for compatibility; unused.
        pub max_global_rejects: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256, max_shrink_iters: 0, max_global_rejects: 65536 }
        }
    }

    impl Config {
        /// A config running `cases` generated inputs per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases, ..Config::default() }
        }
    }

    /// Deterministic splitmix64 generator driving all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream from an arbitrary label (e.g. the test name).
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Returns the next 64 uniformly distributed bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Returns a uniform value in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A generator of values of type `Self::Value`.
    ///
    /// Unlike upstream there is no value tree: `sample` directly draws a
    /// value and failing cases are not shrunk.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Applies `f` to every generated value.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then samples from the strategy `f` returns.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        /// Rejects values failing `pred`, resampling (bounded retries).
        fn prop_filter<R, F>(self, reason: R, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            R: std::fmt::Display,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, pred, reason: reason.to_string() }
        }

        /// Builds a bounded-depth recursive strategy: `self` is the leaf
        /// case and `f` derives one extra level from the strategy so far.
        fn prop_recursive<S2, F>(self, depth: u32, _max_nodes: u32, _items_per: u32, f: F) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
        {
            let leaf = self.boxed();
            let mut cur = leaf.clone();
            for _ in 0..depth {
                let deeper = f(cur).boxed();
                cur = Union::new(vec![leaf.clone(), deeper.clone(), deeper]).boxed();
            }
            cur
        }

        /// Erases the strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy { f: Rc::new(move |rng| self.sample(rng)) }
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T> {
        f: Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy { f: Rc::clone(&self.f) }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Clone)]
    pub struct Filter<S, F> {
        inner: S,
        pred: F,
        reason: String,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.inner.sample(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter retries exhausted: {}", self.reason)
        }
    }

    /// Uniform choice between boxed alternatives (the `prop_oneof!` body).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union { arms: self.arms.clone() }
        }
    }

    impl<T: 'static> Union<T> {
        /// Equally weighted alternatives.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "Union requires at least one arm");
            Union { arms: arms.into_iter().map(|a| (1, a)).collect() }
        }

        /// Explicitly weighted alternatives.
        pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!arms.is_empty(), "Union requires at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
            let mut pick = rng.below(total.max(1));
            for (w, arm) in &self.arms {
                if pick < *w as u64 {
                    return arm.sample(rng);
                }
                pick -= *w as u64;
            }
            self.arms[0].1.sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + rng.below(span + 1) as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "cannot sample empty range");
            let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            self.start + unit * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical strategy, as used by [`any`].
    pub trait Arbitrary: Sized {
        /// Draws one canonical value.
        fn sample_any(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn sample_any(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn sample_any(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn sample_any(rng: &mut TestRng) -> Self {
            f64::from_bits(rng.next_u64())
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::sample_any(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::collections::BTreeMap;
    use std::ops::{Range, RangeInclusive};

    /// Element-count specification for collection strategies.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let span = (self.hi_inclusive - self.lo) as u64;
            self.lo + rng.below(span + 1) as usize
        }
    }

    /// A `Vec` of values drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Clone> Clone for VecStrategy<S> {
        fn clone(&self) -> Self {
            VecStrategy { element: self.element.clone(), size: self.size.clone() }
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for a `Vec` with `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// A `BTreeMap` of entries drawn from `key`/`value`.
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            let mut m = BTreeMap::new();
            // Duplicate keys collapse, so the result may be smaller than
            // requested — same contract as upstream's minimum-size caveat.
            for _ in 0..n {
                m.insert(self.key.sample(rng), self.value.sample(rng));
            }
            m
        }
    }

    /// Strategy for a `BTreeMap` with `size` entries.
    pub fn btree_map<K: Strategy, V: Strategy>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, size: size.into() }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Uniform (or weighted, with `w => strat` arms) choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current generated case when the precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:tt;) => {};
    (cfg = $cfg:tt; $(#[$meta:meta])* fn $name:ident($($args:tt)*) $body:block $($rest:tt)*) => {
        $crate::__proptest_one! {
            cfg = $cfg;
            metas = [$(#[$meta])*];
            name = $name;
            pats = [];
            strats = [];
            args = ($($args)*);
            body = $body
        }
        $crate::__proptest_fns!(cfg = $cfg; $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_one {
    // `pat in strategy, …`
    (cfg = $cfg:tt; metas = $m:tt; name = $n:ident; pats = [$($p:tt)*]; strats = [$($s:tt)*];
     args = ($pat:pat in $strat:expr, $($rest:tt)*); body = $b:block) => {
        $crate::__proptest_one! {
            cfg = $cfg; metas = $m; name = $n;
            pats = [$($p)* ($pat)];
            strats = [$($s)* ($strat)];
            args = ($($rest)*); body = $b
        }
    };
    // final `pat in strategy`
    (cfg = $cfg:tt; metas = $m:tt; name = $n:ident; pats = [$($p:tt)*]; strats = [$($s:tt)*];
     args = ($pat:pat in $strat:expr); body = $b:block) => {
        $crate::__proptest_one! {
            cfg = $cfg; metas = $m; name = $n;
            pats = [$($p)* ($pat)];
            strats = [$($s)* ($strat)];
            args = (); body = $b
        }
    };
    // `name: Type, …` (sugar for `name in any::<Type>()`)
    (cfg = $cfg:tt; metas = $m:tt; name = $n:ident; pats = [$($p:tt)*]; strats = [$($s:tt)*];
     args = ($id:ident : $ty:ty, $($rest:tt)*); body = $b:block) => {
        $crate::__proptest_one! {
            cfg = $cfg; metas = $m; name = $n;
            pats = [$($p)* ($id)];
            strats = [$($s)* ($crate::arbitrary::any::<$ty>())];
            args = ($($rest)*); body = $b
        }
    };
    // final `name: Type`
    (cfg = $cfg:tt; metas = $m:tt; name = $n:ident; pats = [$($p:tt)*]; strats = [$($s:tt)*];
     args = ($id:ident : $ty:ty); body = $b:block) => {
        $crate::__proptest_one! {
            cfg = $cfg; metas = $m; name = $n;
            pats = [$($p)* ($id)];
            strats = [$($s)* ($crate::arbitrary::any::<$ty>())];
            args = (); body = $b
        }
    };
    // all arguments consumed — emit the test fn
    (cfg = { $cfg:expr }; metas = [$($meta:tt)*]; name = $n:ident;
     pats = [$(($p:pat))*]; strats = [$(($s:expr))*]; args = (); body = $b:block) => {
        $($meta)*
        fn $n() {
            let __config: $crate::test_runner::Config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(concat!(module_path!(), "::", stringify!($n)));
            for _ in 0..__config.cases {
                // Bind each argument with `let` so its type is fully
                // concrete inside the body (a tuple-pattern closure
                // would leave method calls on params unresolvable).
                // The immediately-invoked closure gives `prop_assume!`'s
                // `return` per-case skip semantics.
                $(let $p = $crate::strategy::Strategy::sample(&($s), &mut __rng);)*
                (move || $b)();
            }
        }
    };
}

/// Declares property tests. Each `fn` runs `cases` times with freshly
/// generated inputs; `prop_assume!` skips a case, `prop_assert*!` fail it.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(cfg = { $cfg }; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(cfg = { $crate::test_runner::Config::default() }; $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small() -> impl Strategy<Value = u8> {
        prop_oneof![Just(1u8), Just(2), (10u8..20)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(v in 0u64..100, w in -5i64..5, f in small()) {
            prop_assert!(v < 100);
            prop_assert!((-5..5).contains(&w));
            prop_assert!(f == 1 || f == 2 || (10..20).contains(&f));
        }

        #[test]
        fn typed_args_work(bytes in crate::collection::vec(any::<u8>(), 0..8), addr: u64) {
            prop_assert!(bytes.len() < 8);
            prop_assume!(addr != 0);
            prop_assert_ne!(addr, 0);
        }

        #[test]
        fn maps_and_filters(v in (0u32..50).prop_map(|x| x * 2).prop_filter("even", |x| x % 2 == 0)) {
            prop_assert_eq!(v % 2, 0);
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Clone, Debug)]
        enum Tree {
            Leaf(u8),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let leaf = (0u8..8).prop_map(Tree::Leaf);
        let tree = leaf.prop_recursive(3, 24, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = crate::test_runner::TestRng::from_name("recursive");
        for _ in 0..200 {
            let t = tree.sample(&mut rng);
            assert!(depth(&t) <= 3);
        }
    }
}
