//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal, dependency-free implementation of the `rand 0.8` API surface it
//! actually uses: `SmallRng`, `SeedableRng::seed_from_u64`, and the `Rng`
//! methods `gen`, `gen_range`, and `gen_bool`. The generator is a
//! splitmix64 core — deterministic, fast, and more than adequate for
//! seeded corpus generation and property tests. It is **not** a
//! cryptographic RNG and makes no claim of statistical equivalence with
//! upstream `rand`.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit generator.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with uniformly distributed bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable generators. Only `seed_from_u64` is provided.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }
}

/// Types [`Rng::gen_range`] can sample uniformly from a range.
///
/// A single generic `SampleRange` impl per range shape (rather than one
/// impl per integer type) keeps integer-literal inference working the
/// same way it does with upstream `rand`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from `lo..hi` (`lo < hi` already checked).
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Draws uniformly from `lo..=hi` (`lo <= hi` already checked).
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            // `as i64 as u64` sign-extends signed types and is a
            // wrapping identity on unsigned ones, so subtraction in
            // u64 yields the true span for every integer type.
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i64 as u64).wrapping_sub(lo as i64 as u64);
                let off = rng.next_u64() % span;
                (lo as i64 as u64).wrapping_add(off) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i64 as u64).wrapping_sub(lo as i64 as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let off = rng.next_u64() % (span + 1);
                (lo as i64 as u64).wrapping_add(off) as $t
            }
        }
    )*}
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        lo + f64::sample_standard(rng) * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        f64::sample_half_open(lo, hi, rng)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

/// User-facing convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        f64::sample_standard(self) < p
    }

    /// Fills `dest` with uniformly distributed bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (splitmix64 core).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15) }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    /// A generator seeded from the current process identity; provided for
    /// API compatibility, deliberately deterministic in this stand-in.
    pub type StdRng = SmallRng;
}

/// Returns a generator with a process-local seed. Deterministic in this
/// stand-in so test runs are reproducible.
pub fn thread_rng() -> rngs::SmallRng {
    rngs::SmallRng::seed_from_u64(0x5eed_5eed_5eed_5eed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-64..64);
            assert!((-64..64).contains(&v));
            let w: u8 = rng.gen_range(3..=9);
            assert!((3..=9).contains(&w));
            let u: usize = rng.gen_range(0..17);
            assert!(u < 17);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
